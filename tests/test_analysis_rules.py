"""Every rule fires on its minimal violation and stays silent on the
compliant variant (fixtures under ``tests/analysis_fixtures/``)."""

from pathlib import Path

import pytest

from repro.analysis import RULE_REGISTRY, analyze_paths, analyze_source

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
RULE_IDS = sorted(RULE_REGISTRY)


def fired_rules(path: Path):
    report = analyze_paths([str(path)])
    assert report.files_scanned == 1
    assert not report.parse_errors
    return {f.rule for f in report.findings}


class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_rule_fires_on_bad_fixture(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        assert path.exists(), f"missing firing fixture for {rule_id}"
        assert rule_id in fired_rules(path)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_rule_silent_on_good_fixture(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_good.py"
        assert path.exists(), f"missing compliant fixture for {rule_id}"
        assert rule_id not in fired_rules(path)

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixtures_fully_clean(self, rule_id):
        # compliant variants must not trip *any* rule
        assert fired_rules(FIXTURES / f"{rule_id.lower()}_good.py") == set()


class TestRuleCatalogue:
    def test_at_least_eight_distinct_rules(self):
        assert len(RULE_REGISTRY) >= 8

    def test_metadata_complete(self):
        for rule_id, rule in RULE_REGISTRY.items():
            assert rule.id == rule_id
            assert rule.severity in ("error", "warning")
            assert rule.summary
            assert rule.name


class TestRuleDetails:
    """Targeted edge cases beyond the canonical fixture pairs."""

    def test_ra101_silent_in_substrate_module(self, tmp_path):
        # the optimizer is *allowed* to step parameters in place
        src = "def step(p, g):\n    p.data -= 0.1 * g\n"
        path = tmp_path / "optim.py"
        path.write_text(src)
        findings = analyze_source(src, path, display_path="src/repro/nn/optim.py")
        # display path does not decide substrate status; the module name does
        assert any(f.rule == "RA101" for f in findings)
        substrate = tmp_path / "src" / "repro" / "nn"
        substrate.mkdir(parents=True)
        sub_path = substrate / "optim.py"
        sub_path.write_text(src)
        assert analyze_source(src, sub_path) == []

    def test_ra102_tensor_wrap_is_exempt(self, tmp_path):
        src = ("def kd_loss(a, b, Tensor=None):\n"
               "    return (a - Tensor(b.data * 2.0)).mean()\n")
        findings = analyze_source(src, tmp_path / "m.py")
        assert not any(f.rule == "RA102" for f in findings)

    def test_ra103_one_finding_per_function(self, tmp_path):
        src = ("def evaluate(model, s, items):\n"
               "    a = model.compute_interests(s, items)\n"
               "    b = model.embed_items(items)\n"
               "    return a, b\n")
        findings = analyze_source(src, tmp_path / "m.py")
        assert len([f for f in findings if f.rule == "RA103"]) == 1

    def test_ra201_allows_generator_construction(self, tmp_path):
        src = ("import numpy as np\n"
               "def f(seed):\n"
               "    return np.random.Generator(np.random.PCG64(seed))\n")
        assert analyze_source(src, tmp_path / "m.py") == []

    def test_ra301_clip_via_local_assignment_is_guarded(self, tmp_path):
        # the binary_cross_entropy idiom: clip first, log later
        src = ("def bce_loss(pred, target, eps=1e-9):\n"
               "    pred = pred.clip(eps, 1.0 - eps)\n"
               "    return -(target * pred.log()).mean()\n")
        assert analyze_source(src, tmp_path / "m.py") == []

    def test_ra301_fires_on_tensor_log_method(self, tmp_path):
        src = ("def nll_loss(pred):\n"
               "    return -pred.log().mean()\n")
        findings = analyze_source(src, tmp_path / "m.py")
        assert any(f.rule == "RA301" for f in findings)

    def test_numerics_rules_ignore_non_loss_code(self, tmp_path):
        # same math, but not a loss function: no RA301/302/303
        src = ("import numpy as np\n"
               "def stats(x):\n"
               "    return np.log(x), np.exp(x), x / x.sum()\n")
        assert analyze_source(src, tmp_path / "m.py") == []

    def test_ra402_reraising_exception_handler_ok(self, tmp_path):
        src = ("def f(x):\n"
               "    try:\n"
               "        return g(x)\n"
               "    except Exception:\n"
               "        raise RuntimeError('context')\n")
        assert analyze_source(src, tmp_path / "m.py") == []
