"""Unit tests for negative sampling and training-example construction."""

import numpy as np
import pytest

from repro.data import NegativeSampler, iterate_minibatches, span_training_examples
from repro.data.schema import SpanDataset, UserSpanData
from repro.data.sampler import TrainExample


class TestNegativeSampler:
    def test_never_contains_target(self):
        sampler = NegativeSampler(num_items=5, num_negatives=4,
                                  rng=np.random.default_rng(0))
        for target in range(5):
            for _ in range(20):
                negs = sampler.sample(target)
                assert target not in negs

    def test_sample_count(self):
        sampler = NegativeSampler(num_items=100, num_negatives=7)
        assert len(sampler.sample(3)) == 7

    def test_negatives_capped_by_catalog(self):
        sampler = NegativeSampler(num_items=3, num_negatives=10)
        assert sampler.num_negatives == 2

    def test_tiny_catalog_rejected(self):
        with pytest.raises(ValueError):
            NegativeSampler(num_items=1)

    def test_deterministic_with_seeded_rng(self):
        a = NegativeSampler(10, 5, rng=np.random.default_rng(3)).sample(0)
        b = NegativeSampler(10, 5, rng=np.random.default_rng(3)).sample(0)
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        sampler = NegativeSampler(num_items=10, num_negatives=5,
                                  rng=np.random.default_rng(1))
        counts = np.zeros(10)
        for _ in range(2000):
            for item in sampler.sample(9):
                counts[item] += 1
        assert counts[9] == 0
        others = counts[:9]
        assert others.min() > 0.5 * others.mean()


def make_span(user_items):
    span = SpanDataset(span_index=1)
    for user, items in user_items.items():
        span.users[user] = UserSpanData(user=user, train_items=items)
    return span


class TestTrainingExamples:
    def test_prefix_targets(self):
        span = make_span({0: [10, 11, 12]})
        examples = span_training_examples(span)
        assert [(e.history, e.target) for e in examples] == [
            ([10], 11), ([10, 11], 12),
        ]

    def test_carried_history_prepended(self):
        span = make_span({0: [10, 11]})
        examples = span_training_examples(span, histories={0: [1, 2]})
        assert [(e.history, e.target) for e in examples] == [
            ([1, 2], 10), ([1, 2, 10], 11),
        ]

    def test_single_item_without_history_skipped(self):
        span = make_span({0: [10]})
        assert span_training_examples(span) == []

    def test_single_item_with_history_predictable(self):
        span = make_span({0: [10]})
        examples = span_training_examples(span, histories={0: [1]})
        assert [(e.history, e.target) for e in examples] == [([1], 10)]

    def test_max_targets_keeps_latest(self):
        span = make_span({0: list(range(10))})
        examples = span_training_examples(span, max_targets_per_user=3)
        assert len(examples) == 3
        assert examples[-1].target == 9


class TestMinibatches:
    def test_covers_all_examples(self):
        examples = [TrainExample(0, [1], t) for t in range(10)]
        batches = list(iterate_minibatches(examples, batch_size=3,
                                           rng=np.random.default_rng(0)))
        assert sum(len(b) for b in batches) == 10
        seen = {e.target for b in batches for e in b}
        assert seen == set(range(10))

    def test_batch_sizes(self):
        examples = [TrainExample(0, [1], t) for t in range(10)]
        batches = list(iterate_minibatches(examples, batch_size=4, shuffle=False))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_no_shuffle_preserves_order(self):
        examples = [TrainExample(0, [1], t) for t in range(6)]
        batches = list(iterate_minibatches(examples, batch_size=2, shuffle=False))
        assert [e.target for b in batches for e in b] == list(range(6))
