"""Unit tests for the nn layer: Module, layers, initializers, optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Adam, Embedding, Linear, Module, Parameter, SGD, clip_grad_norm, init


class Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).tanh()) * self.scale


class TestModule:
    def test_parameter_registration(self, rng):
        net = Net(rng)
        names = [n for n, _ in net.named_parameters()]
        assert names == ["scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self, rng):
        net = Net(rng)
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_state_dict_roundtrip(self, rng):
        net = Net(rng)
        state = net.state_dict()
        for p in net.parameters():
            p.data += 1.0
        net.load_state_dict(state)
        for name, p in net.named_parameters():
            assert np.allclose(p.data, state[name])

    def test_state_dict_copies(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.data[0] != 99.0

    def test_load_strict_rejects_missing(self, rng):
        net = Net(rng)
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_strict_rejects_shape_mismatch(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_non_strict_skips_mismatch(self, rng):
        net = Net(rng)
        state = net.state_dict()
        state["scale"] = np.ones(3)
        state["extra"] = np.ones(2)
        net.load_state_dict(state, strict=False)  # no error

    def test_zero_grad(self, rng):
        net = Net(rng)
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 5))))
        assert np.allclose(out.data, 0.0)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb([1, 3, 1])
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[2])

    def test_padding_row_zero(self, rng):
        emb = Embedding(10, 4, rng, padding_idx=0)
        assert np.allclose(emb.weight.data[0], 0.0)
        emb.weight.data[0] = 1.0
        emb.zero_padding_row()
        assert np.allclose(emb.weight.data[0], 0.0)

    def test_sparse_gradient(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb([2, 2, 7])
        out.sum().backward()
        grad = emb.weight.grad
        assert np.allclose(grad[2], 2.0)  # appears twice
        assert np.allclose(grad[7], 1.0)
        assert np.allclose(grad[0], 0.0)


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= limit

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((200, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 300), rel=0.2)

    def test_normal_std(self, rng):
        w = init.normal((1000,), rng, std=0.5)
        assert w.std() == pytest.approx(0.5, rel=0.2)

    def test_zeros(self):
        assert np.allclose(init.zeros((3, 3)), 0.0)

    def test_deterministic_given_seed(self):
        a = init.xavier_uniform((4, 4), np.random.default_rng(3))
        b = init.xavier_uniform((4, 4), np.random.default_rng(3))
        assert np.allclose(a, b)


def _quadratic_loss(param: Parameter) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = param - target
    return (diff * diff).sum()


class TestOptimizers:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.2}),
    ])
    def test_converges_on_quadratic(self, opt_cls, kwargs):
        param = Parameter(np.zeros(3))
        opt = opt_cls([param], **kwargs)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        assert np.allclose(param.data, [1.0, -2.0, 3.0], atol=1e-2)

    def test_empty_param_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = SGD([a, b], lr=0.5)
        (a.sum()).backward()
        opt.step()
        assert not np.allclose(a.data, 1.0)
        assert np.allclose(b.data, 1.0)

    def test_adam_add_param_mid_training(self):
        a = Parameter(np.zeros(3))
        opt = Adam([a], lr=0.3)
        for _ in range(20):
            opt.zero_grad()
            _quadratic_loss(a).backward()
            opt.step()
        b = Parameter(np.zeros(3))
        opt.add_param(b)
        for _ in range(150):
            opt.zero_grad()
            (_quadratic_loss(a) + _quadratic_loss(b)).backward()
            opt.step()
        assert np.allclose(b.data, [1.0, -2.0, 3.0], atol=5e-2)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.ones(4) * 10)
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(4)  # pure decay step
        opt.step()
        assert np.allclose(param.data, 9.0)

    def test_clip_grad_norm(self):
        a = Parameter(np.zeros(3))
        a.grad = np.array([3.0, 4.0, 0.0])  # norm 5
        pre = clip_grad_norm([a], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(a.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        a = Parameter(np.zeros(2))
        a.grad = np.array([0.3, 0.4])
        clip_grad_norm([a], max_norm=1.0)
        assert np.allclose(a.grad, [0.3, 0.4])
