"""Unit tests for the time-span splitting protocol."""

import pytest

from repro.data import Interaction, split_time_spans


def make_stream(events):
    """events: list of (user, item, ts)."""
    return [Interaction(u, i, t) for u, i, t in events]


class TestSplitting:
    def test_basic_partition(self):
        # pretrain [0, 0.5): 3 events; two spans over [0.5, 1.0)
        stream = make_stream([
            (0, 1, 0.1), (0, 2, 0.2), (0, 3, 0.3),
            (0, 4, 0.55), (0, 5, 0.6),
            (0, 6, 0.8), (0, 7, 0.9), (0, 8, 1.0),
        ])
        split = split_time_spans(stream, num_items=10, T=2, alpha=0.5)
        assert split.T == 2
        assert split.pretrain.num_interactions() == 3
        assert split.spans[0].num_interactions() == 2
        assert split.spans[1].num_interactions() == 3

    def test_last_timestamp_in_final_span(self):
        stream = make_stream([(0, i, t) for i, t in
                              enumerate([0.0, 0.25, 0.5, 0.75, 1.0])])
        split = split_time_spans(stream, num_items=10, T=2, alpha=0.5)
        assert 0 in split.spans[1]

    def test_leave_one_out_roles(self):
        stream = make_stream([
            (0, 1, 0.1), (0, 2, 0.15), (0, 3, 0.2), (0, 4, 0.3), (0, 5, 0.4),
            (0, 9, 0.9),
        ])
        split = split_time_spans(stream, num_items=10, T=1, alpha=0.5)
        pre = split.pretrain.users[0]
        assert pre.train_items == [1, 2, 3]
        assert pre.val_item == 4
        assert pre.test_item == 5

    def test_two_items_yield_test_but_no_val(self):
        stream = make_stream([(0, 1, 0.1), (0, 2, 0.2), (0, 9, 0.9)])
        split = split_time_spans(stream, num_items=10, T=1, alpha=0.5)
        pre = split.pretrain.users[0]
        assert pre.train_items == [1]
        assert pre.val_item is None
        assert pre.test_item == 2

    def test_single_item_is_train_only(self):
        stream = make_stream([(0, 1, 0.1), (0, 9, 0.9)])
        split = split_time_spans(stream, num_items=10, T=1, alpha=0.5)
        pre = split.pretrain.users[0]
        assert pre.train_items == [1]
        assert pre.test_item is None

    def test_min_interactions_filter(self):
        stream = make_stream(
            [(0, i, 0.01 * i) for i in range(40)] + [(1, 1, 0.3)]
        )
        split = split_time_spans(stream, num_items=50, T=2, alpha=0.5,
                                 min_user_interactions=30)
        assert split.num_users == 1
        assert 1 not in split.pretrain

    def test_chronological_order_preserved_within_span(self):
        stream = make_stream([(0, 5, 0.3), (0, 2, 0.1), (0, 7, 0.2), (0, 9, 0.9)])
        split = split_time_spans(stream, num_items=10, T=1, alpha=0.5)
        pre = split.pretrain.users[0]
        assert pre.train_items == [2]
        assert pre.val_item == 7
        assert pre.test_item == 5

    def test_all_items_property(self):
        stream = make_stream([(0, i, 0.05 * i) for i in range(5)] + [(0, 9, 0.9)])
        split = split_time_spans(stream, num_items=10, T=1, alpha=0.5)
        assert split.pretrain.users[0].all_items == [0, 1, 2, 3, 4]

    def test_cumulative_train_items(self):
        stream = make_stream([
            (0, 1, 0.1), (0, 2, 0.2),
            (0, 3, 0.6), (0, 4, 0.7),
            (0, 5, 0.8), (0, 6, 0.95),
        ])
        split = split_time_spans(stream, num_items=10, T=2, alpha=0.5)
        upto0 = split.cumulative_train_items(0, up_to_span=0)
        assert upto0 == [1, 2, 3, 4]
        upto1 = split.cumulative_train_items(0, up_to_span=1)
        assert upto1 == [1, 2, 3, 4, 5, 6]


class TestValidation:
    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            split_time_spans([], num_items=10)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_bad_alpha_rejected(self, alpha):
        stream = make_stream([(0, 1, 0.5)])
        with pytest.raises(ValueError):
            split_time_spans(stream, num_items=10, alpha=alpha)

    def test_bad_T_rejected(self):
        stream = make_stream([(0, 1, 0.5)])
        with pytest.raises(ValueError):
            split_time_spans(stream, num_items=10, T=0)

    def test_all_filtered_rejected(self):
        stream = make_stream([(0, 1, 0.5)])
        with pytest.raises(ValueError):
            split_time_spans(stream, num_items=10, min_user_interactions=5)

    def test_arbitrary_timestamp_scale(self):
        # timestamps in epoch seconds, not [0, 1]
        stream = make_stream([
            (0, 1, 1_000_000.0), (0, 2, 1_250_000.0),
            (0, 3, 1_600_000.0), (0, 4, 2_000_000.0),
        ])
        split = split_time_spans(stream, num_items=10, T=2, alpha=0.5)
        assert split.pretrain.num_interactions() == 2
        assert split.spans[0].num_interactions() == 1
        assert split.spans[1].num_interactions() == 1
