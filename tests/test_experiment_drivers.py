"""Structural tests for the table/figure drivers at tiny scale.

These verify the drivers produce well-formed results (correct keys,
bounded metrics, rendered tables) — the paper-shape assertions live in
the benchmarks, which run at meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    default_config,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table3,
    run_table4,
    run_table5,
)

SCALE = 0.15
CFG = dict(epochs_pretrain=2, epochs_incremental=1, num_negatives=4, seed=0)


@pytest.fixture(scope="module")
def config():
    return default_config(**CFG)


class TestTable3Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(
            datasets=("books",), models=("ComiRec-DR",),
            scale=SCALE, config=default_config(**CFG),
            model_kwargs={"dim": 8, "num_interests": 2},
        )

    def test_all_cells_present(self, result):
        strategies = {s for (_, _, s) in result.cells}
        assert strategies == {"FR", "FT", "SML", "ADER", "IMSR"}

    def test_metrics_bounded(self, result):
        for cell in result.cells.values():
            assert 0.0 <= cell.ndcg <= cell.hr <= 1.0

    def test_ft_ri_is_zero(self, result):
        assert result.cells[("books", "ComiRec-DR", "FT")].ri == 0.0

    def test_rows_include_paper_values(self, result):
        rows = result.rows()
        assert all("paper_HR" in row for row in rows)
        assert len(rows) == 5

    def test_format_renders(self, result):
        text = result.format()
        assert "IMSR" in text and "paper_HR" in text

    def test_shape_checks_well_formed(self, result):
        checks = result.shape_checks()
        assert checks
        assert all(c["holds"] in ("yes", "NO") for c in checks)

    def test_significance_marker_set_for_imsr(self, result):
        cell = result.cells[("books", "ComiRec-DR", "IMSR")]
        assert cell.significant in (True, False, None)


class TestTable4Driver:
    def test_structure(self, config):
        result = run_table4(datasets=("books",), scale=SCALE, config=config)
        methods = {m for (_, m) in result.runs}
        assert methods == {"MIMN", "LimaRec", "IMSR"}
        rows = result.rows()
        assert rows[0]["dataset"] == "books"
        assert "paper_IMSR" in rows[0]


class TestTable5Driver:
    def test_structure(self, config):
        result = run_table5(models=("ComiRec-DR",),
                            strategies=("FT", "FR", "IMSR", "ADER"),
                            scale=SCALE, config=config)
        run = result.runs[("ComiRec-DR", "FT")]
        assert all(v > 0 for v in run.train_times.values())
        assert "inference(ms)" in result.rows()[0]
        checks = result.shape_checks(model="ComiRec-DR")
        assert checks
        assert all(c["holds"] in ("yes", "NO") for c in checks)


class TestFig4Driver:
    def test_structure(self, config):
        result = run_fig4(datasets=("books",), strategies=("FT", "IMSR", "FR",
                                                           "SML", "ADER"),
                          scale=SCALE, config=config)
        series = result.series["books"]
        assert set(series) == {"FT", "IMSR", "FR", "SML", "ADER"}
        assert all(len(v) == 5 for v in series.values())
        assert all(0.0 <= x <= 1.0 for v in series.values() for x in v)
        assert "span" in result.format() or "FT" in result.format()


class TestFig5Driver:
    def test_subset_of_variants(self, config):
        result = run_fig5(datasets=("books",), models=("ComiRec-DR",),
                          variants=("FT", "IMSR"), scale=SCALE, config=config)
        averages = result.averages()[("books", "ComiRec-DR")]
        assert set(averages) == {"FT", "IMSR"}


class TestFig6Driver:
    def test_single_sweep(self, config):
        result = run_fig6(datasets=("books",), scale=SCALE, config=config,
                          c1_grid=(0.3, 0.7), sweeps=("c1",))
        key = ("c1", "books", "ComiRec-DR")
        assert set(result.sweeps[key]) == {0.3, 0.7}
        assert all(0.0 <= v <= 1.0 for v in result.sweeps[key].values())

    def test_k_sweep_prealloc(self, config):
        result = run_fig6(datasets=("books",), scale=SCALE, config=config,
                          k_grid=((2, 1), (5, 0)), sweeps=("K",))
        key = ("K", "books", "ComiRec-DR")
        assert set(result.sweeps[key]) == {(2, 1), (5, 0)}
