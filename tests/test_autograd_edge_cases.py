"""Edge-case tests for the autograd engine not covered elsewhere."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad
from repro.autograd.grad_check import numerical_gradient


class TestGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_nested_no_grad_restores(self):
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_tensor_created_in_no_grad_never_requires(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestScalarAndShapeEdges:
    def test_zero_d_tensor(self):
        t = Tensor(3.0, requires_grad=True)
        (t * t).backward()
        assert float(t.grad) == pytest.approx(6.0)

    def test_sqrt(self):
        t = Tensor([4.0], requires_grad=True)
        t.sqrt().backward(np.ones(1))
        assert t.grad[0] == pytest.approx(0.25)

    def test_norm_of_zero_vector_finite_grad(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        t.norm().backward()
        assert np.isfinite(t.grad).all()

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_detach_shares_data(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        d.data[0] = 5.0
        assert t.data[0] == 5.0  # view semantics, like torch

    def test_reshape_tuple_and_varargs(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_with_axes(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = t.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert t.grad.shape == (2, 3, 4)

    def test_numpy_returns_underlying(self):
        t = Tensor([1.0])
        assert t.numpy() is t.data


class TestNumericalGradientHelper:
    def test_matches_simple_analytic(self):
        x = Tensor([2.0, -1.0])
        grad = numerical_gradient(lambda t: (t * t).sum(), [x], wrt=0)
        assert np.allclose(grad, [4.0, -2.0], atol=1e-5)


class TestArrayPriority:
    def test_numpy_scalar_left_operand(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = np.float64(2.0) * t
        assert isinstance(out, Tensor)
        out.sum().backward()
        assert np.allclose(t.grad, 2.0)

    def test_numpy_array_left_operand(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = np.array([3.0, 4.0]) + t
        assert isinstance(out, Tensor)
        assert np.allclose(out.data, [4.0, 6.0])
