"""Tests for the forgetting-analysis toolkit and cold-start generation."""

import numpy as np
import pytest

from repro.data import WorldConfig, generate_world, load_custom
from repro.eval import ForgettingReport, compare_forgetting, forgetting_analysis
from repro.experiments import make_strategy
from repro.incremental import TrainConfig


class TestForgettingReport:
    def make(self, matrix):
        m = np.asarray(matrix, dtype=np.float64)
        return ForgettingReport(matrix=m, spans=list(range(1, len(m) + 1)))

    def test_backward_transfer_negative_on_decay(self):
        # span 1 drops 0.4 -> 0.2 after later training
        matrix = [
            [0.1, np.nan, np.nan],
            [0.4, 0.3, np.nan],
            [0.2, 0.3, 0.5],
        ]
        report = self.make(matrix)
        # anchors: R[1,0]=0.4, R[2,1]=0.3; final: 0.2, 0.3
        assert report.backward_transfer() == pytest.approx((0.2 - 0.4 + 0.0) / 2)

    def test_forgetting_measure_peak_to_final(self):
        matrix = [
            [0.1, np.nan, np.nan],
            [0.5, 0.2, np.nan],
            [0.3, 0.2, 0.4],
        ]
        report = self.make(matrix)
        assert report.forgetting_measure() == pytest.approx(((0.5 - 0.3) + 0.0) / 2)

    def test_single_span_neutral(self):
        report = self.make([[0.3]])
        assert report.backward_transfer() == 0.0
        assert report.forgetting_measure() == 0.0

    def test_as_rows_masks_future(self):
        report = self.make([[0.1, np.nan], [0.2, 0.3]])
        rows = report.as_rows()
        assert np.isnan(rows[0]["eval s3"])
        assert rows[1]["eval s2"] == pytest.approx(0.2)

    def test_compare_forgetting_rows(self):
        report = self.make([[0.1, np.nan], [0.2, 0.3]])
        rows = compare_forgetting({"FT": report})
        assert rows[0]["strategy"] == "FT"
        assert "backward_transfer" in rows[0]


class TestForgettingAnalysis:
    def test_matrix_is_lower_triangular(self, tiny_split):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=1, seed=0)
        strategy = make_strategy("FT", "ComiRec-DR", tiny_split, config,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        report = forgetting_analysis(strategy, tiny_split)
        n = len(report.spans)
        for i in range(n):
            for j in range(n):
                if j <= i:
                    assert np.isfinite(report.matrix[i, j])
                else:
                    assert np.isnan(report.matrix[i, j])

    def test_ft_forgets_more_than_fr(self):
        config = WorldConfig(num_users=48, num_items=240, num_topics=12,
                             num_spans=4, span_activity=0.75,
                             new_topic_rate=0.5, seed=3)
        _, split = load_custom(config, T=4)
        cfg = TrainConfig(epochs_pretrain=5, epochs_incremental=2, seed=0)
        reports = {}
        for name in ("FT", "FR"):
            strategy = make_strategy(name, "ComiRec-DR", split, cfg,
                                     model_kwargs={"dim": 16,
                                                   "num_interests": 3})
            reports[name] = forgetting_analysis(strategy, split)
        assert (reports["FT"].backward_transfer()
                < reports["FR"].backward_transfer())


class TestColdStartGeneration:
    def make_world(self, fraction):
        return generate_world(WorldConfig(
            num_users=24, num_items=120, num_topics=8, num_spans=3,
            cold_start_fraction=fraction, seed=5))

    def test_zero_fraction_all_users_pretrain(self):
        world = self.make_world(0.0)
        pretrain_users = {e.user for e in world.interactions
                          if e.timestamp < 0.5}
        assert len(pretrain_users) == 24

    def test_cold_users_absent_from_pretraining(self):
        world = self.make_world(0.25)
        pretrain_users = {e.user for e in world.interactions
                          if e.timestamp < 0.5}
        assert len(pretrain_users) == 18  # 25% arrive later

    def test_cold_users_eventually_interact(self):
        world = self.make_world(0.25)
        all_users = {e.user for e in world.interactions}
        assert len(all_users) == 24

    def test_pipeline_handles_cold_users(self):
        config = WorldConfig(num_users=24, num_items=120, num_topics=8,
                             num_spans=3, cold_start_fraction=0.25, seed=5)
        _, split = load_custom(config, T=3)
        cfg = TrainConfig(epochs_pretrain=2, epochs_incremental=1, seed=0)
        strategy = make_strategy("IMSR", "ComiRec-DR", split, cfg,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        strategy.pretrain()
        for t in range(1, split.T + 1):
            strategy.train_span(t)
        for state in strategy.states.values():
            assert np.isfinite(state.interests).all()
