"""Unit tests for metrics, the span evaluator, and significance tests."""

import numpy as np
import pytest

from repro.data.schema import SpanDataset, UserSpanData
from repro.eval import (
    EvalResult,
    average_results,
    evaluate_span,
    hit_at_k,
    metrics_at_k,
    ndcg_at_k,
    paired_t_test,
    rank_of_target,
    significantly_better,
)


class TestRank:
    def test_best_item_rank_zero(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of_target(scores, 1) == 0

    def test_worst_item(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of_target(scores, 0) == 2

    def test_ties_are_pessimistic(self):
        scores = np.zeros(5)
        assert rank_of_target(scores, 2) == 4  # everything ties above

    def test_exclusion_removes_competitors(self):
        scores = np.array([0.9, 0.8, 0.1])
        assert rank_of_target(scores, 2) == 2
        assert rank_of_target(scores, 2, exclude=[0, 1]) == 0


class TestMetrics:
    def test_hit_inside_and_outside(self):
        assert hit_at_k(19, k=20) == 1.0
        assert hit_at_k(20, k=20) == 0.0

    def test_ndcg_top_rank_is_one(self):
        assert ndcg_at_k(0, k=20) == 1.0

    def test_ndcg_decreases_with_rank(self):
        values = [ndcg_at_k(r, k=20) for r in range(20)]
        assert values == sorted(values, reverse=True)

    def test_ndcg_zero_outside(self):
        assert ndcg_at_k(25, k=20) == 0.0

    def test_metrics_at_k(self):
        scores = np.array([0.3, 0.9, 0.1])
        hit, ndcg = metrics_at_k(scores, 1, k=1)
        assert hit == 1.0 and ndcg == 1.0
        hit, ndcg = metrics_at_k(scores, 2, k=1)
        assert hit == 0.0 and ndcg == 0.0


def make_span(cases):
    """cases: {user: (train_items, test_item)}"""
    span = SpanDataset(span_index=1)
    for user, (train, test) in cases.items():
        span.users[user] = UserSpanData(user=user, train_items=train,
                                        test_item=test)
    return span


class TestEvaluator:
    def score_fn_factory(self, per_user_scores):
        return lambda user: per_user_scores[user]

    def test_perfect_scores(self):
        span = make_span({0: ([1], 2), 1: ([1], 3)})
        scores = {0: np.array([0, 0, 9, 0, 0.]), 1: np.array([0, 0, 0, 9, 0.])}
        result = evaluate_span(self.score_fn_factory(scores), span, k=1)
        assert result.hr == 1.0
        assert result.ndcg == 1.0
        assert result.num_cases == 2

    def test_users_without_test_item_skipped(self):
        span = make_span({0: ([1], 2), 1: ([1], None)})
        scores = {0: np.array([0, 0, 9.0]), 1: np.zeros(3)}
        result = evaluate_span(self.score_fn_factory(scores), span, k=1)
        assert result.num_cases == 1

    def test_item_filter(self):
        span = make_span({0: ([1], 2), 1: ([1], 3)})
        scores = {u: np.zeros(5) for u in (0, 1)}
        result = evaluate_span(self.score_fn_factory(scores), span,
                               item_filter=lambda u, i: i == 2)
        assert result.num_cases == 1

    def test_targets_all_counts_every_item(self):
        span = make_span({0: ([1, 4], 2)})
        scores = {0: np.zeros(6)}
        result = evaluate_span(self.score_fn_factory(scores), span,
                               targets="all")
        assert result.num_cases == 3  # 2 train + 1 test

    def test_bad_targets_rejected(self):
        span = make_span({0: ([1], 2)})
        with pytest.raises(ValueError):
            evaluate_span(lambda u: np.zeros(3), span, targets="bogus")

    def test_per_user_kept(self):
        span = make_span({0: ([1], 2)})
        scores = {0: np.array([0, 0, 9.0])}
        result = evaluate_span(self.score_fn_factory(scores), span, k=1,
                               keep_per_user=True)
        assert result.per_user[0] == (1.0, 1.0)

    def test_empty_result(self):
        span = make_span({})
        result = evaluate_span(lambda u: np.zeros(3), span)
        assert result.hr == 0.0 and result.num_cases == 0

    def test_average_results(self):
        a = EvalResult(hr=0.2, ndcg=0.1, num_cases=10)
        b = EvalResult(hr=0.4, ndcg=0.3, num_cases=10)
        avg = average_results([a, b])
        assert avg.hr == pytest.approx(0.3)
        assert avg.ndcg == pytest.approx(0.2)
        assert avg.num_cases == 20

    def test_average_skips_empty_spans(self):
        a = EvalResult(hr=0.2, ndcg=0.1, num_cases=10)
        empty = EvalResult(hr=0.0, ndcg=0.0, num_cases=0)
        avg = average_results([a, empty])
        assert avg.hr == pytest.approx(0.2)


class TestSignificance:
    def test_identical_samples_not_significant(self):
        a = [1.0, 0.0, 1.0, 0.0]
        t, p = paired_t_test(a, a)
        assert p == 1.0

    def test_clearly_better_is_significant(self, rng):
        b = rng.uniform(size=100)
        a = b + 0.5 + 0.01 * rng.uniform(size=100)
        assert significantly_better(a, b)

    def test_direction_matters(self, rng):
        b = rng.uniform(size=100)
        a = b + 0.5 + 0.01 * rng.uniform(size=100)
        assert not significantly_better(b, a)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_tiny_sample_returns_neutral(self):
        t, p = paired_t_test([1.0], [0.0])
        assert p == 1.0
