"""Tests for the experiment harness: runner, reporting, registry."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    format_table,
    get_experiment,
    make_strategy,
    relative_improvement,
    render_shape_checks,
    run_strategy,
    series_to_rows,
    shape_check,
)
from repro.experiments.table3 import PAPER_TABLE3
from repro.experiments.table4 import PAPER_TABLE4
from repro.incremental import TrainConfig


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_custom_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_relative_improvement(self):
        assert relative_improvement(1.1, 1.0) == pytest.approx(10.0)
        assert relative_improvement(0.9, 1.0) == pytest.approx(-10.0)
        assert relative_improvement(1.0, 0.0) == 0.0

    def test_shape_check_rows(self):
        assert shape_check("x", True)["holds"] == "yes"
        assert shape_check("x", False)["holds"] == "NO"

    def test_render_shape_checks_counts(self):
        text = render_shape_checks([shape_check("a", True),
                                    shape_check("b", False)])
        assert "1/2 shape checks hold" in text

    def test_series_to_rows(self):
        rows = series_to_rows({"FT": [0.1, 0.2], "FR": [0.3, 0.4]})
        assert rows[0] == {"span": 1, "FT": 0.1, "FR": 0.3}
        assert rows[1]["span"] == 2

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_to_rows({"a": [1.0], "b": [1.0, 2.0]})


class TestRegistry:
    def test_every_table_and_figure_present(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        }

    def test_get_experiment(self):
        exp = get_experiment("table3")
        assert callable(exp.driver)
        assert exp.bench_module.endswith(".py")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestPaperConstants:
    def test_table3_covers_full_grid(self):
        for dataset, models in PAPER_TABLE3.items():
            assert set(models) == {"MIND", "ComiRec-DR", "ComiRec-SA"}
            for model, strategies in models.items():
                assert set(strategies) == {"FR", "FT", "SML", "ADER", "IMSR"}

    def test_table3_paper_orderings(self):
        """Sanity: the transcribed paper numbers show FT as weakest and
        IMSR as the best incremental method."""
        for dataset, models in PAPER_TABLE3.items():
            for model, strategies in models.items():
                mean = lambda s: sum(strategies[s]) / 2
                assert mean("IMSR") > mean("FT")
                assert mean("IMSR") > mean("SML")
                assert mean("IMSR") > mean("ADER")

    def test_table4_ordering(self):
        for dataset, methods in PAPER_TABLE4.items():
            assert methods["IMSR"] > methods["LimaRec"] > methods["MIMN"]


class TestRunner:
    @pytest.fixture()
    def fast_config(self):
        return TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                           num_negatives=4, seed=0)

    def test_run_strategy_end_to_end(self, tiny_split, fast_config):
        strategy = make_strategy("FT", "ComiRec-DR", tiny_split, fast_config,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        result = run_strategy(strategy, tiny_split, "tiny", "ComiRec-DR")
        assert len(result.per_span) == tiny_split.T - 1
        assert 0.0 <= result.hr <= 1.0
        assert 0.0 <= result.ndcg <= result.hr + 1e-12
        assert result.inference_time > 0
        assert 0 in result.train_times
        assert len(result.interest_counts) == tiny_split.T - 1

    def test_counts_by_span_recorded(self, tiny_split, fast_config):
        strategy = make_strategy("IMSR", "ComiRec-DR", tiny_split, fast_config,
                                 model_kwargs={"dim": 10, "num_interests": 2},
                                 strategy_kwargs={"c1": 0.2})
        result = run_strategy(strategy, tiny_split, "tiny", "ComiRec-DR")
        assert set(result.counts_by_span) == set(range(1, tiny_split.T))

    def test_eval_targets_protocols_differ(self, tiny_split, fast_config):
        strategy = make_strategy("FT", "ComiRec-DR", tiny_split, fast_config,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        dense = run_strategy(strategy, tiny_split, eval_targets="all")
        strict_cases = sum(
            1 for span in tiny_split.spans[1:]
            for u in span.users.values() if u.test_item is not None
        )
        dense_cases = sum(r.num_cases for r in dense.per_span)
        assert dense_cases > strict_cases

    def test_fr_strategy_gets_factory(self, tiny_split, fast_config):
        strategy = make_strategy("FR", "ComiRec-DR", tiny_split, fast_config,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        assert strategy.name == "FR"
        strategy.pretrain()
        strategy.train_span(1)  # exercises reinitialization
