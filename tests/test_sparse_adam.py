"""SparseAdam semantics, row tracking, and optimizer membership.

The sparse path must coincide *exactly* with dense Adam whenever every
row is touched on every step, freeze untouched rows otherwise (the
documented deviation — no momentum tail), and catch a returning row's
moments up with the closed-form decay.  Also regression-tests the
identity-based ``Optimizer.has_param`` that ``_sync_optimizer`` relies
on now that re-created SA weight objects can carry equal values.
"""

import numpy as np
import pytest

from repro.incremental import TrainConfig
from repro.experiments import make_strategy
from repro.nn import (
    Adam,
    Embedding,
    Parameter,
    SparseAdam,
    clip_grad_norm,
    touched_rows,
)


def make_table(rng, rows=12, dim=5):
    emb = Embedding(rows, dim, rng)
    return emb


def lookup_and_grad(emb, idx, grad_rows):
    """One fake training step: record a lookup, scatter a gradient."""
    out = emb.forward(np.asarray(idx))
    out.backward(grad_rows)
    return out


class TestDenseEquivalence:
    def test_full_touch_matches_dense_adam_exactly(self, rng):
        emb_a = make_table(np.random.default_rng(3))
        emb_b = make_table(np.random.default_rng(3))
        assert np.array_equal(emb_a.weight.data, emb_b.weight.data)
        dense = Adam([emb_a.weight], lr=0.05)
        sparse = SparseAdam([emb_b.weight], lr=0.05)
        all_rows = np.arange(emb_a.weight.data.shape[0])
        for step in range(7):
            grad = rng.normal(size=(all_rows.size, emb_a.weight.data.shape[1]))
            for emb, opt in ((emb_a, dense), (emb_b, sparse)):
                opt.zero_grad()
                lookup_and_grad(emb, all_rows, grad)
                opt.step()
            assert np.array_equal(emb_a.weight.data, emb_b.weight.data), (
                f"step {step}: sparse diverged from dense on full touch")

    def test_plain_parameter_falls_back_to_dense(self, rng):
        a = Parameter(rng.normal(size=(4, 3)))
        b = Parameter(a.data.copy())
        dense, sparse = Adam([a], lr=0.02), SparseAdam([b], lr=0.02)
        for _ in range(5):
            grad = rng.normal(size=a.data.shape)
            a.grad, b.grad = grad.copy(), grad.copy()
            dense.step()
            sparse.step()
        assert np.array_equal(a.data, b.data)


class TestSparseSemantics:
    def test_untouched_rows_are_frozen(self, rng):
        emb = make_table(rng)
        opt = SparseAdam([emb.weight], lr=0.1)
        before = emb.weight.data.copy()
        touched = np.array([1, 4, 4, 7])
        opt.zero_grad()
        lookup_and_grad(emb, touched,
                        rng.normal(size=(4, emb.weight.data.shape[1])))
        opt.step()
        untouched = np.setdiff1d(np.arange(before.shape[0]), touched)
        assert np.array_equal(emb.weight.data[untouched], before[untouched])
        assert not np.array_equal(emb.weight.data[np.unique(touched)],
                                  before[np.unique(touched)])

    def test_catch_up_decays_stale_moments(self, rng):
        emb = make_table(rng)
        opt = SparseAdam([emb.weight], lr=0.1)
        d = emb.weight.data.shape[1]
        # step 1 touches row 0; steps 2..4 touch row 1; step 5 row 0 again
        opt.zero_grad()
        lookup_and_grad(emb, [0], rng.normal(size=(1, d)))
        opt.step()
        m_after_first = opt._m[0][0].copy()
        for _ in range(3):
            opt.zero_grad()
            lookup_and_grad(emb, [1], rng.normal(size=(1, d)))
            opt.step()
        assert np.array_equal(opt._m[0][0], m_after_first)  # lazy: no decay yet
        grad = rng.normal(size=(1, d))
        opt.zero_grad()
        lookup_and_grad(emb, [0], grad)
        opt.step()
        expected_m = 0.9 * (m_after_first * 0.9 ** 3) + 0.1 * grad[0]
        assert np.allclose(opt._m[0][0], expected_m, atol=1e-12)

    def test_untracked_gradient_takes_dense_path(self, rng):
        emb = make_table(rng)
        emb.weight.grad = rng.normal(size=emb.weight.data.shape)
        # gradient present but no recorded lookup: sparse update would
        # silently drop it, so touched_rows must refuse
        assert touched_rows(emb.weight) is None
        before = emb.weight.data.copy()
        opt = SparseAdam([emb.weight], lr=0.1)
        emb.weight.grad = rng.normal(size=emb.weight.data.shape)
        opt.step()
        assert not np.array_equal(emb.weight.data, before)

    def test_clip_grad_norm_sparse_matches_dense(self, rng):
        emb_a = make_table(np.random.default_rng(5))
        emb_b = make_table(np.random.default_rng(5))
        SparseAdam([emb_a.weight])  # arms row tracking on a only
        idx = np.array([2, 3, 3, 9])
        grad = rng.normal(size=(idx.size, emb_a.weight.data.shape[1])) * 10
        for emb in (emb_a, emb_b):
            emb.weight.zero_grad()
            lookup_and_grad(emb, idx, grad)
        norm_sparse = clip_grad_norm([emb_a.weight], max_norm=1.0)
        norm_dense = clip_grad_norm([emb_b.weight], max_norm=1.0)
        assert norm_sparse == pytest.approx(norm_dense, rel=1e-12)
        assert np.allclose(emb_a.weight.grad, emb_b.weight.grad, atol=1e-12)


class TestOptimizerMembership:
    def test_has_param_is_identity_not_equality(self, rng):
        a = Parameter(rng.normal(size=(3, 2)))
        twin = Parameter(a.data.copy())  # equal values, different object
        opt = Adam([a])
        assert opt.has_param(a)
        assert not opt.has_param(twin)
        opt.add_param(twin)
        assert opt.has_param(twin)

    def test_sync_optimizer_registers_recreated_sa_weights(self, tiny_split):
        config = TrainConfig(epochs_pretrain=1, epochs_incremental=1,
                             num_negatives=4, seed=0)
        strategy = make_strategy(
            "IMSR", "ComiRec-SA", tiny_split, config,
            model_kwargs={"dim": 10, "num_interests": 2})
        payloads_users = list(strategy.states)
        state = strategy.states[payloads_users[0]]
        other = strategy.states[payloads_users[1]]
        opt = Adam([state.sa_weights, other.sa_weights])
        # simulate NID expansion re-creating the SA weights with values
        # equal to another user's registered parameter
        state.sa_weights = Parameter(other.sa_weights.data.copy())
        assert not opt.has_param(state.sa_weights)
        strategy._sync_optimizer(opt, state)
        assert opt.has_param(state.sa_weights)
        assert sum(1 for p in opt.params if p is state.sa_weights) == 1
        # idempotent: a second sync must not register a duplicate
        strategy._sync_optimizer(opt, state)
        assert sum(1 for p in opt.params if p is state.sa_weights) == 1

    def test_sparse_adam_selected_by_config(self, tiny_split):
        config = TrainConfig(epochs_pretrain=1, epochs_incremental=1,
                             num_negatives=4, seed=0, sparse_adam=True)
        strategy = make_strategy(
            "IMSR", "ComiRec-DR", tiny_split, config,
            model_kwargs={"dim": 10, "num_interests": 2})
        from repro.incremental.strategy import build_payloads

        payloads = build_payloads(tiny_split.pretrain, config)
        assert isinstance(strategy._optimizer(payloads), SparseAdam)


class TestSparseAdamTraining:
    def test_imsr_run_with_sparse_adam_stays_close_to_dense(self, tiny_split):
        from repro.experiments import run_strategy

        def run(sparse):
            config = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                                 num_negatives=4, seed=0, sparse_adam=sparse)
            strategy = make_strategy(
                "IMSR", "ComiRec-DR", tiny_split, config,
                model_kwargs={"dim": 10, "num_interests": 2})
            return run_strategy(strategy, tiny_split, "tiny", "ComiRec-DR")

        dense, sparse = run(False), run(True)
        # the momentum-tail deviation compounds over per-user steps, so
        # parameters drift — but the learned ranking must not: the runs
        # share every data order and random draw, and the headline
        # metrics stay within noise of each other
        assert np.isfinite(sparse.hr) and np.isfinite(sparse.ndcg)
        assert abs(dense.hr - sparse.hr) < 0.05
        assert abs(dense.ndcg - sparse.ndcg) < 0.05


class TestMomentRowGrowth:
    """Mid-stream cold start grows the embedding table in place; the
    optimizer's moment rows must follow — new rows zero (what a fresh
    optimizer would hold), pre-existing rows byte-identical."""

    def test_sparse_moments_grow_existing_rows_untouched(self, rng):
        emb = make_table(rng, rows=10, dim=5)
        opt = SparseAdam([emb.weight], lr=0.01)
        lookup_and_grad(emb, [0, 1, 2, 3], np.ones((4, 5)))
        opt.step()
        m_before = opt._m[0].copy()
        v_before = opt._v[0].copy()
        last_before = opt._last_step[0].copy()

        emb.grow(4, rng=np.random.default_rng(9))
        opt.zero_grad()
        lookup_and_grad(emb, [10, 11], np.ones((2, 5)))
        opt.step()

        assert opt._m[0].shape == (14, 5)
        np.testing.assert_array_equal(opt._m[0][:10], m_before)
        np.testing.assert_array_equal(opt._v[0][:10], v_before)
        np.testing.assert_array_equal(opt._last_step[0][:10], last_before)
        # grown rows that were never touched stay at zero moments
        np.testing.assert_array_equal(opt._m[0][12:], 0.0)
        np.testing.assert_array_equal(opt._v[0][12:], 0.0)

    def test_grown_row_update_matches_fresh_optimizer(self, rng):
        """A grown row's first update must equal the update a freshly
        constructed optimizer would apply (zero moments, same step)."""
        emb = make_table(np.random.default_rng(3), rows=10, dim=5)
        emb.grow(2, rng=np.random.default_rng(9))
        grown = emb.weight.data[10:].copy()

        opt = SparseAdam([emb.weight], lr=0.01)  # fresh: knows 12 rows
        lookup_and_grad(emb, [10, 11], np.full((2, 5), 0.5))
        opt.step()
        fresh_result = emb.weight.data[10:].copy()

        emb2 = make_table(np.random.default_rng(3), rows=10, dim=5)
        opt2 = SparseAdam([emb2.weight], lr=0.01)  # constructed pre-growth
        emb2.grow(2, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(emb2.weight.data[10:], grown)
        lookup_and_grad(emb2, [10, 11], np.full((2, 5), 0.5))
        opt2.step()
        np.testing.assert_array_equal(emb2.weight.data[10:], fresh_result)

    def test_dense_adam_moments_grow_too(self, rng):
        emb = make_table(rng, rows=8, dim=4)
        emb.weight._touched_rows = None  # force the dense path
        opt = Adam([emb.weight], lr=0.01)
        lookup_and_grad(emb, [0, 1], np.ones((2, 4)))
        opt.step()
        emb.grow(3, rng=np.random.default_rng(1))
        opt.zero_grad()
        lookup_and_grad(emb, [8, 9, 10], np.ones((3, 4)))
        opt.step()
        assert opt._m[0].shape == (11, 4)
        assert opt._v[0].shape == (11, 4)
