"""Observability acceptance properties.

Tracing is telemetry, not physics: turning it on must leave every run
metric bit-identical (per-user *and* micro-batched engines), survive a
crash at every span boundary alongside the checkpoint journal, and the
trace alone must reconstruct each NID expansion, PIT trim, EIR loss,
fault firing, and rollback incident the run actually made.
"""

import json

import pytest

from repro.experiments import make_strategy, run_strategy
from repro.faults import FaultPlan, SimulatedCrash, active
from repro.incremental import TrainConfig
from repro.obs import read_trace, summarize_trace

from tests.test_crash_resume import (
    assert_metric_identical,
    build,
    fast_config,
)


def traced_run(tiny_split, trace_dir, *, config=None, resume=False,
               checkpoint_dir=None):
    return run_strategy(build(tiny_split, config=config), tiny_split,
                        "tiny", "ComiRec-DR", trace_dir=trace_dir,
                        resume=resume, checkpoint_dir=checkpoint_dir)


class TestTracingIsInert:
    """The zero-interference property, on both execution engines."""

    @pytest.mark.parametrize("users_per_batch", [1, 4])
    def test_traced_run_is_bit_identical(self, tiny_split, tmp_path,
                                         users_per_batch):
        config = fast_config(users_per_batch=users_per_batch,
                             batched_snapshots=users_per_batch > 1)
        reference = run_strategy(build(tiny_split, config=config),
                                 tiny_split, "tiny", "ComiRec-DR")
        traced = traced_run(tiny_split, tmp_path, config=config)
        assert_metric_identical(traced, reference)
        events, skipped = read_trace(tmp_path)
        assert skipped == 0 and len(events) > 10

    def test_trace_dir_is_off_by_default(self, tiny_split):
        result = run_strategy(build(tiny_split), tiny_split, "tiny",
                              "ComiRec-DR")
        assert result.per_span  # and no tracer was ever started
        from repro.obs import enabled
        assert not enabled()


class TestTimingAttribution:
    """RunResult reports train/extract/eval wall clock per span, and a
    resumed run restores the original spans' timings from the journal
    instead of reporting zeros."""

    def test_result_carries_per_span_timings(self, tiny_split, tmp_path):
        result = traced_run(tiny_split, tmp_path / "trace",
                            checkpoint_dir=tmp_path / "ck")
        spans = list(range(tiny_split.T))
        assert sorted(result.train_times) == spans
        assert sorted(result.extract_times) == spans
        assert sorted(result.eval_times) == spans[1:]  # pretrain: no eval
        assert all(v > 0 for v in result.train_times.values())
        assert all(v >= 0 for v in result.extract_times.values())
        assert all(v > 0 for v in result.eval_times.values())

    def test_resume_restores_committed_timings(self, tiny_split, tmp_path):
        plan = FaultPlan().crash_at_span_boundary(2)
        with active(plan):
            with pytest.raises(SimulatedCrash):
                run_strategy(build(tiny_split), tiny_split, "tiny",
                             "ComiRec-DR", checkpoint_dir=tmp_path)
        resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                               "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == [1, 2]
        # the reused spans carry the *original* process's wall clock,
        # journaled at commit time — honest cumulative timings
        for span in (1, 2):
            assert resumed.train_times[span] > 0
            assert resumed.eval_times[span] > 0


class TestCrashResumeWithTracing:
    """Tracing + journaling + crash at every boundary: the resumed run
    stays metric-identical and the trace survives as two segments."""

    @pytest.fixture(scope="class")
    def baseline(self, tiny_split):
        return run_strategy(build(tiny_split), tiny_split, "tiny",
                            "ComiRec-DR")

    @pytest.mark.parametrize("boundary", [0, 1, 2, 3])
    def test_crash_then_resume_with_tracing(self, tiny_split, baseline,
                                            tmp_path, boundary):
        ckdir, trdir = tmp_path / "ck", tmp_path / "trace"
        plan = FaultPlan(seed=boundary).crash_at_span_boundary(boundary)
        with active(plan):
            with pytest.raises(SimulatedCrash):
                traced_run(tiny_split, trdir, checkpoint_dir=ckdir)
        # the crash interrupted the tracer mid-run: the sink must still
        # parse (at most the torn final line is lost) and must contain
        # the fault firing itself
        events, skipped = read_trace(trdir)
        assert skipped <= 1
        fired = [e for e in events if e.get("kind") == "event"
                 and e.get("name") == "fault.fired"]
        assert fired and fired[-1]["fields"]["point"] == "span-boundary"

        resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                               "ComiRec-DR", checkpoint_dir=ckdir,
                               resume=True, trace_dir=trdir)
        assert_metric_identical(resumed, baseline)
        summary = summarize_trace(trdir)
        assert [r["resumed"] for r in summary["runs"]] == [False, True]
        assert summary["skipped_lines"] == 0  # torn tail was truncated
        resumed_events = [e for e in read_trace(trdir)[0]
                          if e.get("kind") == "event"
                          and e.get("name") == "span.resumed"]
        assert [e["fields"]["span_id"] for e in resumed_events] == \
            list(range(1, boundary + 1))


class TestDecisionReconstruction:
    """Acceptance criterion: the trace alone reconstructs every decision
    the strategies made — checked against the strategies' own logs."""

    @pytest.fixture(scope="class")
    def traced(self, tiny_split, tmp_path_factory):
        trdir = tmp_path_factory.mktemp("decisions")
        strategy = build(tiny_split)
        result = run_strategy(strategy, tiny_split, "tiny", "ComiRec-DR",
                              trace_dir=trdir)
        return trdir, strategy, result

    def test_nid_expansions_match_strategy_log(self, traced):
        trdir, strategy, _ = traced
        summary = summarize_trace(trdir)
        expected = {t: sorted(users)
                    for t, users in strategy.expansion_log.items()}
        assert summary["nid_expansions"] == expected
        assert summary["nid_expansions"]  # the tiny world does expand

    def test_pit_trims_match_strategy_log(self, traced):
        trdir, strategy, _ = traced
        summary = summarize_trace(trdir)
        expected = {t: sum(per_user.values())
                    for t, per_user in strategy.trim_log.items() if per_user}
        assert summary["pit_trims"] == expected

    def test_eir_losses_are_recorded_per_user(self, traced):
        trdir, _, _ = traced
        events, _ = read_trace(trdir)
        distill = [e for e in events if e.get("kind") == "event"
                   and e.get("name") == "eir.distill"]
        assert distill
        for e in distill:
            fields = e["fields"]
            assert fields["kd"] >= 0.0
            assert fields["retainer"]
            assert fields["span_id"] >= 1  # EIR only acts incrementally

    def test_journal_commits_are_traced(self, tiny_split, tmp_path):
        result = traced_run(tiny_split, tmp_path / "trace",
                            checkpoint_dir=tmp_path / "ck")
        assert result.incidents == []
        summary = summarize_trace(tmp_path / "trace")
        assert summary["spans_committed"] == list(range(tiny_split.T))

    def test_fault_firings_are_traced(self, tiny_split, tmp_path):
        plan = FaultPlan().nan_loss_at_step(3)
        with active(plan):
            traced_run(tiny_split, tmp_path)
        summary = summarize_trace(tmp_path)
        assert {"point": "train-step", "kind": "modifier", "occurrence": 3} \
            in summary["faults"]
        # containment skipped the poisoned update and counted it
        assert summary["metrics"]["train.nonfinite_skips"]["value"] >= 1.0

    def test_rollback_incident_is_traced(self, tiny_split, tmp_path):
        plan = FaultPlan(seed=5).poison_params_after_span(2)
        with active(plan):
            result = traced_run(tiny_split, tmp_path / "trace",
                                checkpoint_dir=tmp_path / "ck")
        assert len(result.incidents) == 1
        summary = summarize_trace(tmp_path / "trace")
        assert summary["incidents"] == [
            {"span": 2, "kind": "non-finite-state",
             "action": "rolled-back-to-span-1"}]
        assert summary["metrics"]["divergence.rollbacks"]["value"] == 1.0
        events, _ = read_trace(tmp_path / "trace")
        rollbacks = [e for e in events if e.get("kind") == "event"
                     and e.get("name") == "divergence.rollback"]
        assert rollbacks[0]["fields"] == {"span_id": 2,
                                          "kind": "non-finite-state",
                                          "restored_span": 1}


class TestCliSummarize:
    def test_cli_renders_a_recorded_trace(self, tiny_split, tmp_path,
                                          capsys):
        from repro.cli import main

        traced_run(tiny_split, tmp_path)
        assert main(["trace", "summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "nid.expansion" in out and "metrics:" in out

        assert main(["trace", "summarize", str(tmp_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0

    def test_cli_reports_missing_trace(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
