"""Unit tests for repro.obs: metrics, tracer, sink recovery, summaries."""

import json
import logging

import numpy as np
import pytest

from repro.contracts import ContractViolation, enforced
from repro.obs import (
    DEFAULT_BUCKETS,
    META_NAME,
    METRICS_NAME,
    Histogram,
    MetricsRegistry,
    TraceError,
    bucket_counts,
    configure_logging,
    enabled,
    get_logger,
    is_timing_metric,
    read_trace,
    render_summary,
    start_tracing,
    summarize_trace,
    trace_fingerprint,
    tracing,
)
from repro.obs import trace as obs
from repro.obs.trace import fingerprint_view, strip_timing


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #
class TestBucketCounts:
    def test_matches_definition(self):
        edges = np.array([1.0, 2.0, 5.0])
        values = np.array([0.5, 1.0, 1.5, 2.0, 4.0, 5.0, 7.0])
        # bucket i: edges[i-1] < v <= edges[i]; overflow last
        counts = bucket_counts(values, edges)
        assert counts.tolist() == [2, 2, 2, 1]
        assert counts.dtype == np.int64

    def test_total_is_preserved(self, rng):
        values = rng.lognormal(size=257)
        counts = bucket_counts(values, np.asarray(DEFAULT_BUCKETS))
        assert int(counts.sum()) == values.size
        assert counts.size == len(DEFAULT_BUCKETS) + 1

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            bucket_counts(np.array([1.0]), np.array([2.0, 1.0]))
        with pytest.raises(ValueError, match="non-empty"):
            bucket_counts(np.array([1.0]), np.array([]))

    def test_shape_contract_enforced(self):
        with enforced():
            bucket_counts(np.array([1.0, 2.0]), np.array([1.5]))
            with pytest.raises(ContractViolation):
                bucket_counts(np.ones((2, 2)), np.array([1.5]))


class TestHistogram:
    def test_observe_many_equals_observe_loop(self, rng):
        values = rng.lognormal(size=100)
        one = Histogram("h")
        many = Histogram("h")
        for v in values:
            one.observe(v)
        many.observe_many(values)
        a, b = one.snapshot(), many.snapshot()
        # numpy's pairwise sum orders the adds differently than the
        # scalar loop; every discrete field must still match exactly
        assert a.pop("sum") == pytest.approx(b.pop("sum"))
        assert a == b

    def test_observe_many_empty_is_noop(self):
        hist = Histogram("h")
        hist.observe_many([])
        assert hist.count == 0 and hist.min is None

    def test_fixed_memory(self):
        hist = Histogram("h", edges=(1.0, 2.0))
        for v in range(1000):
            hist.observe(float(v))
        assert len(hist.counts) == 3
        assert hist.count == 1000 and hist.max == 999.0


class TestMetricsRegistry:
    def test_create_or_get_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("c", mode="fast")
        b = reg.counter("c", mode="fast")
        other = reg.counter("c", mode="slow")
        assert a is b and a is not other
        a.inc(2)
        snap = reg.snapshot()
        assert snap["c{mode=fast}"]["value"] == 2.0
        assert snap["c{mode=slow}"]["value"] == 0.0
        assert reg.updates == 3

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_filters_timings(self):
        reg = MetricsRegistry()
        reg.gauge("zeta").set(1)
        reg.counter("alpha").inc()
        reg.histogram("phase_seconds").observe(0.5)
        assert list(reg.snapshot()) == ["alpha", "phase_seconds", "zeta"]
        assert list(reg.snapshot(include_timings=False)) == ["alpha", "zeta"]

    def test_timing_suffixes(self):
        assert is_timing_metric("eval.rank_compute_seconds")
        assert is_timing_metric("span_ms")
        assert not is_timing_metric("nid.puzzlement")


# ---------------------------------------------------------------------- #
# tracer + probes
# ---------------------------------------------------------------------- #
class TestProbesDisabled:
    def test_off_by_default_and_noop(self):
        assert not enabled()
        assert obs.span("a", x=1) is obs.span("b")  # shared null span
        with obs.span("a"):
            pass
        obs.event("e", x=1)
        obs.counter("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        obs.observe_many("h", [0.5, 1.5])
        obs.sync()
        assert obs.current_tracer() is None


class TestTracer:
    def test_span_nesting_ids_and_events(self, tmp_path):
        with tracing(tmp_path, run_id="t") as tracer:
            with tracer.span("outer", key="v") as outer:
                with tracer.span("inner") as inner:
                    tracer.event("decided", user=3)
                assert tracer.current_span_id() == outer.id
        events, skipped = read_trace(tmp_path)
        assert skipped == 0
        kinds = [e["kind"] for e in events]
        assert kinds == ["trace_open", "span_start", "span_start",
                        "event", "span_end", "span_end"]
        starts = {e["name"]: e for e in events if e["kind"] == "span_start"}
        assert starts["outer"]["parent"] is None
        assert starts["inner"]["parent"] == starts["outer"]["id"]
        assert starts["outer"]["id"] < starts["inner"]["id"]
        decided = [e for e in events if e["kind"] == "event"][0]
        assert decided["span"] == inner.id
        assert decided["fields"] == {"user": 3}

    def test_span_records_error(self, tmp_path):
        with tracing(tmp_path):
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("x")
        events, _ = read_trace(tmp_path)
        end = [e for e in events if e["kind"] == "span_end"][0]
        assert end["error"] == "RuntimeError"

    def test_double_start_is_an_error(self, tmp_path):
        with tracing(tmp_path / "a"):
            with pytest.raises(TraceError, match="already active"):
                start_tracing(tmp_path / "b")
        assert not enabled()

    def test_sidecars_and_metrics_record(self, tmp_path):
        with tracing(tmp_path) as tracer:
            obs.counter("imsr.capsules_added", 3)
            obs.observe("nid.puzzlement", 0.7)
        meta = json.loads((tmp_path / META_NAME).read_text())
        metrics = json.loads((tmp_path / METRICS_NAME).read_text())
        events, _ = read_trace(tmp_path)
        assert meta["events"] == len(events) == tracer.events_written
        assert meta["metric_updates"] == 2
        assert metrics["imsr.capsules_added"]["value"] == 3.0
        assert events[-1]["kind"] == "metrics"
        assert events[-1]["metrics"] == metrics

    def test_numpy_payloads_become_json(self, tmp_path):
        with tracing(tmp_path):
            obs.event("e", score=np.float32(0.5), n=np.int64(3),
                      flag=np.bool_(True), arr=np.arange(2))
        events, _ = read_trace(tmp_path)
        fields = [e for e in events if e["kind"] == "event"][0]["fields"]
        assert fields == {"score": 0.5, "n": 3, "flag": True, "arr": [0, 1]}


class TestCrashRecovery:
    def test_torn_tail_is_skipped_then_truncated_on_resume(self, tmp_path):
        with tracing(tmp_path):
            obs.event("before")
        trace_path = tmp_path / "trace.jsonl"
        with open(trace_path, "ab") as fh:
            fh.write(b'{"kind": "event", "name": "torn"')  # no newline
        events, skipped = read_trace(tmp_path)
        assert skipped == 1
        assert all(e.get("name") != "torn" for e in events)

        with tracing(tmp_path, resume=True):
            obs.event("after")
        events, skipped = read_trace(tmp_path)
        assert skipped == 0
        names = [e.get("name") for e in events if e["kind"] == "event"]
        assert names == ["before", "after"]
        opens = [e for e in events if e["kind"] == "trace_open"]
        assert [o["resumed"] for o in opens] == [False, True]

    def test_fresh_start_replaces_existing_trace(self, tmp_path):
        with tracing(tmp_path):
            obs.event("old")
        with tracing(tmp_path):
            obs.event("new")
        events, _ = read_trace(tmp_path)
        names = [e.get("name") for e in events if e["kind"] == "event"]
        assert names == ["new"]


class TestFingerprint:
    def test_live_fingerprint_matches_readback(self, tmp_path):
        with tracing(tmp_path) as tracer:
            with obs.span("run"):
                obs.observe("nid.puzzlement", 0.9)
                obs.observe("eval.rank_compute_seconds", 0.123)  # timing
                obs.event("nid.expansion", user=1)
        meta = json.loads((tmp_path / META_NAME).read_text())
        events, _ = read_trace(tmp_path)
        assert tracer.fingerprint() == meta["fingerprint"]
        assert trace_fingerprint(events) == meta["fingerprint"]

    def test_fingerprint_strips_wall_clock_only(self):
        record = {"kind": "span_end", "id": 2, "name": "x", "dur_s": 0.5}
        assert strip_timing(record) == {"kind": "span_end", "id": 2,
                                        "name": "x"}
        a = fingerprint_view({"kind": "metrics", "metrics": {
            "nid.puzzlement": {"count": 1},
            "eval.rank_compute_seconds": {"count": 1},
            "eval.rank_compute_seconds{mode=fast}": {"count": 2}}})
        assert list(a["metrics"]) == ["nid.puzzlement"]

    def test_identical_content_different_timings_same_fingerprint(
            self, tmp_path):
        prints = []
        for sub in ("a", "b"):
            with tracing(tmp_path / sub) as tracer:
                with obs.span("run", spans=4):
                    obs.event("pit.trim", removed=2)
                obs.observe("train.loss", 1.5)
            prints.append(tracer.fingerprint())
        assert prints[0] == prints[1]


# ---------------------------------------------------------------------- #
# logging bridge
# ---------------------------------------------------------------------- #
class TestLoggingBridge:
    def test_get_logger_nests_under_repro(self):
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger("tools").name == "repro.tools"

    def test_configure_is_idempotent(self):
        root = configure_logging(level=logging.WARNING)
        before = len(root.handlers)
        configure_logging(level=logging.INFO)
        assert len(root.handlers) == before
        assert root.level == logging.INFO

    def test_records_mirror_into_active_trace(self, tmp_path):
        logger = get_logger("repro.test_obs")
        with tracing(tmp_path):
            logger.warning("rollback to span %d", 2)
        logger.warning("after trace closed")  # must not raise
        events, _ = read_trace(tmp_path)
        logs = [e for e in events
                if e["kind"] == "event" and e["name"] == "log"]
        assert len(logs) == 1
        assert logs[0]["fields"] == {"level": "WARNING",
                                     "logger": "repro.test_obs",
                                     "message": "rollback to span 2"}


# ---------------------------------------------------------------------- #
# summaries
# ---------------------------------------------------------------------- #
class TestSummarize:
    def test_missing_trace_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no trace"):
            summarize_trace(tmp_path / "nope")

    def test_synthetic_trace_summary(self, tmp_path):
        with tracing(tmp_path, run_id="books-IMSR"):
            with obs.span("train_span", span_id=1):
                obs.event("nid.expansion", user=4, span_id=1, puzzlement=0.9,
                          delta_k=2, num_interests=6)
                obs.event("nid.expansion", user=1, span_id=1, puzzlement=0.8,
                          delta_k=2, num_interests=6)
                obs.event("pit.trim", user=4, span_id=1, removed=3,
                          remaining=3)
                obs.event("eir.distill", user=4, span_id=1, kd=0.25,
                          retainer="interest")
            obs.counter("imsr.capsules_added", 4)
        summary = summarize_trace(tmp_path)
        assert summary["runs"] == [{"run_id": "books-IMSR", "resumed": False}]
        assert summary["nid_expansions"] == {1: [1, 4]}
        assert summary["pit_trims"] == {1: 3}
        assert summary["eir"]["count"] == 1
        assert summary["eir"]["max"] == 0.25
        assert summary["metrics"]["imsr.capsules_added"]["value"] == 4.0
        assert summary["spans"]["train_span"]["closed"] == 1

        text = render_summary(summary)
        assert "nid.expansion  span 1: 2 user(s) [1, 4]" in text
        assert "pit.trim       span 1: 3 capsule(s) removed" in text
        assert summary["fingerprint"][:16] in text
