"""Unit tests for functional ops (softmax, squash, losses) and their grads."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, concat, stack, where
from repro.autograd import ops


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        out = ops.softmax(x, axis=1).data
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self, rng):
        x = rng.normal(size=(3, 4))
        a = ops.softmax(Tensor(x), axis=1).data
        b = ops.softmax(Tensor(x + 100.0), axis=1).data
        assert np.allclose(a, b)

    def test_stable_for_large_logits(self):
        out = ops.softmax(Tensor([1000.0, 0.0]), axis=0).data
        assert np.isfinite(out).all()
        assert out[0] > 0.999

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        assert np.allclose(
            ops.log_softmax(x, axis=1).data,
            np.log(ops.softmax(x, axis=1).data),
        )

    def test_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: ops.softmax(x, axis=1)[:, 0].sum(), [x])

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: ops.log_softmax(x, axis=0).mean(), [x])


class TestSquash:
    def test_preserves_direction(self, rng):
        x = rng.normal(size=(4, 6))
        out = ops.squash(Tensor(x)).data
        for row_in, row_out in zip(x, out):
            cos = row_in @ row_out / (
                np.linalg.norm(row_in) * np.linalg.norm(row_out)
            )
            assert cos > 0.999

    def test_norm_below_one(self, rng):
        x = rng.normal(size=(8, 5)) * 10
        norms = np.linalg.norm(ops.squash(Tensor(x)).data, axis=1)
        assert (norms < 1.0).all()

    def test_small_vectors_shrink_quadratically(self):
        x = np.array([[1e-3, 0.0]])
        out = ops.squash(Tensor(x)).data
        # |squash(v)| ~ |v|^2 / (1+|v|^2) * 1 -> tiny
        assert np.linalg.norm(out) < 1e-5

    def test_zero_vector_is_safe(self):
        out = ops.squash(Tensor(np.zeros((1, 4)))).data
        assert np.isfinite(out).all()
        assert np.allclose(out, 0.0)

    def test_squash_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: ops.squash(x).norm(), [x])

    def test_monotone_in_magnitude(self):
        v = np.array([1.0, 0.0])
        small = np.linalg.norm(ops.squash(Tensor(0.5 * v[None])).data)
        large = np.linalg.norm(ops.squash(Tensor(2.0 * v[None])).data)
        assert large > small


class TestLosses:
    def test_bce_zero_when_equal(self, rng):
        p = Tensor(rng.uniform(0.1, 0.9, size=(4,)))
        assert ops.binary_cross_entropy(p, p).item() == pytest.approx(
            float(-(p.data * np.log(p.data)
                    + (1 - p.data) * np.log(1 - p.data)).mean())
        )

    def test_bce_minimized_at_target(self):
        target = Tensor([0.7])
        at_target = ops.binary_cross_entropy(Tensor([0.7]), target).item()
        away = ops.binary_cross_entropy(Tensor([0.2]), target).item()
        assert at_target < away

    def test_bce_grad(self, rng):
        logits = Tensor(rng.normal(size=(5,)), requires_grad=True)
        target = Tensor(rng.uniform(0.2, 0.8, size=(5,)))
        check_gradients(
            lambda l: ops.binary_cross_entropy(l.sigmoid(), target), [logits])

    def test_soft_ce_minimized_when_matching(self, rng):
        logits = rng.normal(size=(3, 4))
        targets = ops.softmax(Tensor(logits), axis=1)
        matched = ops.cross_entropy_with_soft_targets(Tensor(logits), targets)
        other = ops.cross_entropy_with_soft_targets(
            Tensor(rng.normal(size=(3, 4)) * 3), targets)
        assert matched.item() < other.item()

    def test_soft_ce_grad(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = Tensor(np.full((3, 4), 0.25))
        check_gradients(
            lambda l: ops.cross_entropy_with_soft_targets(l, targets), [logits])

    def test_mse_zero_iff_equal(self, rng):
        a = Tensor(rng.normal(size=(3, 3)))
        assert ops.mse(a, a).item() == 0.0
        b = Tensor(a.data + 1.0)
        assert ops.mse(a, b).item() == pytest.approx(1.0)

    def test_dot_rows(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(4, 3))
        out = ops.dot_rows(Tensor(a), Tensor(b)).data
        assert np.allclose(out, (a * b).sum(axis=1))


class TestStructuralOps:
    def test_concat_forward(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        out = concat([Tensor(a), Tensor(b)], axis=0)
        assert np.allclose(out.data, np.concatenate([a, b], axis=0))

    def test_concat_grad_splits_correctly(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_concat_axis1(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda a, b: concat([a, b], axis=1).norm(), [a, b])

    def test_stack_forward_and_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda a, b: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_where_selects(self):
        cond = np.array([True, False, True])
        out = where(cond, Tensor([1.0, 1.0, 1.0]), Tensor([9.0, 9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0, 1.0])

    def test_where_grad_masks(self, rng):
        cond = np.array([True, False, True, False])
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, cond.astype(float))
        assert np.allclose(b.grad, (~cond).astype(float))
