"""End-to-end integration tests: full protocol runs at tiny scale.

These verify the whole pipeline (world → split → pretrain → spans →
evaluation) holds together for every strategy/model pairing, and that a
handful of robust qualitative facts come out right even at test scale.
Fine-grained paper-shape checks live in the benchmarks, which run at
larger scale.
"""

import numpy as np
import pytest

from repro.data import WorldConfig, load_custom
from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig
from repro.lifelong import LimaRec, LimaRecModel, MIMN
from repro.models import make_model


@pytest.fixture(scope="module")
def world_and_split():
    config = WorldConfig(
        num_users=32, num_items=160, num_topics=10,
        new_topic_rate=0.5, num_spans=4,
        pretrain_events_per_user=(20, 30),
        span_events_per_user=(8, 12),
        span_activity=0.85, seed=11,
    )
    return load_custom(config, T=4)


@pytest.fixture(scope="module")
def config():
    return TrainConfig(epochs_pretrain=4, epochs_incremental=2,
                       num_negatives=6, seed=0)


@pytest.mark.parametrize("strategy_name", ["FT", "FR", "SML", "ADER", "IMSR"])
@pytest.mark.parametrize("model_name", ["ComiRec-DR", "ComiRec-SA"])
def test_full_protocol_runs(world_and_split, config, strategy_name, model_name):
    _, split = world_and_split
    strategy = make_strategy(strategy_name, model_name, split, config,
                             model_kwargs={"dim": 16, "num_interests": 3})
    result = run_strategy(strategy, split)
    assert len(result.per_span) == split.T - 1
    assert all(np.isfinite([r.hr, r.ndcg]).all() for r in result.per_span)
    assert all(r.num_cases > 0 for r in result.per_span)
    assert result.hr > 0.0  # a trained model must beat the empty baseline


def test_trained_model_beats_untrained(world_and_split, config):
    _, split = world_and_split
    trained = make_strategy("FT", "ComiRec-DR", split, config,
                            model_kwargs={"dim": 16, "num_interests": 3})
    trained_result = run_strategy(trained, split)

    untrained = make_strategy(
        "FT", "ComiRec-DR", split,
        TrainConfig(epochs_pretrain=0, epochs_incremental=0, seed=0),
        model_kwargs={"dim": 16, "num_interests": 3})
    untrained_result = run_strategy(untrained, split)
    assert trained_result.hr > untrained_result.hr


def test_imsr_grows_interests_under_churn(world_and_split, config):
    _, split = world_and_split
    strategy = make_strategy("IMSR", "ComiRec-DR", split, config,
                             model_kwargs={"dim": 16, "num_interests": 3})
    result = run_strategy(strategy, split)
    assert result.interest_counts[-1] > result.interest_counts[0] - 1e-9
    assert result.interest_counts[-1] > 3.0


def test_fr_training_time_exceeds_ft(world_and_split, config):
    _, split = world_and_split
    times = {}
    for name in ("FR", "FT"):
        strategy = make_strategy(name, "ComiRec-DR", split, config,
                                 model_kwargs={"dim": 16, "num_interests": 3})
        result = run_strategy(strategy, split)
        times[name] = sum(v for k, v in result.train_times.items() if k > 0)
    assert times["FR"] > times["FT"]


def test_lifelong_baselines_complete(world_and_split, config):
    _, split = world_and_split
    mimn = MIMN(make_model("ComiRec-DR", split.num_items, dim=16,
                           num_interests=3, seed=0), split, config)
    mimn_result = run_strategy(mimn, split)
    lima = LimaRec(LimaRecModel(split.num_items, dim=16, num_interests=3,
                                key_dim=8, seed=0), split, config)
    lima_result = run_strategy(lima, split)
    for result in (mimn_result, lima_result):
        assert np.isfinite(result.hr)
        assert len(result.per_span) == split.T - 1


def test_determinism_same_seed_same_result(world_and_split, config):
    _, split = world_and_split

    def run_once():
        strategy = make_strategy("IMSR", "ComiRec-DR", split, config,
                                 model_kwargs={"dim": 16, "num_interests": 3})
        return run_strategy(strategy, split)

    a, b = run_once(), run_once()
    assert a.hr == pytest.approx(b.hr, abs=1e-12)
    assert a.ndcg == pytest.approx(b.ndcg, abs=1e-12)
    assert a.interest_counts == b.interest_counts


def test_different_seeds_differ(world_and_split):
    _, split = world_and_split

    def run_seed(seed):
        config = TrainConfig(epochs_pretrain=3, epochs_incremental=2,
                             seed=seed)
        strategy = make_strategy("FT", "ComiRec-DR", split, config,
                                 model_kwargs={"dim": 16, "num_interests": 3})
        return run_strategy(strategy, split)

    assert run_seed(0).hr != pytest.approx(run_seed(1).hr, abs=1e-12)
