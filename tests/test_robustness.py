"""Failure-injection and adversarial-input tests.

An incremental system ingests whatever the stream brings; these tests
verify the pipeline degrades gracefully instead of poisoning state.
"""

import numpy as np
import pytest

from repro.data import Interaction, split_time_spans
from repro.data.schema import SpanDataset, UserSpanData
from repro.eval import evaluate_span
from repro.incremental import FineTune, IMSR, TrainConfig
from repro.incremental.strategy import build_payloads
from repro.models import ComiRecDR, ComiRecSA


def dr_model(split, **kw):
    kw.setdefault("dim", 12)
    kw.setdefault("num_interests", 3)
    kw.setdefault("seed", 0)
    return ComiRecDR(split.num_items, **kw)


class TestNonFiniteContainment:
    def test_nan_loss_step_is_skipped(self, tiny_split, train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        payloads = build_payloads(tiny_split.pretrain, train_config)[:3]

        def poison(state, interests, payload):
            from repro.autograd import Tensor
            return Tensor(float("nan"), requires_grad=False) * interests.sum()

        before = strategy.model.state_dict()
        strategy._train(payloads, epochs=1, loss_hook=poison)
        # every step was skipped -> parameters untouched
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, before[name]), name

    def test_corrupted_embedding_row_does_not_spread(self, tiny_split,
                                                     train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        strategy.model.item_emb.weight.data[0] = np.inf
        strategy.pretrain()  # must not raise
        # users whose sequences avoid item 0 keep finite interests
        finite_users = sum(
            np.isfinite(s.interests).all() for s in strategy.states.values()
        )
        assert finite_users > 0

    def test_huge_learning_rate_stays_finite_with_clipping(self, tiny_split):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                             lr=5.0, grad_clip=1.0, seed=0)
        strategy = FineTune(dr_model(tiny_split), tiny_split, config)
        strategy.pretrain()
        assert np.isfinite(strategy.model.item_emb.weight.data).all()


class TestDegenerateData:
    def test_empty_span_trains_without_error(self, tiny_split, train_config):
        import copy

        split = copy.deepcopy(tiny_split)  # never mutate the shared fixture
        strategy = FineTune(dr_model(split), split, train_config)
        strategy.pretrain()
        split.spans[0].users.clear()
        strategy.train_span(1)  # span now empty: no-op, no crash
        assert 1 in strategy.train_times

    def test_single_interaction_users_skipped_in_payloads(self, train_config):
        span = SpanDataset(span_index=1)
        span.users[0] = UserSpanData(user=0, train_items=[5])
        assert build_payloads(span, train_config) == []

    def test_duplicate_only_sequence(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config)
        state = strategy.states[0]
        interests = strategy.model.compute_interests(state, [7, 7, 7, 7])
        assert np.isfinite(interests.data).all()

    def test_evaluation_with_all_equal_scores_scores_zero_hits(self):
        span = SpanDataset(span_index=1)
        span.users[0] = UserSpanData(user=0, train_items=[1], test_item=2)
        result = evaluate_span(lambda u: np.zeros(100), span, k=20)
        assert result.hr == 0.0  # pessimistic tie-breaking

    def test_one_user_stream_pipeline(self, train_config):
        interactions = [Interaction(0, i % 20, t / 40.0)
                        for i, t in enumerate(range(40))]
        split = split_time_spans(interactions, num_items=20, T=2, alpha=0.5)
        strategy = FineTune(dr_model(split), split, train_config)
        strategy.pretrain()
        strategy.train_span(1)
        assert np.isfinite(strategy.score_user(0)).all()

    def test_sa_user_never_in_any_span(self, tiny_split, train_config):
        model = ComiRecSA(tiny_split.num_items, dim=12, num_interests=3,
                          seed=0)
        strategy = FineTune(model, tiny_split, train_config)
        strategy.pretrain()
        # score a user that exists in states but may lack span data
        for user in strategy.states:
            scores = strategy.score_user(user)
            assert scores.shape == (tiny_split.num_items,)
            assert np.isfinite(scores).all()


class TestExtremeHyperparameters:
    def test_imsr_delta_k_zero(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        delta_k=0, c1=0.0)
        strategy.pretrain()
        strategy.train_span(1)
        assert set(strategy.interest_counts().values()) == {3}

    def test_imsr_negative_kd_weight_treated_as_off(self, tiny_split,
                                                    train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        kd_weight=-1.0)
        payload = build_payloads(tiny_split.spans[0], train_config)[0]
        state = strategy.states[payload.user]
        interests = strategy.model.compute_interests(state, payload.history)
        assert strategy._retention_loss(state, interests, payload) is None

    def test_max_interests_one_below_delta(self, tiny_split, train_config):
        # cap tighter than K0 + delta_k: expansion must never trigger
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        c1=0.0, delta_k=3, max_interests=4)
        strategy.pretrain()
        strategy.train_span(1)
        assert all(s.num_interests == 3 for s in strategy.states.values())
