"""Seeded mutant-agreement harness for the interprocedural rules.

Each trial copies a *real* source module, appends a seeded cross-call
mutation probe (a helper that may mutate its parameter, plus a caller
that hands it a ``capture()``-frozen snapshot — directly for RA801,
through a returned view for RA802), then checks **agreement**:

* static: RA801/RA802 fire at exactly the injected faulting line —
  and nowhere else in the real module (zero false positives);
* runtime: executing the same probe under ``sanitize.enforced()``
  raises at a write iff the static pass flagged one.

This is the PR's ground-truth check that the summary fixed point tracks
the runtime write-guard (``REPRO_SANITIZE=1``) one-for-one on real
code, not just on minimal fixtures.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import sanitize
from repro.analysis import analyze_paths

REPO = Path(__file__).resolve().parent.parent
REAL_MODULES = [
    REPO / "src" / "repro" / "incremental" / "ewc.py",
    REPO / "src" / "repro" / "incremental" / "ader.py",
    REPO / "src" / "repro" / "incremental" / "fine_tune.py",
]

#: (statement inside the helper, does it mutate its parameter?)
MUTATIONS = [
    ("mat *= 2.0", True),
    ("mat += 1.0", True),
    ("mat[0] = 3.0", True),
    ("mat.fill(0.0)", True),
    ("mat = mat * 2.0", False),  # rebinding is not mutation
]

#: (probe body lines, rule expected on a mutating helper, marker line)
PATTERNS = [
    (["snap = capture(arr)",
      "_ipa_mutate(snap)",
      "return snap"], "RA801", "_ipa_mutate(snap)"),
    (["snap = capture(arr)",
      "_ipa_mutate(snap.copy())",
      "return snap"], None, None),
    (["snap = capture(arr)",
      "head = _ipa_view(snap)",
      "head += 1.0",
      "return head"], "RA802", "head += 1.0"),
    (["snap = capture(arr)",
      "head = _ipa_view(snap).copy()",
      "head += 1.0",
      "return head"], None, None),
]


def _snippet(mutation: str, probe_lines) -> str:
    body = "\n".join(f"    {line}" for line in probe_lines)
    return (
        "\n\n"
        "def _ipa_mutate(mat):\n"
        f"    {mutation}\n"
        "    return mat\n"
        "\n\n"
        "def _ipa_view(mat):\n"
        "    return mat[:2]\n"
        "\n\n"
        "def _ipa_probe(arr):\n"
        f"{body}\n"
    )


def _seeded_trials(n=10):
    rng = np.random.default_rng(0xA801)
    trials = []
    for index in range(n):
        trials.append((
            index,
            int(rng.integers(len(REAL_MODULES))),
            int(rng.integers(len(MUTATIONS))),
            int(rng.integers(len(PATTERNS))),
        ))
    return trials


def _runtime_raises(snippet: str) -> bool:
    namespace = {"capture": sanitize.capture}
    exec(compile(snippet, "<mutant>", "exec"), namespace)
    arr = np.ones((4, 3))
    with sanitize.enforced():
        try:
            namespace["_ipa_probe"](arr)
        except ValueError:
            return True
    return False


@pytest.mark.parametrize("index,module_i,mutation_i,pattern_i",
                         _seeded_trials())
def test_static_and_runtime_agree(tmp_path, index, module_i, mutation_i,
                                  pattern_i):
    real = REAL_MODULES[module_i]
    mutation, mutates = MUTATIONS[mutation_i]
    probe_lines, rule_if_mutating, marker = PATTERNS[pattern_i]
    # RA802 writes through the view in the probe itself, so it fires (and
    # the runtime raises) regardless of what the helper does to its arg
    if rule_if_mutating == "RA802":
        expected_rule = "RA802"
    else:
        expected_rule = rule_if_mutating if mutates else None

    snippet = _snippet(mutation, probe_lines)
    mutant_source = real.read_text() + snippet
    mutant_path = tmp_path / f"mutant_{index}_{real.stem}.py"
    mutant_path.write_text(mutant_source)

    report = analyze_paths([str(mutant_path)])
    ra80x = [f for f in report.findings if f.rule.startswith("RA80")]

    if expected_rule is None:
        assert ra80x == [], [f.format() for f in ra80x]
    else:
        lines = mutant_source.splitlines()
        expected_line = next(i + 1 for i, text in enumerate(lines)
                             if text.strip() == marker)
        assert [(f.rule, f.line) for f in ra80x] == \
            [(expected_rule, expected_line)], [f.format() for f in ra80x]

    assert _runtime_raises(snippet) == (expected_rule is not None), (
        f"static/runtime disagreement for mutation {mutation!r}, "
        f"pattern {pattern_i}")


def test_every_pattern_and_mutation_covered_somewhere():
    # the seeded draw must exercise both rules and at least one negative
    trials = _seeded_trials()
    patterns_hit = {p for _, _, _, p in trials}
    mutations_hit = {m for _, _, m, _ in trials}
    assert {0, 2} & patterns_hit, "no positive pattern drawn"
    assert {1, 3} & patterns_hit, "no negative pattern drawn"
    assert any(MUTATIONS[m][1] for m in mutations_hit)
    assert len(trials) == 10
