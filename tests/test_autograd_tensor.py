"""Unit tests for the Tensor autograd engine (arithmetic + backward)."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad
from repro.autograd.tensor import _unbroadcast


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.data.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0]) + Tensor([2.0])
        assert out.data[0] == 3.0

    def test_radd_with_scalar(self):
        out = 2.0 + Tensor([1.0])
        assert out.data[0] == 3.0

    def test_sub_and_rsub(self):
        assert (Tensor([5.0]) - 2.0).data[0] == 3.0
        assert (7.0 - Tensor([5.0])).data[0] == 2.0

    def test_mul_div(self):
        assert (Tensor([3.0]) * 4.0).data[0] == 12.0
        assert (Tensor([8.0]) / 2.0).data[0] == 4.0
        assert (2.0 / Tensor([8.0])).data[0] == 0.25

    def test_neg_pow(self):
        assert (-Tensor([2.0])).data[0] == -2.0
        assert (Tensor([3.0]) ** 2).data[0] == 9.0

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)

    def test_broadcasting_add(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.ones(4))
        assert (a + b).shape == (3, 4)


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x
        y.backward()
        assert np.allclose(x.grad, [5.0])  # 2x + 1

    def test_grad_accumulates_over_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x feeds two paths that rejoin: grads must sum exactly once
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 5
        (a + b).backward()
        assert np.allclose(x.grad, [7.0])

    def test_reused_node(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x
        z = y + y
        z.backward()
        assert np.allclose(x.grad, [8.0])  # d(2x^2)/dx = 4x

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        (x * 3).backward(np.ones((2, 2)))
        assert np.allclose(x.grad, 3 * np.ones((2, 2)))

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_deep_chain_does_not_recurse(self):
        # iterative topo sort must handle graphs deeper than the default
        # Python recursion limit
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert np.allclose(x.grad, [1.0])


class TestGradientCorrectness:
    """Analytic vs central-difference gradients for every op."""

    @pytest.mark.parametrize("ashape,bshape", [
        ((3, 4), (4, 5)),
        ((4,), (4, 5)),
        ((3, 4), (4,)),
        ((4,), (4,)),
        ((2, 3, 4), (4, 5)),
        ((2, 3, 4), (2, 4, 5)),
    ])
    def test_matmul_grad(self, rng, ashape, bshape):
        a = Tensor(rng.normal(size=ashape), requires_grad=True)
        b = Tensor(rng.normal(size=bshape), requires_grad=True)
        check_gradients(lambda a, b: (a @ b).sum(), [a, b])

    @pytest.mark.parametrize("op", [
        lambda x: (x + x * 2.0).sum(),
        lambda x: (x * x).sum(),
        lambda x: (x / (x * x + 2.0)).sum(),
        lambda x: (x ** 3).sum(),
        lambda x: (-x).sum(),
        lambda x: x.tanh().sum(),
        lambda x: x.sigmoid().sum(),
        lambda x: x.exp().sum(),
        lambda x: x.relu().sum(),
        lambda x: x.abs().sum(),
        lambda x: x.clip(-0.5, 0.5).sum(),
        lambda x: x.mean(),
        lambda x: x.mean(axis=0).sum(),
        lambda x: x.sum(axis=1, keepdims=True).sum(),
        lambda x: x.max(),
        lambda x: x.max(axis=1).sum(),
        lambda x: x.norm(),
        lambda x: x.norm(axis=1).sum(),
        lambda x: x.reshape(-1).sum(),
        lambda x: x.T.sum(axis=0).max(),
        lambda x: x.swapaxes(0, 1).norm(),
        lambda x: x.expand_dims(0).squeeze(0).sum(),
        lambda x: x[1:, :2].sum(),
    ])
    def test_unary_grads(self, rng, op):
        # offset from 0 and clip boundaries to keep ops differentiable
        x = Tensor(rng.normal(size=(3, 4)) + 0.1, requires_grad=True)
        check_gradients(op, [x])

    def test_log_grad(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: x.log().sum(), [x])

    def test_broadcast_grads(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        c = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda a, b, c: ((a + b) * c).sum(), [a, b, c])

    def test_gather_rows_grad_with_duplicates(self, rng):
        table = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        idx = np.array([0, 2, 2, 5])
        check_gradients(lambda t: t.gather_rows(idx).sum(axis=1).max(), [table])

    def test_gather_rows_duplicate_accumulation(self):
        table = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = table.gather_rows(np.array([1, 1, 1]))
        out.sum().backward()
        assert np.allclose(table.grad[1], [3.0, 3.0])
        assert np.allclose(table.grad[0], [0.0, 0.0])


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sums_leading_dims(self):
        g = np.ones((5, 2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)
        assert np.allclose(_unbroadcast(g, (2, 3)), 5.0)

    def test_sums_size_one_dims(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        assert np.allclose(out, 2.0)

    def test_scalar_target(self):
        g = np.ones((4, 4))
        assert _unbroadcast(g, ()).shape == ()
        assert float(_unbroadcast(g, ())) == 16.0
