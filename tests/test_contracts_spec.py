"""The contract DSL: grammar, parse errors, and concrete shape matching."""

import numpy as np
import pytest

from repro.contracts import Contract, ContractParseError, parse_contract
from repro.contracts.spec import (
    AnyDim,
    Binding,
    EllipsisDim,
    FixedDim,
    SkipSpec,
    SymDim,
    TensorSpec,
    dtype_class_of,
    dtype_compatible,
    match_shape,
)


class TestParsing:
    def test_basic_contract(self):
        c = parse_contract("(B, T, D) f32 -> (B, K, D)")
        assert isinstance(c, Contract)
        assert len(c.inputs) == 1 and len(c.outputs) == 1
        spec = c.inputs[0]
        assert spec.dims == (SymDim("B"), SymDim("T"), SymDim("D"))
        assert spec.dtype == "f32"
        assert c.outputs[0].dtype == "any"

    def test_multiple_args_and_outputs(self):
        c = parse_contract("(N, D) f, (K, D) f -> (N, K) f, (N) f")
        assert len(c.inputs) == 2 and len(c.outputs) == 2

    def test_skip_spec(self):
        c = parse_contract("(N) f, _ -> ()")
        assert isinstance(c.inputs[1], SkipSpec)
        assert c.outputs[0].dims == ()

    def test_fixed_any_and_ellipsis_dims(self):
        c = parse_contract("(3, *, ...B) -> (...B)")
        dims = c.inputs[0].dims
        assert dims == (FixedDim(3), AnyDim(), EllipsisDim("B"))
        assert c.inputs[0].ellipsis_index == 2
        assert c.inputs[0].min_ndim == 2

    def test_symbol_names_in_order(self):
        c = parse_contract("(K, D) f, (), (N, D) f -> (KN, KO) f, (KN) f")
        assert c.symbol_names() == ["K", "D", "N", "KN", "KO"]
        assert c.input_symbols() == ["K", "D", "N"]

    @pytest.mark.parametrize("bad", [
        "(N, D) f",                    # no arrow
        "(N) -> (N) -> (N)",           # two arrows
        "(N, D -> (N)",                # unbalanced paren
        "(N,, D) -> (N)",              # empty dim
        "(N) q8 -> (N)",               # unknown dtype
        "N, D -> (N)",                 # missing parens
        "(...A, ...B) -> ()",          # two ellipses in one spec
        " -> (N)",                     # empty input side
        "(N) -> ",                     # empty output side
        "(N) f, -> (N)",               # stray comma
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ContractParseError):
            parse_contract(bad)

    def test_roundtrip_str(self):
        text = "(N, D) f, (K, D) f -> (N, K) f"
        assert str(parse_contract(text)) == text


class TestDtypeClasses:
    def test_classification(self):
        assert dtype_class_of(np.float64) == "f64"
        assert dtype_class_of(np.float32) == "f32"
        assert dtype_class_of(np.int64) == "i64"
        assert dtype_class_of(np.int32) == "i32"
        assert dtype_class_of(np.bool_) == "b"

    def test_compatibility(self):
        assert dtype_compatible("f", "f64")
        assert dtype_compatible("f", "f32")
        assert dtype_compatible("any", "b")
        assert dtype_compatible("i", "i32")
        assert not dtype_compatible("f64", "f32")
        assert not dtype_compatible("i", "f64")
        assert not dtype_compatible("b", "f64")


def spec_of(text):
    spec = parse_contract(f"{text} -> ()").inputs[0]
    assert isinstance(spec, TensorSpec)
    return spec


class TestMatchShape:
    def test_binds_and_checks_symbols(self):
        binding = Binding()
        assert match_shape(spec_of("(N, D)"), (4, 8), binding) is None
        assert binding == {"N": 4, "D": 8}
        # D reused consistently
        assert match_shape(spec_of("(K, D)"), (3, 8), binding) is None
        # D contradicted
        error = match_shape(spec_of("(M, D)"), (5, 9), binding)
        assert error is not None and "'D'" in error

    def test_fixed_and_any(self):
        binding = Binding()
        assert match_shape(spec_of("(3, *)"), (3, 17), binding) is None
        assert match_shape(spec_of("(3, *)"), (4, 17), binding) is not None

    def test_ndim_mismatch(self):
        assert match_shape(spec_of("(N, D)"), (4,), Binding()) is not None
        assert match_shape(spec_of("()"), (1,), Binding()) is not None
        assert match_shape(spec_of("()"), (), Binding()) is None

    def test_ellipsis_runs(self):
        binding = Binding()
        assert match_shape(spec_of("(...B, D)"), (2, 3, 8), binding) is None
        assert binding["...B"] == (2, 3) and binding["D"] == 8
        # named run must repeat exactly
        assert match_shape(spec_of("(...B, K)"), (2, 3, 5), binding) is None
        error = match_shape(spec_of("(...B, M)"), (9, 9, 5), binding)
        assert error is not None

    def test_empty_ellipsis_run(self):
        binding = Binding()
        assert match_shape(spec_of("(...S)"), (), binding) is None
        assert match_shape(spec_of("(N, ...S)"), (4,), Binding()) is None
