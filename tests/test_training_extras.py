"""Tests for early stopping, seed averaging, and routing options."""

import numpy as np
import pytest

from repro.experiments import make_strategy, run_repeated
from repro.incremental import FineTune, TrainConfig
from repro.models import ComiRecDR


class TestEarlyStopping:
    def test_val_fn_stops_epoch_loop(self, tiny_split):
        config = TrainConfig(epochs_pretrain=50, epochs_incremental=2,
                             patience=1, seed=0)
        strategy = FineTune(
            ComiRecDR(tiny_split.num_items, dim=10, num_interests=2, seed=0),
            tiny_split, config)
        from repro.incremental.strategy import build_payloads

        payloads = build_payloads(tiny_split.pretrain, config)
        epochs_seen = []

        def epoch_hook(epoch, payload):
            if not epochs_seen or epochs_seen[-1] != epoch:
                epochs_seen.append(epoch)

        # a constant validation score never improves -> stop after
        # 1 + patience epochs
        strategy._train(payloads, epochs=50, epoch_hook=epoch_hook,
                        val_fn=lambda: 0.0)
        assert len(epochs_seen) <= 2

    def test_config_early_stopping_runs(self, tiny_split):
        config = TrainConfig(epochs_pretrain=30, epochs_incremental=2,
                             early_stopping=True, patience=1, seed=0)
        strategy = FineTune(
            ComiRecDR(tiny_split.num_items, dim=10, num_interests=2, seed=0),
            tiny_split, config)
        import time
        start = time.perf_counter()
        strategy.pretrain()
        stopped = time.perf_counter() - start

        config_full = TrainConfig(epochs_pretrain=30, epochs_incremental=2,
                                  early_stopping=False, seed=0)
        full = FineTune(
            ComiRecDR(tiny_split.num_items, dim=10, num_interests=2, seed=0),
            tiny_split, config_full)
        start = time.perf_counter()
        full.pretrain()
        unstopped = time.perf_counter() - start
        assert stopped < unstopped  # early stopping saved epochs

    def test_payload_val_score_in_unit_interval(self, tiny_split):
        config = TrainConfig(epochs_pretrain=1, epochs_incremental=1, seed=0)
        strategy = FineTune(
            ComiRecDR(tiny_split.num_items, dim=10, num_interests=2, seed=0),
            tiny_split, config)
        from repro.incremental.strategy import build_payloads

        payloads = build_payloads(tiny_split.pretrain, config)
        score = strategy._payload_val_score(payloads)
        assert 0.0 <= score <= 1.0


class TestRunRepeated:
    def test_average_of_seeds(self, tiny_split):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=1, seed=0)
        result = run_repeated("tiny", "ComiRec-DR", "FT", tiny_split,
                              config=config, repeats=2,
                              model_kwargs={"dim": 10, "num_interests": 2})
        assert len(result.per_seed) == 2
        expected = np.mean([
            np.mean([r.hr for r in seed.per_span])
            for seed in result.per_seed
        ])
        assert result.hr == pytest.approx(expected, abs=1e-9)

    def test_bad_repeats_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            run_repeated("tiny", "ComiRec-DR", "FT", tiny_split, repeats=0)


class TestRoutingOptions:
    def test_capsule_normalization_differs(self, tiny_split):
        seq = [1, 4, 9, 2]
        outs = {}
        for normalize in ("items", "capsules"):
            model = ComiRecDR(tiny_split.num_items, dim=10, num_interests=3,
                              seed=0, routing_normalize=normalize)
            state = model.init_user_state(0)
            outs[normalize] = model.compute_interests(state, seq).data.copy()
        assert not np.allclose(outs["items"], outs["capsules"])

    def test_bad_normalization_rejected(self, tiny_split):
        model = ComiRecDR(tiny_split.num_items, dim=10, num_interests=3,
                          seed=0, routing_normalize="rows")
        state = model.init_user_state(0)
        with pytest.raises(ValueError):
            model.compute_interests(state, [1, 2])

    def test_cold_start_ignores_stored_interests(self, tiny_split):
        model = ComiRecDR(tiny_split.num_items, dim=10, num_interests=3,
                          seed=0, warm_start=False)
        state = model.init_user_state(0)
        a = model.compute_interests(state, [1, 4, 9]).data
        state.interests = state.interests + 10.0  # would change warm-start
        b = model.compute_interests(state, [1, 4, 9]).data
        # cold start draws fresh random inits, so outputs differ run to run
        # but must not be influenced *deterministically* by stored state
        assert a.shape == b.shape

    def test_warm_start_uses_stored_interests(self, tiny_split):
        model = ComiRecDR(tiny_split.num_items, dim=10, num_interests=3,
                          seed=0, warm_start=True)
        state = model.init_user_state(0)
        a = model.compute_interests(state, [1, 4, 9]).data
        state.interests = state.interests * -2.0
        b = model.compute_interests(state, [1, 4, 9]).data
        assert not np.allclose(a, b)
