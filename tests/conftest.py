"""Shared fixtures: tiny deterministic worlds, splits, and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import WorldConfig, generate_world, split_time_spans
from repro.incremental import TrainConfig
from repro.models import ComiRecDR, ComiRecSA, MIND


TINY_CONFIG = WorldConfig(
    num_users=16,
    num_items=80,
    num_topics=8,
    init_topics_per_user=(2, 3),
    new_topic_rate=0.6,
    num_spans=4,
    pretrain_events_per_user=(16, 24),
    span_events_per_user=(6, 10),
    initial_catalog_fraction=0.8,
    span_activity=0.9,
    seed=7,
)


@pytest.fixture(scope="session")
def tiny_world():
    return generate_world(TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_split(tiny_world):
    return split_time_spans(
        tiny_world.interactions, num_items=TINY_CONFIG.num_items,
        T=TINY_CONFIG.num_spans, alpha=0.5,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def train_config():
    return TrainConfig(epochs_pretrain=2, epochs_incremental=2,
                       lr=0.05, num_negatives=5, seed=0)


@pytest.fixture(params=["MIND", "ComiRec-DR", "ComiRec-SA"])
def any_model(request, tiny_split):
    cls = {"MIND": MIND, "ComiRec-DR": ComiRecDR, "ComiRec-SA": ComiRecSA}
    return cls[request.param](tiny_split.num_items, dim=12, num_interests=3, seed=1)
