"""Runtime enforcement: the decorator, the switch, and the registry."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.contracts import (
    CONTRACT_REGISTRY,
    ContractDefinitionError,
    ContractViolation,
    checking_enabled,
    contract_for,
    enforce,
    enforced,
    load_annotated,
    registry_rows,
    shape_contract,
)


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests.T


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def bad_affinity(items, interests):
    # wrong output orientation: returns (K, N); the static pass
    # rightly flags this deliberate runtime fixture
    return interests @ items.T  # repro: noqa[RA501] intentional violation


@pytest.fixture
def checks_on():
    with enforced(True):
        yield


class TestSwitch:
    @pytest.fixture(autouse=True)
    def force_off(self):
        # the suite may itself run under REPRO_CHECK_SHAPES=1; these
        # tests need a known off state to exercise the switch
        prev = enforce(False)
        yield
        enforce(prev)

    def test_off_and_restored(self):
        assert not checking_enabled()
        with enforced(True):
            assert checking_enabled()
        assert not checking_enabled()

    def test_enforce_returns_previous(self):
        assert enforce(True) is False
        assert enforce(False) is True
        assert not checking_enabled()

    def test_environment_variable_opt_in(self):
        probe = ("from repro.contracts import checking_enabled; "
                 "print(checking_enabled())")
        for value, expected in (("1", "True"), ("0", "False"), ("", "False")):
            env = dict(os.environ, REPRO_CHECK_SHAPES=value,
                       PYTHONPATH="src")
            out = subprocess.run(
                [sys.executable, "-c", probe], capture_output=True,
                text=True, env=env, cwd=Path(__file__).resolve().parents[1])
            assert out.stdout.strip() == expected, (value, out.stderr)

    def test_no_checking_when_off(self):
        # a contract-violating (3-D) call sails through while enforcement
        # is off: numpy happily batches the matmul
        out = affinity(np.ones((2, 4, 3)), np.ones((5, 3)))
        assert out.shape == (2, 4, 5)

    def test_violation_is_value_error(self):
        # numpy's own shape errors are ValueError; ours must be catchable
        # by the same guards
        assert issubclass(ContractViolation, ValueError)


class TestChecking:
    def test_accepts_consistent_shapes(self, checks_on):
        out = affinity(np.ones((4, 3)), np.ones((5, 3)))
        assert out.shape == (4, 5)

    def test_rejects_cross_argument_mismatch(self, checks_on):
        with pytest.raises(ContractViolation, match="'interests'"):
            affinity(np.ones((4, 3)), np.ones((5, 4)))

    def test_rejects_wrong_ndim(self, checks_on):
        with pytest.raises(ContractViolation, match="'items'"):
            affinity(np.ones(4), np.ones((5, 4)))

    def test_rejects_bad_return(self, checks_on):
        with pytest.raises(ContractViolation, match="return value"):
            bad_affinity(np.ones((4, 3)), np.ones((5, 3)))

    def test_checks_tensor_data(self, checks_on):
        out = affinity(Tensor(np.ones((4, 3))), Tensor(np.ones((5, 3))))
        assert out.shape == (4, 5)
        with pytest.raises(ContractViolation):
            affinity(Tensor(np.ones((4, 3))), Tensor(np.ones((5, 4))))

    def test_rejects_dtype_class(self, checks_on):
        @shape_contract("(N) i -> () f")
        def total(idx):
            return float(idx.sum())

        assert total(np.arange(4)) == 6.0
        with pytest.raises(ContractViolation, match="dtype"):
            total(np.ones(4))  # float where i declared

    def test_skip_spec_and_none_skipped(self, checks_on):
        @shape_contract("(N) f, _, (M) f -> () f")
        def mixed(a, flag, b=None):
            return float(a.sum()) + (float(b.sum()) if b is not None else 0.0)

        assert mixed(np.ones(3), "anything") == 3.0
        assert mixed(np.ones(3), object(), np.ones(2)) == 5.0

    def test_scalar_specs(self, checks_on):
        @shape_contract("(), () -> () b")
        def less(a, b):
            return bool(a < b)

        assert less(1.0, 2.0) is True
        with pytest.raises(ContractViolation):
            less(np.ones(3), 2.0)

    def test_multi_output(self, checks_on):
        @shape_contract("(N, D) f -> (N) f, (D) f")
        def row_and_col_sums(x):
            return x.sum(axis=1), x.sum(axis=0)

        rows, cols = row_and_col_sums(np.ones((3, 5)))
        assert rows.shape == (3,) and cols.shape == (5,)

        @shape_contract("(N, D) f -> (N) f, (N) f")
        def liar(x):
            return x.sum(axis=1), x.sum(axis=0)  # repro: noqa[RA501] intentional violation

        with pytest.raises(ContractViolation):
            liar(np.ones((3, 5)))

    def test_keyword_and_default_arguments(self, checks_on):
        @shape_contract("(N) f, (N) f -> (N) f")
        def add(a, b=None):
            return a + (b if b is not None else 0.0)

        assert add(np.ones(3), b=np.ones(3)).shape == (3,)
        assert add(np.ones(3)).shape == (3,)  # unbound b is skipped
        with pytest.raises(ContractViolation):
            add(np.ones(3), b=np.ones(4))


class TestDefinitionErrors:
    def test_bad_spec_fails_at_decoration(self):
        with pytest.raises(ContractDefinitionError):
            @shape_contract("(N, D -> (N)")  # repro: noqa[RA502] intentional bad spec
            def broken(x):
                return x

    def test_arity_mismatch_fails_at_decoration(self):
        with pytest.raises(ContractDefinitionError):
            @shape_contract("(N) f, (M) f -> ()")  # repro: noqa[RA502] intentional arity mismatch
            def unary(x):
                return x


class TestRegistry:
    def test_decorated_functions_are_registered(self):
        entry = contract_for(affinity)
        assert entry is not None
        assert entry.key in CONTRACT_REGISTRY
        assert entry.spec == "(N, D) f, (K, D) f -> (N, K) f"
        assert entry.arg_names == ("items", "interests")

    def test_load_annotated_covers_the_stack(self):
        count = load_annotated()
        assert count >= 25
        modules = {row[0] for row in registry_rows()}
        for prefix in ("repro.autograd", "repro.nn", "repro.models",
                       "repro.incremental", "repro.eval"):
            assert any(m.startswith(prefix) for m in modules), prefix

    def test_wrapper_preserves_metadata(self):
        assert affinity.__name__ == "affinity"
        assert "module" not in (affinity.__doc__ or "")
