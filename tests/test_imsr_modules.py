"""Unit tests for the three IMSR modules: EIR, NID, PIT."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.incremental.imsr import (
    RETAINERS,
    detect_new_interests,
    euclidean_retention_loss,
    get_retainer,
    kl_from_uniform,
    mean_puzzlement,
    orthogonal_residual,
    project_new_interests,
    projection_matrix,
    puzzled_users,
    puzzlement,
    redundancy_report,
    sigmoid_distillation_loss,
    trim_mask,
)


class TestEIR:
    def test_zero_when_student_equals_teacher(self, rng):
        interests = rng.normal(size=(3, 4))
        targets = Tensor(rng.normal(size=(5, 4)))
        loss = sigmoid_distillation_loss(Tensor(interests), interests, targets)
        # BCE of p against itself equals its entropy, which is the minimum
        moved = sigmoid_distillation_loss(
            Tensor(interests + 2.0), interests, targets)
        assert loss.item() < moved.item()

    def test_gradient_pulls_student_to_teacher(self, rng):
        teacher = rng.normal(size=(2, 4))
        student = Tensor(teacher + 1.0, requires_grad=True)
        targets = Tensor(rng.normal(size=(6, 4)))
        loss = sigmoid_distillation_loss(student, teacher, targets)
        loss.backward()
        # one gradient step must reduce the loss
        stepped = Tensor(student.data - 0.1 * student.grad)
        assert sigmoid_distillation_loss(stepped, teacher, targets).item() < loss.item()

    def test_only_existing_rows_distilled(self, rng):
        teacher = rng.normal(size=(2, 4))
        student = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        targets = Tensor(rng.normal(size=(3, 4)))
        sigmoid_distillation_loss(student, teacher, targets).backward()
        assert np.abs(student.grad[:2]).sum() > 0
        assert np.allclose(student.grad[2:], 0.0)

    def test_empty_teacher_returns_zero(self, rng):
        loss = sigmoid_distillation_loss(
            Tensor(rng.normal(size=(2, 4))), np.zeros((0, 4)),
            Tensor(rng.normal(size=(3, 4))))
        assert loss.item() == 0.0

    def test_temperature_softens(self, rng):
        teacher = rng.normal(size=(2, 4)) * 4
        student = Tensor(teacher * -1.0)
        targets = Tensor(rng.normal(size=(4, 4)))
        sharp = sigmoid_distillation_loss(student, teacher, targets, temperature=0.5)
        soft = sigmoid_distillation_loss(student, teacher, targets, temperature=5.0)
        assert soft.item() < sharp.item()

    def test_dir_zero_iff_equal(self, rng):
        interests = rng.normal(size=(3, 4))
        assert euclidean_retention_loss(Tensor(interests), interests).item() == 0.0
        assert euclidean_retention_loss(
            Tensor(interests + 1), interests).item() == pytest.approx(1.0)

    def test_retainer_registry(self):
        assert set(RETAINERS) == {"EIR", "DIR", "KD1", "KD2", "KD3"}
        with pytest.raises(KeyError):
            get_retainer("KD9")

    @pytest.mark.parametrize("name", ["EIR", "DIR", "KD1", "KD2", "KD3"])
    def test_all_retainers_finite_and_nonnegative(self, rng, name):
        fn = get_retainer(name)
        interests = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        prev = rng.normal(size=(3, 6))
        targets = Tensor(rng.normal(size=(5, 6)))
        loss = fn(interests, prev, targets, temperature=1.0)
        assert np.isfinite(loss.item())
        assert loss.item() >= 0.0
        loss.backward()
        assert interests.grad is not None

    @pytest.mark.parametrize("name", ["KD1", "KD2", "KD3"])
    def test_kd_variants_zero_teacher_rows(self, rng, name):
        fn = get_retainer(name)
        loss = fn(Tensor(rng.normal(size=(2, 4))), np.zeros((0, 4)),
                  Tensor(rng.normal(size=(3, 4))))
        assert loss.item() == 0.0


class TestNID:
    def test_uniform_affinity_maximal_puzzlement(self):
        # orthogonal interests, item orthogonal to all -> all dot products 0
        interests = np.eye(4)[:3]
        item = np.zeros((1, 4))
        item[0, 3] = 1.0
        assert puzzlement(item, interests)[0] == pytest.approx(1.0)

    def test_dominated_affinity_low_puzzlement(self):
        interests = np.eye(4)[:3] * 10
        item = interests[[0]]  # identical to interest 0
        assert puzzlement(item, interests)[0] < 0.1

    def test_puzzlement_in_unit_interval(self, rng):
        scores = puzzlement(rng.normal(size=(20, 6)), rng.normal(size=(4, 6)))
        assert (scores > 0).all()
        assert (scores <= 1.0).all()

    def test_kl_nonnegative(self, rng):
        kl = kl_from_uniform(rng.normal(size=(10, 5)), rng.normal(size=(3, 5)))
        assert (kl >= -1e-12).all()

    def test_needs_at_least_one_interest(self, rng):
        with pytest.raises(ValueError):
            puzzlement(rng.normal(size=(3, 4)), np.zeros((0, 4)))

    def test_detection_threshold_direction(self):
        interests = np.eye(4)[:3]
        puzzled_item = np.array([[0.0, 0.0, 0.0, 1.0]])
        assert detect_new_interests(puzzled_item, interests, c1=0.9)
        confident_item = interests[[0]] * 10
        assert not detect_new_interests(confident_item, interests, c1=0.9)

    def test_larger_c1_stricter(self, rng):
        """The paper: 'too large c1 prevents the creation of new interests'."""
        embs = rng.normal(size=(10, 6)) * 0.3
        interests = rng.normal(size=(4, 6)) * 0.3
        fired = [detect_new_interests(embs, interests, c1)
                 for c1 in (0.1, 0.5, 0.9999)]
        assert fired[0] and not fired[-1]

    def test_mean_puzzlement_is_mean(self, rng):
        embs = rng.normal(size=(7, 5))
        interests = rng.normal(size=(3, 5))
        assert mean_puzzlement(embs, interests) == pytest.approx(
            float(puzzlement(embs, interests).mean()))

    def test_puzzled_users_set(self, rng):
        interests = {0: np.eye(4)[:2] * 10, 1: np.eye(4)[:2] * 10}
        embs = {
            0: np.array([[0.0, 0.0, 1.0, 0.0]]),  # orthogonal -> puzzled
            1: np.eye(4)[[0]] * 10,               # aligned -> confident
        }
        assert puzzled_users(embs, interests, c1=0.9) == [0]


class TestPIT:
    def test_projector_is_idempotent(self, rng):
        existing = rng.normal(size=(3, 8))
        proj = projection_matrix(existing)
        assert np.allclose(proj @ proj, proj, atol=1e-8)

    def test_projector_fixes_span_vectors(self, rng):
        existing = rng.normal(size=(3, 8))
        proj = projection_matrix(existing)
        combo = 0.3 * existing[0] + 0.7 * existing[2]
        assert np.allclose(proj @ combo, combo, atol=1e-8)

    def test_residual_orthogonal_to_existing(self, rng):
        existing = rng.normal(size=(3, 8))
        new = rng.normal(size=(2, 8))
        residual = orthogonal_residual(new, existing)
        assert np.allclose(residual @ existing.T, 0.0, atol=1e-8)

    def test_residual_of_in_span_vector_is_zero(self, rng):
        existing = rng.normal(size=(2, 6))
        redundant = (existing[0] - existing[1])[None, :]
        residual = orthogonal_residual(redundant, existing)
        assert np.allclose(residual, 0.0, atol=1e-8)

    def test_empty_existing_passthrough(self, rng):
        new = rng.normal(size=(2, 4))
        assert np.allclose(orthogonal_residual(new, np.zeros((0, 4))), new)

    def test_project_new_interests_in_graph(self, rng):
        interests = Tensor(rng.normal(size=(5, 6)), requires_grad=True)
        out = project_new_interests(interests, n_existing=3)
        assert out.shape == (5, 6)
        # existing rows unchanged
        assert np.allclose(out.data[:3], interests.data[:3])
        # new rows orthogonal to existing
        assert np.allclose(out.data[3:] @ interests.data[:3].T, 0.0, atol=1e-8)
        out.sum().backward()
        assert interests.grad is not None

    def test_project_noop_without_new_rows(self, rng):
        interests = Tensor(rng.normal(size=(3, 6)))
        out = project_new_interests(interests, n_existing=3)
        assert out is interests

    def test_trim_mask_only_new_rows(self):
        interests = np.vstack([np.ones((2, 4)), np.zeros((2, 4))])
        created = np.array([False, False, True, True])
        keep = trim_mask(interests, n_existing=2, c2=0.5,
                         created_this_span=created)
        assert keep.tolist() == [True, True, False, False]

    def test_trim_mask_spares_older_new_rows(self):
        # a low-norm row not created this span must be kept
        interests = np.vstack([np.ones((2, 4)), np.zeros((1, 4))])
        created = np.array([False, False, False])
        keep = trim_mask(interests, n_existing=2, c2=0.5,
                         created_this_span=created)
        assert keep.all()

    def test_trim_mask_norm_threshold(self):
        interests = np.vstack([
            np.ones((1, 4)),
            np.full((1, 4), 0.4),   # norm 0.8 >= 0.5 -> keep
            np.full((1, 4), 0.1),   # norm 0.2 <  0.5 -> trim
        ])
        created = np.array([False, True, True])
        keep = trim_mask(interests, n_existing=1, c2=0.5,
                         created_this_span=created)
        assert keep.tolist() == [True, True, False]

    def test_redundancy_report_flags_duplicates(self, rng):
        base = rng.normal(size=(2, 6))
        interests = np.vstack([base, base[0:1] * 1.01 + 1e-3])  # near-copy
        items = rng.normal(size=(30, 6))
        corr, norms = redundancy_report(interests, n_existing=2, item_embs=items)
        assert corr.shape == (1, 2)
        assert corr[0, 0] > 0.95
        assert norms.shape == (1,)

    def test_redundancy_report_orthogonal_new(self, rng):
        existing = np.zeros((1, 4)); existing[0, 0] = 1.0
        new = np.zeros((1, 4)); new[0, 1] = 1.0
        items = rng.normal(size=(50, 4))
        corr, _ = redundancy_report(np.vstack([existing, new]), 1, items)
        assert abs(corr[0, 0]) < 0.4
