"""Crash/resume equivalence: the headline crash-safety property.

A journaled run that crashes at *any* span boundary and is resumed must
be metric-identical (exact float equality, not tolerance) to the same
run executed uninterrupted — checkpoints capture every RNG stream, so
the resumed process continues the exact random sequence.
"""

import numpy as np
import pytest

from repro.experiments import (
    JOURNAL_NAME,
    JournalError,
    SpanJournal,
    make_strategy,
    run_strategy,
)
from repro.faults import Fault, FaultPlan, SimulatedCrash, active, flip_one_byte
from repro.incremental import TrainConfig


def fast_config(**overrides):
    base = dict(epochs_pretrain=2, epochs_incremental=1,
                num_negatives=4, seed=0)
    return TrainConfig(**{**base, **overrides})


def build(tiny_split, name="IMSR", model="ComiRec-DR", config=None):
    return make_strategy(
        name, model, tiny_split, config or fast_config(),
        model_kwargs={"dim": 10, "num_interests": 2},
        strategy_kwargs={"c1": 0.2} if name == "IMSR" else {})


def assert_metric_identical(result, reference):
    """Exact equality on every per-span metric the paper reports."""
    assert len(result.per_span) == len(reference.per_span)
    for ours, theirs in zip(result.per_span, reference.per_span):
        assert ours.hr == theirs.hr
        assert ours.ndcg == theirs.ndcg
        assert ours.num_cases == theirs.num_cases
    assert result.interest_counts == reference.interest_counts
    assert result.hr == reference.hr
    assert result.ndcg == reference.ndcg


@pytest.fixture(scope="module")
def baseline(tiny_split):
    """The uninterrupted, un-checkpointed reference run."""
    return run_strategy(build(tiny_split), tiny_split, "tiny", "ComiRec-DR")


@pytest.fixture(scope="module")
def journaled(tiny_split, tmp_path_factory):
    """A complete journaled run and its checkpoint directory."""
    ckdir = tmp_path_factory.mktemp("journaled")
    result = run_strategy(build(tiny_split), tiny_split, "tiny", "ComiRec-DR",
                          checkpoint_dir=ckdir)
    return ckdir, result


class TestJournaledRun:
    def test_checkpointing_does_not_change_metrics(self, baseline, journaled):
        _, result = journaled
        assert_metric_identical(result, baseline)
        assert result.resumed_spans == []
        assert result.incidents == []

    def test_directory_layout(self, journaled, tiny_split):
        ckdir, _ = journaled
        assert (ckdir / JOURNAL_NAME).exists()
        for span in range(tiny_split.T):  # span 0 = pretraining
            assert (ckdir / f"span-{span:03d}.npz").exists()
        journal = SpanJournal.load(ckdir)
        assert sorted(journal.spans) == list(range(tiny_split.T))
        assert journal.spans[0].hr is None  # pretraining has no evaluation
        assert journal.last_restorable_span() == tiny_split.T - 1

    def test_resume_of_complete_run_recomputes_nothing(
            self, tiny_split, journaled, baseline):
        ckdir, _ = journaled
        result = run_strategy(build(tiny_split), tiny_split, "tiny",
                              "ComiRec-DR", checkpoint_dir=ckdir, resume=True)
        assert result.resumed_spans == list(range(1, tiny_split.T))
        assert_metric_identical(result, baseline)


class TestCrashResumeEquivalence:
    """The acceptance property, for every boundary of the 4-span run."""

    @pytest.mark.parametrize("boundary", [0, 1, 2, 3])
    def test_crash_at_boundary_then_resume_is_metric_identical(
            self, tiny_split, baseline, tmp_path, boundary):
        plan = FaultPlan(seed=boundary).crash_at_span_boundary(boundary)
        with active(plan):
            with pytest.raises(SimulatedCrash):
                run_strategy(build(tiny_split), tiny_split, "tiny",
                             "ComiRec-DR", checkpoint_dir=tmp_path)
        # the journal holds exactly the spans committed before the crash
        journal = SpanJournal.load(tmp_path)
        assert sorted(journal.spans) == list(range(boundary + 1))
        assert journal.last_restorable_span() == boundary

        resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                               "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == list(range(1, boundary + 1))
        assert_metric_identical(resumed, baseline)

    def test_crash_before_span_then_resume(self, tiny_split, baseline,
                                           tmp_path):
        with active(FaultPlan().crash_before_span(2)):
            with pytest.raises(SimulatedCrash):
                run_strategy(build(tiny_split), tiny_split, "tiny",
                             "ComiRec-DR", checkpoint_dir=tmp_path)
        resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                               "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == [1]
        assert_metric_identical(resumed, baseline)

    def test_resume_with_empty_directory_runs_fresh(self, tiny_split,
                                                    baseline, tmp_path):
        result = run_strategy(build(tiny_split), tiny_split, "tiny",
                              "ComiRec-DR", checkpoint_dir=tmp_path,
                              resume=True)
        assert result.resumed_spans == []
        assert_metric_identical(result, baseline)

    def test_crash_resume_for_finetune_strategy(self, tiny_split, tmp_path):
        """The property is strategy-agnostic: FT's simpler state resumes
        identically too."""
        reference = run_strategy(build(tiny_split, name="FT"), tiny_split,
                                 "tiny", "ComiRec-DR")
        with active(FaultPlan().crash_at_span_boundary(2)):
            with pytest.raises(SimulatedCrash):
                run_strategy(build(tiny_split, name="FT"), tiny_split,
                             "tiny", "ComiRec-DR", checkpoint_dir=tmp_path)
        resumed = run_strategy(build(tiny_split, name="FT"), tiny_split,
                               "tiny", "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == [1, 2]
        assert_metric_identical(resumed, reference)


class TestStatefulStrategyResume:
    """Strategies carrying state beyond the base contract — replay
    pools, Fisher estimates — must resume metric-identically too: their
    extra state rides in the checkpoint's ``extra/`` arrays and their
    private RNG streams in the manifest."""

    KWARGS = {"ADER": {"pool_per_user": 2},
              "EWC": {"fisher_samples": 8},
              "IMSR+Replay": {"pool_per_user": 2}}

    def _build(self, tiny_split, name):
        return make_strategy(name, "ComiRec-DR", tiny_split, fast_config(),
                             model_kwargs={"dim": 10, "num_interests": 2},
                             strategy_kwargs=self.KWARGS[name])

    @pytest.mark.parametrize("name", ["ADER", "EWC", "IMSR+Replay"])
    def test_crash_then_resume_is_metric_identical(self, tiny_split,
                                                   tmp_path, name):
        reference = run_strategy(self._build(tiny_split, name), tiny_split,
                                 "tiny", "ComiRec-DR")
        with active(FaultPlan().crash_at_span_boundary(1)):
            with pytest.raises(SimulatedCrash):
                run_strategy(self._build(tiny_split, name), tiny_split,
                             "tiny", "ComiRec-DR", checkpoint_dir=tmp_path)
        resumed = run_strategy(self._build(tiny_split, name), tiny_split,
                               "tiny", "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == [1]
        assert_metric_identical(resumed, reference)


class TestResumeSafety:
    def test_fingerprint_mismatch_refuses_resume(self, tiny_split, journaled):
        ckdir, _ = journaled
        other = build(tiny_split, config=fast_config(seed=3))
        with pytest.raises(JournalError, match="refusing to resume"):
            run_strategy(other, tiny_split, "tiny", "ComiRec-DR",
                         checkpoint_dir=ckdir, resume=True)

    def test_corrupt_newest_checkpoint_falls_back_and_retrains(
            self, tiny_split, journaled, baseline):
        """A bit-flipped span-003 checkpoint must not poison the resume:
        the journal falls back to span 2 and retrains span 3, which (RNG
        restored) reproduces the uninterrupted metrics exactly."""
        ckdir, _ = journaled
        target = ckdir / "span-003.npz"
        offset = flip_one_byte(target, rng=np.random.default_rng(11))
        try:
            journal = SpanJournal.load(ckdir)
            assert journal.last_restorable_span() == 2
            resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                                   "ComiRec-DR", checkpoint_dir=ckdir,
                                   resume=True)
            assert resumed.resumed_spans == [1, 2]
            assert_metric_identical(resumed, baseline)
        finally:
            # span-003 was rewritten by the resumed run or is restorable
            if journal.last_restorable_span() != 3:
                flip_one_byte(target, offset=offset)

    def test_unrestorable_resume_drops_stale_spans_and_incidents(
            self, tiny_split, baseline, tmp_path):
        """When nothing is restorable the prior run's journal records —
        spans pointing at corrupt checkpoints *and* incidents — must not
        leak into the fresh run's journal or its RunResult."""
        plan = FaultPlan(seed=5).poison_params_after_span(2)
        with active(plan):
            first = run_strategy(build(tiny_split), tiny_split, "tiny",
                                 "ComiRec-DR", checkpoint_dir=tmp_path)
        assert first.incidents  # the aborted run left an incident behind
        for ckpt in sorted(tmp_path.glob("span-*.npz")):
            flip_one_byte(ckpt, rng=np.random.default_rng(1))

        result = run_strategy(build(tiny_split), tiny_split, "tiny",
                              "ComiRec-DR", checkpoint_dir=tmp_path,
                              resume=True)
        assert result.resumed_spans == []
        assert result.incidents == []
        assert_metric_identical(result, baseline)
        journal = SpanJournal.load(tmp_path)
        assert journal.incidents == []


class TestDivergenceRollback:
    def test_poisoned_params_trigger_rollback_incident(self, tiny_split,
                                                       tmp_path):
        plan = FaultPlan(seed=5).poison_params_after_span(2)
        with active(plan):
            result = run_strategy(build(tiny_split), tiny_split, "tiny",
                                  "ComiRec-DR", checkpoint_dir=tmp_path)
        assert len(result.incidents) == 1
        incident = result.incidents[0]
        assert incident["span"] == 2
        assert incident["kind"] == "non-finite-state"
        assert incident["action"] == "rolled-back-to-span-1"
        assert incident["detail"]  # names the poisoned site

        journal = SpanJournal.load(tmp_path)
        assert journal.spans[2].rolled_back
        assert not journal.spans[3].rolled_back
        assert journal.incidents == result.incidents

        # the guard contained the damage: every metric stayed finite
        for span_result in result.per_span:
            assert np.isfinite(span_result.hr)
            assert np.isfinite(span_result.ndcg)
        for state in (journal, ):
            assert state.last_restorable_span() == 3

    def test_poisoned_prev_interests_trigger_rollback(self, tiny_split,
                                                      tmp_path):
        """A NaN in a prev-interests snapshot feeds the retention loss
        of later spans, so the guard must catch it too."""
        def poison(strategy=None, **info):
            if strategy is None:
                return
            state = strategy.states[sorted(strategy.states)[0]]
            if state.prev_interests.size == 0:
                state.prev_interests = np.full(
                    (1, state.interests.shape[1]), np.nan)
            else:
                state.prev_interests = state.prev_interests.copy()
                state.prev_interests.reshape(-1)[0] = np.nan

        plan = FaultPlan()
        plan.faults.append(Fault("span-trained", "call",
                                 match={"span": 2}, payload=poison))
        with active(plan):
            result = run_strategy(build(tiny_split), tiny_split, "tiny",
                                  "ComiRec-DR", checkpoint_dir=tmp_path)
        assert len(result.incidents) == 1
        incident = result.incidents[0]
        assert incident["kind"] == "non-finite-state"
        assert any("prev_interests" in site for site in incident["detail"])
        for span_result in result.per_span:
            assert np.isfinite(span_result.hr)

    def test_metrics_still_non_finite_after_rollback_is_fatal(
            self, tiny_split, tmp_path, monkeypatch):
        """A rollback that does not cure the metrics must abort the run
        with a fatal incident, never journal the span as a good state."""
        import repro.experiments.runner as runner_mod

        real = runner_mod.evaluate_span

        def nan_eval(score_fn, span, **kwargs):
            result = real(score_fn, span, **kwargs)
            result.hr = float("nan")
            return result

        monkeypatch.setattr(runner_mod, "evaluate_span", nan_eval)
        with pytest.raises(RuntimeError, match="non-finite even after"):
            run_strategy(build(tiny_split), tiny_split, "tiny", "ComiRec-DR",
                         checkpoint_dir=tmp_path)

        journal = SpanJournal.load(tmp_path)
        # rollback incident first, then the fatal one; span 1 never
        # entered the journal as a restorable state
        assert [i["action"] for i in journal.incidents] == \
            ["rolled-back-to-span-0", "fatal"]
        assert sorted(journal.spans) == [0]

    def test_rollback_without_checkpointing_is_not_armed(self, tiny_split):
        """Without a checkpoint_dir there is no divergence guard — the
        run completes (containment keeps params finite) and records no
        incidents."""
        plan = FaultPlan().nan_loss_at_step(3)
        with active(plan):
            result = run_strategy(build(tiny_split), tiny_split, "tiny",
                                  "ComiRec-DR")
        assert result.incidents == []
        for span_result in result.per_span:
            assert np.isfinite(span_result.hr)
