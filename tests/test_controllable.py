"""Tests for the controllable diversity-aware readout (ComiRec module)."""

import numpy as np
import pytest

from repro.models import category_diversity, greedy_controllable_selection, recommend
from repro.models.controllable import greedy_controllable_selection as greedy


@pytest.fixture()
def toy():
    # 6 items: scores descending; first four share category 0
    scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
    categories = np.array([0, 0, 0, 0, 1, 2])
    return scores, categories


class TestGreedySelection:
    def test_lambda_zero_is_topn(self, toy):
        scores, categories = toy
        assert greedy(scores, categories, n=3, diversity_weight=0.0) == [0, 1, 2]

    def test_diversity_pulls_in_other_categories(self, toy):
        scores, categories = toy
        selected = greedy(scores, categories, n=3, diversity_weight=1.0)
        assert len({categories[i] for i in selected}) >= 2

    def test_large_lambda_maximizes_category_coverage(self, toy):
        scores, categories = toy
        selected = greedy(scores, categories, n=3, diversity_weight=100.0)
        assert {int(categories[i]) for i in selected} == {0, 1, 2}

    def test_first_pick_is_best_item(self, toy):
        scores, categories = toy
        selected = greedy(scores, categories, n=3, diversity_weight=5.0)
        assert selected[0] == 0  # no diversity bonus exists for the first pick

    def test_n_larger_than_catalog(self, toy):
        scores, categories = toy
        selected = greedy(scores, categories, n=100, diversity_weight=0.5)
        assert sorted(selected) == list(range(6))

    def test_bad_n_rejected(self, toy):
        scores, categories = toy
        with pytest.raises(ValueError):
            greedy(scores, categories, n=0)

    def test_candidate_pool_restricts(self, toy):
        scores, categories = toy
        selected = greedy(scores, categories, n=3, diversity_weight=100.0,
                          candidate_pool=3)
        assert set(selected) <= {0, 1, 2}


class TestRecommend:
    def test_plain_topn(self, rng):
        interests = rng.normal(size=(3, 8))
        items = rng.normal(size=(50, 8))
        out = recommend(interests, items, n=10)
        scores = (items @ interests.T).max(axis=1)
        expected = np.argsort(-scores)[:10].tolist()
        assert out == expected

    def test_diversity_changes_list(self, rng):
        interests = rng.normal(size=(2, 8))
        items = rng.normal(size=(60, 8))
        categories = rng.integers(0, 3, size=60)
        plain = recommend(interests, items, categories, n=10,
                          diversity_weight=0.0)
        diverse = recommend(interests, items, categories, n=10,
                            diversity_weight=2.0)
        assert category_diversity(diverse, categories) >= (
            category_diversity(plain, categories) - 1e-9)


class TestCategoryDiversity:
    def test_single_category_zero(self):
        categories = np.zeros(10, dtype=int)
        assert category_diversity([0, 1, 2], categories) == 0.0

    def test_all_distinct_one(self):
        categories = np.arange(10)
        assert category_diversity([0, 1, 2], categories) == 1.0

    def test_short_list_zero(self):
        assert category_diversity([3], np.arange(10)) == 0.0
