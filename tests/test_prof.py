"""Unit tests for repro.obs.prof: the op-level profiler.

Covers the disabled fast path (shared null contexts, no state), the
hook lifecycle (backend swap/restore, one-profiler-at-a-time), kernel
attribution from the autograd sandwich and explicit op scopes, memory
accounting, trace folding, and the headline acceptance property: a
profiled run is bit-identical to an unprofiled one.
"""

import gc

import numpy as np
import pytest

import repro.backend as backend
from repro.autograd import Tensor
from repro.backend.instrument import InstrumentedBackend, einsum_flops
from repro.experiments import run_strategy
from repro.obs import prof as _prof
from repro.obs import (
    MemTracker,
    prof_rollup,
    read_trace,
    shape_bucket,
    start_profiling,
    stop_profiling,
    trace_fingerprint,
    tracing,
)
from repro.obs.prof import _NULL_CTX

from tests.test_crash_resume import (
    assert_metric_identical,
    build,
    fast_config,
)


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with profiling disarmed."""
    stop_profiling(emit=False)
    yield
    stop_profiling(emit=False)


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def shape_buckets():
    return [shape_bucket(1), shape_bucket(3), shape_bucket(64),
            shape_bucket(65), shape_bucket(4, 100)]


class TestShapeBucket:
    def test_rounds_up_to_powers_of_two(self):
        assert shape_bucket(1) == "1"
        assert shape_bucket(3) == "4"
        assert shape_bucket(64) == "64"
        assert shape_bucket(65) == "128"
        assert shape_bucket(4, 100) == "4x128"

    def test_degenerate_dims_bucket_to_one(self):
        assert shape_bucket(0) == "1"
        assert shape_bucket(-2) == "1"


class TestDisabledFastPath:
    def test_scopes_are_the_shared_null_context(self):
        assert _prof.op("anything") is _NULL_CTX
        assert _prof.phase("anything") is _NULL_CTX
        with _prof.op("x"):
            with _prof.phase("y"):
                pass  # nesting the null context is harmless

    def test_disabled_state_is_fully_disarmed(self):
        assert not _prof.enabled()
        assert _prof.current_profiler() is None
        assert _prof._AUTOGRAD is None
        assert _prof._MEM is None

    def test_tensor_ops_fire_no_hooks_while_disabled(self):
        before = backend.active
        result = (Tensor(np.ones((3, 3)), requires_grad=True) @ Tensor(np.eye(3))).sum()
        result.backward()
        assert backend.active is before
        assert _prof.current_profiler() is None


class TestLifecycle:
    def test_start_installs_and_stop_restores_backend(self):
        original = backend.active
        prof = start_profiling()
        assert isinstance(backend.active, InstrumentedBackend)
        assert backend.active.inner is original
        assert _prof.current_profiler() is prof
        returned = stop_profiling(emit=False)
        assert returned is prof
        assert backend.active is original
        assert prof.elapsed_s > 0

    def test_double_start_is_rejected(self):
        start_profiling(instrument_backend=False)
        with pytest.raises(RuntimeError, match="already active"):
            start_profiling()

    def test_stop_without_start_is_a_noop(self):
        assert stop_profiling(emit=False) is None

    def test_profiling_context_manager_scopes_activation(self):
        with _prof.profiling(instrument_backend=False) as prof:
            assert _prof.current_profiler() is prof
        assert _prof.current_profiler() is None

    def test_optional_hooks_can_be_disabled(self):
        prof = start_profiling(autograd=False, memory=False,
                               instrument_backend=False)
        assert _prof._AUTOGRAD is None
        assert _prof._MEM is None
        assert prof.mem is None
        Tensor(np.ones(4), requires_grad=True).sum().backward()
        assert prof.kernels == {}


class TestInstrumentedBackend:
    def test_delegation_is_bit_identical(self, rng):
        inner = backend.active
        wrapped = InstrumentedBackend(inner)
        a = rng.standard_normal((5, 7))
        b = rng.standard_normal((7, 3))
        logits = rng.standard_normal((4, 6))
        np.testing.assert_array_equal(wrapped.gemm(a, b), inner.gemm(a, b))
        np.testing.assert_array_equal(
            wrapped.softmax(logits), inner.softmax(logits))
        np.testing.assert_array_equal(
            wrapped.einsum("ij,jk->ik", a, b),
            inner.einsum("ij,jk->ik", a, b))

    def test_rewrapping_unwraps_first(self):
        inner = backend.active
        twice = InstrumentedBackend(InstrumentedBackend(inner))
        assert twice.inner is inner

    def test_ops_recorded_with_flops_and_bytes(self, rng):
        prof = start_profiling(autograd=False, memory=False)
        with _prof.phase("test"):
            wrapped = backend.active
            a = rng.standard_normal((8, 16))
            b = rng.standard_normal((16, 4))
            wrapped.gemm(a, b)
            wrapped.gemm(a, b)
            wrapped.softmax(rng.standard_normal((4, 10)))
        stop_profiling(emit=False)
        rows = {(phase, op): entry
                for (phase, op, _), entry in prof.backend_ops.items()}
        gemm = rows[("test", "gemm")]
        assert gemm[0] == 2  # count
        assert gemm[2] == pytest.approx(2 * (2.0 * 8 * 16 * 4))  # flops
        assert gemm[3] > 0  # bytes moved
        assert ("test", "softmax") in rows

    def test_einsum_flops_knows_the_routing_contractions(self, rng):
        e = rng.standard_normal((2, 5, 8))
        caps = rng.standard_normal((2, 3, 8))
        assert einsum_flops("bnd,bkd->bnk", e, caps) == \
            pytest.approx(2.0 * 2 * 5 * 8 * 3)
        # unknown specs fall back to a conservative per-element bound
        assert einsum_flops("ij->ji", e[0]) > 0


class TestKernelAttribution:
    def test_sandwich_names_forward_and_backward_ops(self):
        prof = start_profiling(memory=False, instrument_backend=False)
        with _prof.phase("train"):
            x = Tensor(np.ones((4, 4)), requires_grad=True)
            loss = (x @ Tensor(np.eye(4))).sum()
            loss.backward()
        stop_profiling(emit=False)
        ops = {op for (_, op) in prof.kernels}
        assert any(op.startswith("fwd.") for op in ops)
        assert any(op.startswith("bwd.") for op in ops)
        assert all(ph == "train" for (ph, _) in prof.kernels)

    def test_explicit_op_scope_is_a_named_kernel(self):
        prof = start_profiling(autograd=False, memory=False,
                               instrument_backend=False)
        with _prof.phase("train"):
            with _prof.op("optim.step"):
                sum(range(100))
        stop_profiling(emit=False)
        count, total = prof.kernels[("train", "optim.step")]
        assert count == 1 and total > 0

    def test_phase_wall_is_exclusive_of_nested_phases(self):
        prof = start_profiling(autograd=False, memory=False,
                               instrument_backend=False)
        with _prof.phase("outer"):
            with _prof.phase("inner"):
                sum(range(2000))
        stop_profiling(emit=False)
        assert prof.phase_wall["inner"] > 0
        assert prof.phase_wall["outer"] >= 0
        # exclusive walls: outer's own time excludes inner entirely
        assert prof.phase_wall["outer"] < prof.phase_wall["inner"] * 100

    def test_attribution_fractions_are_consistent(self):
        prof = start_profiling(memory=False, instrument_backend=False)
        with _prof.phase("train"):
            x = Tensor(np.ones((16, 16)), requires_grad=True)
            for _ in range(5):
                (x @ x).sum().backward()
        stop_profiling(emit=False)
        attribution = prof.attribution()
        train = attribution["train"]
        assert train["wall_s"] > 0
        assert 0.0 < train["frac"] <= 1.05  # clock granularity slack
        assert attribution["overall"]["kernel_s"] == \
            pytest.approx(train["kernel_s"])

    def test_report_sorts_and_truncates(self):
        prof = start_profiling(autograd=False, memory=False,
                               instrument_backend=False)
        with _prof.phase("p"):
            for name, loops in (("op.slow", 50_000), ("op.fast", 10)):
                with _prof.op(name):
                    sum(range(loops))
        stop_profiling(emit=False)
        report = prof.report()
        totals = [row["total_s"] for row in report["kernels"]]
        assert totals == sorted(totals, reverse=True)
        assert report["kernels"][0]["op"] == "op.slow"
        assert len(prof.report(top=1)["kernels"]) == 1


class TestMemTracker:
    def test_tracks_live_and_peak_bytes(self):
        tracker = MemTracker()
        x = Tensor(np.zeros(100, dtype=np.float64))
        tracker.track(x)
        assert tracker.live == 800
        assert tracker.peak == 800
        assert tracker.tracked == 1
        del x
        gc.collect()
        assert tracker.live == 0
        assert tracker.peak == 800  # peaks never regress

    def test_span_watermarks_propagate_outward(self):
        tracker = MemTracker()
        tracker.push_span()
        tracker.push_span()
        keep = Tensor(np.zeros(10))
        tracker.track(keep)
        inner_peak = tracker.pop_span()
        assert inner_peak == tracker.live
        outer_peak = tracker.pop_span()
        assert outer_peak >= inner_peak

    def test_profiled_run_counts_tensors(self):
        prof = start_profiling(instrument_backend=False)
        with _prof.phase("p"):
            for _ in range(3):
                Tensor(np.ones((8, 8)), requires_grad=True).sum().backward()
        stop_profiling(emit=False)
        memory = prof.report()["memory"]
        assert memory["tensors_tracked"] >= 3
        assert memory["peak_bytes"] > 0


class TestStepSampling:
    def test_timeline_stride_doubles_past_the_cap(self):
        prof = start_profiling(instrument_backend=False)
        prof._stride = 1
        for _ in range(_prof._TIMELINE_CAP + 10):
            prof.on_step(None)
        stop_profiling(emit=False)
        assert prof._stride >= 2
        assert len(prof.mem_timeline) <= _prof._TIMELINE_CAP + 1
        assert prof.steps == _prof._TIMELINE_CAP + 10


class TestRunIntegration:
    def test_profiled_run_is_bit_identical(self, tiny_split):
        config = fast_config()
        reference = run_strategy(build(tiny_split, config=config),
                                 tiny_split, "tiny", "ComiRec-DR")
        profiled = run_strategy(build(tiny_split, config=config),
                                tiny_split, "tiny", "ComiRec-DR",
                                profile=True)
        assert_metric_identical(profiled, reference)
        assert profiled.profile is not None
        assert reference.profile is None

    def test_profile_report_attributes_the_run(self, tiny_split):
        result = run_strategy(build(tiny_split), tiny_split, "tiny",
                              "ComiRec-DR", profile=True)
        report = result.profile
        for phase in ("pretrain", "train", "extract", "eval"):
            assert phase in report["attribution"], phase
        assert report["attribution"]["overall"]["frac"] > 0.5
        ops = {row["op"] for row in report["kernels"]}
        assert any(op.startswith("fwd.") for op in ops)
        assert any(op.startswith("bwd.") for op in ops)
        assert "optim.step" in ops
        assert {"eval.score", "eval.rank"} <= ops
        assert report["memory"]["tensors_tracked"] > 0
        assert report["steps"] > 0

    def test_profiled_trace_carries_op_records(self, tiny_split, tmp_path):
        run_strategy(build(tiny_split), tiny_split, "tiny", "ComiRec-DR",
                     trace_dir=tmp_path, profile=True)
        events, skipped = read_trace(tmp_path)
        assert skipped == 0
        kinds = {e.get("kind") for e in events}
        assert {"kernel_stats", "op_stats", "op_span", "phase_stats",
                "mem_summary"} <= kinds
        rollup = prof_rollup(events)
        assert rollup is not None
        assert rollup["attribution"]["train"]["frac"] > 0

    def test_two_profiled_traces_have_identical_fingerprints(
            self, tiny_split, tmp_path):
        for sub in ("a", "b"):
            run_strategy(build(tiny_split), tiny_split, "tiny",
                         "ComiRec-DR", trace_dir=tmp_path / sub,
                         profile=True)
        fp_a = trace_fingerprint(read_trace(tmp_path / "a")[0])
        fp_b = trace_fingerprint(read_trace(tmp_path / "b")[0])
        assert fp_a == fp_b

    def test_emit_outside_trace_is_safe(self):
        start_profiling(instrument_backend=False)
        with _prof.phase("p"):
            Tensor(np.ones(4), requires_grad=True).sum().backward()
        assert stop_profiling(emit=True) is not None  # no tracer active

    def test_emitted_stats_survive_inside_a_trace(self, tmp_path):
        with tracing(tmp_path):
            start_profiling(instrument_backend=False)
            with _prof.phase("p"):
                with _prof.op("custom.kernel"):
                    sum(range(1000))
            stop_profiling(emit=True)
        events, _ = read_trace(tmp_path)
        kernel_rows = [e for e in events if e.get("kind") == "kernel_stats"]
        assert any(e["op"] == "custom.kernel" for e in kernel_rows)
