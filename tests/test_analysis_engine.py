"""Engine mechanics: noqa suppression, baseline round-trip, reporters,
file discovery, and CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    analyze_paths,
    analyze_source,
    discover_baseline,
    iter_python_files,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import selected_rules

BAD_LOSS = (
    "import numpy as np\n"
    "def nll_loss(probs):\n"
    "    return -np.log(probs).mean()\n"
)


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


class TestNoqa:
    def test_bare_noqa_suppresses_everything(self, tmp_path):
        src = BAD_LOSS.replace(".mean()", ".mean()  # repro: noqa")
        assert analyze_source(src, tmp_path / "m.py") == []

    def test_bracketed_noqa_suppresses_named_rule(self, tmp_path):
        src = BAD_LOSS.replace(".mean()", ".mean()  # repro: noqa[RA301]")
        assert analyze_source(src, tmp_path / "m.py") == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        src = BAD_LOSS.replace(".mean()", ".mean()  # repro: noqa[RA401]")
        findings = analyze_source(src, tmp_path / "m.py")
        assert [f.rule for f in findings] == ["RA301"]

    def test_suppressed_findings_are_reported_not_dropped(self, tmp_path):
        write(tmp_path, "m.py",
              BAD_LOSS.replace(".mean()", ".mean()  # repro: noqa[RA301]"))
        report = analyze_paths([str(tmp_path)])
        assert report.findings == []
        assert [f.rule for f in report.noqa_suppressed] == ["RA301"]
        assert report.exit_code == 0


class TestBaseline:
    def test_round_trip(self, tmp_path):
        write(tmp_path, "m.py", BAD_LOSS)
        report = analyze_paths([str(tmp_path)])
        assert report.exit_code == 1 and len(report.findings) == 1

        baseline_path = tmp_path / "analysis-baseline.json"
        Baseline.from_findings(report.findings).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 1

        again = analyze_paths([str(tmp_path)], baseline=loaded)
        assert again.findings == []
        assert [f.rule for f in again.baselined] == ["RA301"]
        assert again.exit_code == 0
        assert again.stale_baseline == []

    def test_fingerprint_survives_line_shift(self, tmp_path):
        write(tmp_path, "m.py", BAD_LOSS)
        report = analyze_paths([str(tmp_path)])
        baseline = Baseline.from_findings(report.findings)

        # unrelated edit above the finding: fingerprint must still match
        write(tmp_path, "m.py", "'''docstring'''\n\n" + BAD_LOSS)
        again = analyze_paths([str(tmp_path)], baseline=baseline)
        assert again.findings == [] and len(again.baselined) == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        write(tmp_path, "m.py", BAD_LOSS)
        baseline = Baseline.from_findings(analyze_paths([str(tmp_path)]).findings)

        write(tmp_path, "m.py",
              BAD_LOSS.replace("np.log(probs)", "np.log(probs + 1e-12)"))
        report = analyze_paths([str(tmp_path)], baseline=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].rule == "RA301"

    def test_load_rejects_unknown_version(self, tmp_path):
        path = write(tmp_path, "analysis-baseline.json",
                     json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_discover_walks_up_from_scanned_path(self, tmp_path):
        marker = write(tmp_path, "analysis-baseline.json",
                       json.dumps({"version": 1, "findings": []}))
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        module = write(nested, "m.py", "x = 1\n")
        assert discover_baseline([module]) == marker
        assert discover_baseline([nested]) == marker

    def test_committed_baseline_covers_only_justified_test_code(self):
        # src/ must stay clean on its own; the only grandfathered
        # findings are deliberate Tensor-buffer mutations and short-lived
        # buffer aliases in test setup
        repo_root = Path(__file__).resolve().parents[1]
        payload = json.loads(
            (repo_root / "analysis-baseline.json").read_text())
        assert payload["findings"], "expected grandfathered test findings"
        for entry in payload["findings"]:
            assert entry["path"].startswith("tests/"), entry
            assert entry["rule"] in ("RA101", "RA603"), entry
            assert entry.get("justification"), entry


class TestDiscoveryAndSelection:
    def test_iter_skips_caches_and_hidden_dirs(self, tmp_path):
        write(tmp_path, "keep.py", "x = 1\n")
        for skipped in ("__pycache__", "build", ".hidden"):
            d = tmp_path / skipped
            d.mkdir()
            write(d, "drop.py", "x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.name for f in files] == ["keep.py"]

    def test_iter_dedups_overlapping_paths(self, tmp_path):
        path = write(tmp_path, "m.py", "x = 1\n")
        files = iter_python_files([str(tmp_path), str(path)])
        assert len(files) == 1

    def test_selected_rules_unknown_id(self):
        with pytest.raises(KeyError):
            selected_rules(["RA999"])

    def test_select_restricts_rules_run(self, tmp_path):
        write(tmp_path, "m.py",
              BAD_LOSS + "\ndef f(seen=[]):\n    return seen\n")
        report = analyze_paths([str(tmp_path)], select=["RA401"])
        assert report.rules_run == ["RA401"]
        assert [f.rule for f in report.findings] == ["RA401"]


class TestReporters:
    def test_text_summary_on_findings(self, tmp_path):
        write(tmp_path, "m.py", BAD_LOSS)
        text = render_text(analyze_paths([str(tmp_path)]))
        assert "RA301" in text
        assert "1 finding(s) (1 error(s), 0 warning(s)) across 1 file(s)" in text
        assert "[RA301×1]" in text

    def test_text_summary_clean(self, tmp_path):
        write(tmp_path, "m.py", "x = 1\n")
        text = render_text(analyze_paths([str(tmp_path)]))
        assert "clean: 0 findings across 1 file(s)" in text

    def test_json_payload(self, tmp_path):
        write(tmp_path, "m.py", BAD_LOSS)
        payload = json.loads(render_json(analyze_paths([str(tmp_path)])))
        assert payload["tool"] == "repro.analysis"
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["by_rule"] == {"RA301": 1}
        assert payload["exit_code"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RA301"
        assert finding["fingerprint"]
        assert set(payload["rules_run"]) >= {"RA101", "RA301", "RA402"}

    def test_parse_error_reported(self, tmp_path):
        write(tmp_path, "broken.py", "def f(:\n")
        report = analyze_paths([str(tmp_path)])
        assert report.exit_code == 1
        assert [f.rule for f in report.parse_errors] == ["RA000"]
        assert "RA000" in render_text(report)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "m.py", "x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "m.py", BAD_LOSS)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "RA301" in capsys.readouterr().out

    def test_no_files_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert lint_main([str(empty)]) == 2
        assert "no python files" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        write(tmp_path, "m.py", "x = 1\n")
        assert lint_main([str(tmp_path), "--select", "NOPE"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_invalid_baseline_exits_two(self, tmp_path, capsys):
        write(tmp_path, "m.py", "x = 1\n")
        bad = write(tmp_path, "bad-baseline.json",
                    json.dumps({"version": 99, "findings": []}))
        assert lint_main([str(tmp_path), "--baseline", str(bad)]) == 2
        assert "invalid baseline" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        write(tmp_path, "m.py", BAD_LOSS)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"] == {"RA301": 1}

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write(tmp_path, "m.py", BAD_LOSS)
        baseline = tmp_path / "analysis-baseline.json"
        assert lint_main([str(tmp_path), "--baseline", str(baseline),
                          "--write-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        # grandfathered finding no longer fails the run
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RA101", "RA201", "RA301", "RA401"):
            assert rule_id in out

    def test_module_entry_point(self, tmp_path):
        import subprocess
        import sys

        write(tmp_path, "m.py", "x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parents[1],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
