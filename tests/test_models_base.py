"""Unit tests for the MSR model base class and the three paper models."""

import numpy as np
import pytest

from repro.autograd import check_gradients, Tensor
from repro.models import (
    ComiRecDR,
    ComiRecSA,
    MIND,
    MODEL_REGISTRY,
    batch_sampled_softmax_loss,
    make_model,
    sampled_softmax_loss,
)
from repro.nn import Adam


class TestRegistry:
    def test_paper_names(self):
        assert set(MODEL_REGISTRY) == {"MIND", "ComiRec-DR", "ComiRec-SA"}

    def test_make_model(self):
        model = make_model("MIND", num_items=20, dim=8)
        assert isinstance(model, MIND)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_model("SASRec", num_items=20)

    def test_bad_num_items_rejected(self):
        with pytest.raises(ValueError):
            ComiRecDR(num_items=0)


class TestUserState:
    def test_init_state(self, any_model):
        state = any_model.init_user_state(3)
        assert state.user == 3
        assert state.interests.shape == (3, 12)
        assert state.n_existing == 3
        assert (state.created_span == 0).all()

    def test_begin_span_snapshots(self, any_model):
        state = any_model.init_user_state(0)
        state.interests = state.interests + 1.0
        state.begin_span()
        assert np.allclose(state.prev_interests, state.interests)
        assert state.n_existing == state.num_interests
        assert not state.expanded_this_span

    def test_expand_adds_rows(self, any_model):
        state = any_model.init_user_state(0)
        any_model.expand_user(state, 2, span=4)
        assert state.num_interests == 5
        assert list(state.created_span) == [0, 0, 0, 4, 4]

    def test_expand_zero_noop(self, any_model):
        state = any_model.init_user_state(0)
        before = state.interests.copy()
        any_model.expand_user(state, 0, span=1)
        assert np.allclose(state.interests, before)

    def test_trim_keeps_existing(self, any_model):
        state = any_model.init_user_state(0)
        any_model.expand_user(state, 3, span=1)
        keep = np.array([True, True, True, True, False, True])
        any_model.trim_user(state, keep)
        assert state.num_interests == 5

    def test_trim_refuses_existing_rows(self, any_model):
        state = any_model.init_user_state(0)
        any_model.expand_user(state, 1, span=1)
        keep = np.array([False, True, True, True])
        with pytest.raises(ValueError):
            any_model.trim_user(state, keep)

    def test_trim_all_keep_is_noop(self, any_model):
        state = any_model.init_user_state(0)
        before = state.interests.copy()
        any_model.trim_user(state, np.ones(3, dtype=bool))
        assert np.allclose(state.interests, before)


class TestForward:
    SEQ = [0, 3, 7, 3, 11, 19]

    def test_interest_shape(self, any_model):
        state = any_model.init_user_state(0)
        out = any_model.compute_interests(state, self.SEQ)
        assert out.shape == (3, 12)

    def test_empty_sequence_rejected(self, any_model):
        state = any_model.init_user_state(0)
        with pytest.raises(ValueError):
            any_model.compute_interests(state, [])

    def test_loss_positive_and_finite(self, any_model):
        state = any_model.init_user_state(0)
        H = any_model.compute_interests(state, self.SEQ)
        loss = any_model.loss_targets(H, [5, 9], np.array([[1, 2, 3], [4, 6, 8]]))
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_training_reduces_loss(self, any_model):
        state = any_model.init_user_state(0)
        params = list(any_model.parameters()) + any_model.user_parameters([state])
        opt = Adam(params, lr=0.02)
        negatives = np.array([[1, 2, 3], [4, 6, 8]])
        first = last = None
        for _ in range(25):
            opt.zero_grad()
            H = any_model.compute_interests(state, self.SEQ)
            loss = any_model.loss_targets(H, [5, 9], negatives)
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.9

    def test_score_all_items(self, any_model):
        state = any_model.init_user_state(0)
        scores = any_model.score_all_items(state)
        assert scores.shape == (any_model.num_items,)

    def test_snapshot_interests_updates_state(self, any_model):
        state = any_model.init_user_state(0)
        before = state.interests.copy()
        any_model.snapshot_interests(state, self.SEQ)
        assert not np.allclose(state.interests, before)

    def test_snapshot_empty_sequence_noop(self, any_model):
        state = any_model.init_user_state(0)
        before = state.interests.copy()
        any_model.snapshot_interests(state, [])
        assert np.allclose(state.interests, before)


class TestModelSpecifics:
    def test_mind_random_logits_vary_extractions(self):
        model = MIND(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        a = model.compute_interests(state, [1, 2, 3]).data
        b = model.compute_interests(state, [1, 2, 3]).data
        assert not np.allclose(a, b)  # fresh random logits per extraction

    def test_comirec_dr_deterministic_extraction(self):
        model = ComiRecDR(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        a = model.compute_interests(state, [1, 2, 3]).data
        b = model.compute_interests(state, [1, 2, 3]).data
        assert np.allclose(a, b)

    def test_sa_has_per_user_parameters(self):
        model = ComiRecSA(num_items=30, dim=8, num_interests=3, seed=0)
        state = model.init_user_state(0)
        assert state.sa_weights is not None
        assert state.sa_weights.data.shape == (8, 3)
        assert model.user_parameters([state]) == [state.sa_weights]

    def test_dr_has_no_per_user_parameters(self):
        model = ComiRecDR(num_items=30, dim=8, seed=0)
        state = model.init_user_state(0)
        assert model.user_parameters([state]) == []

    def test_sa_expand_and_trim_sync_weights(self):
        model = ComiRecSA(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        model.expand_user(state, 2, span=1)
        assert state.sa_weights.data.shape == (8, 4)
        state.n_existing = 2
        model.trim_user(state, np.array([True, True, False, True]))
        assert state.sa_weights.data.shape == (8, 3)
        out = model.compute_interests(state, [1, 2, 3])
        assert out.shape == (3, 8)

    def test_sa_out_of_sync_weights_rejected(self):
        model = ComiRecSA(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        state.interests = np.vstack([state.interests, np.zeros((1, 8))])
        with pytest.raises(ValueError):
            model.compute_interests(state, [1, 2])

    def test_sa_gradient_reaches_user_weights(self):
        model = ComiRecSA(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        H = model.compute_interests(state, [1, 2, 3])
        H.sum().backward()
        assert state.sa_weights.grad is not None

    def test_mind_gradient_reaches_bilinear(self):
        model = MIND(num_items=30, dim=8, num_interests=2, seed=0)
        state = model.init_user_state(0)
        H = model.compute_interests(state, [1, 2, 3])
        H.sum().backward()
        assert model.bilinear.grad is not None
        assert model.item_emb.weight.grad is not None


class TestSampledSoftmax:
    def test_single_matches_manual(self, rng):
        interests = Tensor(rng.normal(size=(3, 4)))
        target = Tensor(rng.normal(size=4))
        negs = Tensor(rng.normal(size=(5, 4)))
        loss = sampled_softmax_loss(interests, target, negs).item()

        # manual
        logits = interests.data @ target.data
        beta = np.exp(logits - logits.max()); beta /= beta.sum()
        v = beta @ interests.data
        all_logits = np.concatenate([[v @ target.data], negs.data @ v])
        expected = -(all_logits[0] - np.log(np.exp(all_logits - all_logits.max()).sum()) - all_logits.max())
        assert loss == pytest.approx(expected, rel=1e-9)

    def test_batch_matches_mean_of_singles(self, rng):
        interests = Tensor(rng.normal(size=(3, 4)))
        targets = rng.normal(size=(2, 4))
        negs = rng.normal(size=(2, 5, 4))
        batch = batch_sampled_softmax_loss(
            interests, Tensor(targets), Tensor(negs)).item()
        singles = np.mean([
            sampled_softmax_loss(interests, Tensor(targets[i]),
                                 Tensor(negs[i])).item()
            for i in range(2)
        ])
        assert batch == pytest.approx(singles, rel=1e-9)

    def test_loss_decreases_when_target_score_grows(self, rng):
        interests = rng.normal(size=(2, 4))
        target = rng.normal(size=4)
        negs = rng.normal(size=(5, 4))
        base = sampled_softmax_loss(
            Tensor(interests), Tensor(target), Tensor(negs)).item()
        aligned = sampled_softmax_loss(
            Tensor(np.vstack([target * 3, interests[1]])),
            Tensor(target), Tensor(negs)).item()
        assert aligned < base

    def test_batch_gradients(self, rng):
        interests = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        targets = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        negs = Tensor(rng.normal(size=(2, 5, 4)), requires_grad=True)
        check_gradients(batch_sampled_softmax_loss, [interests, targets, negs])
