"""The generated API reference must stay in sync with the public API."""

import importlib.util
from pathlib import Path

DOCS = Path(__file__).resolve().parent.parent / "docs"

_SPEC = importlib.util.spec_from_file_location(
    "gen_api", DOCS / "generate_api_reference.py")
gen_api = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gen_api)


def test_all_packages_documented():
    text = "\n".join(gen_api.document_package(p) for p in gen_api.PACKAGES)
    for anchor in ("Tensor", "IMSR", "puzzlement", "run_table3",
                   "save_checkpoint", "MIND", "forgetting_analysis"):
        assert anchor in text, anchor


def test_api_md_committed_and_current_headers():
    api = (DOCS / "API.md").read_text()
    for package in gen_api.PACKAGES:
        assert f"## `{package}`" in api


def test_document_package_handles_module_without_all():
    out = gen_api.document_package("repro.persistence")
    assert "save_checkpoint" in out
    assert "load_checkpoint" in out
