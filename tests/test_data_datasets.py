"""Unit tests for the dataset presets and statistics."""

import pytest

from repro.data import (
    DATASET_NAMES,
    WorldConfig,
    compute_stats,
    dataset_config,
    load_custom,
    load_dataset,
)


class TestPresets:
    def test_four_paper_datasets(self):
        assert set(DATASET_NAMES) == {"electronics", "clothing", "books", "taobao"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            dataset_config("netflix")

    def test_scale_changes_sizes(self):
        small = dataset_config("books", scale=0.25)
        big = dataset_config("books", scale=1.0)
        assert small.num_users < big.num_users
        assert small.num_items < big.num_items

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            dataset_config("books", scale=0.0)

    def test_seed_offset_changes_seed(self):
        a = dataset_config("books", seed_offset=0)
        b = dataset_config("books", seed_offset=1)
        assert a.seed != b.seed

    def test_taobao_is_largest_and_fastest_changing(self):
        # mirrors the paper: Taobao has the most items and the fastest
        # interest change
        taobao = dataset_config("taobao")
        others = [dataset_config(n) for n in DATASET_NAMES if n != "taobao"]
        assert all(taobao.num_items > o.num_items for o in others)
        assert all(taobao.new_topic_rate > o.new_topic_rate for o in others)

    def test_books_is_most_stable(self):
        books = dataset_config("books")
        others = [dataset_config(n) for n in DATASET_NAMES if n != "books"]
        assert all(books.new_topic_rate < o.new_topic_rate for o in others)


class TestLoading:
    def test_load_dataset_shapes(self):
        world, split = load_dataset("electronics", scale=0.2)
        assert split.T == 6
        assert split.num_items == world.num_items
        assert split.pretrain.num_interactions() > 0
        assert all(s.num_interactions() > 0 for s in split.spans)

    def test_load_custom(self):
        config = WorldConfig(num_users=10, num_items=50, num_topics=5,
                             num_spans=3, seed=2)
        world, split = load_custom(config, T=3)
        assert split.T == 3
        assert world.num_users == 10

    def test_pretrain_has_most_interactions(self):
        # alpha = 0.5 puts about half the timeline in pretraining and the
        # generator emits 30-60 pretrain events vs 8-16 per span
        _, split = load_dataset("books", scale=0.2)
        assert split.pretrain.num_interactions() > max(
            s.num_interactions() for s in split.spans
        )


class TestStats:
    def test_table2_columns(self):
        world, split = load_dataset("clothing", scale=0.2)
        stats = compute_stats("clothing", split)
        row = stats.as_row()
        assert row["dataset"] == "clothing"
        assert set(row) == {"dataset", "#users", "#items", "pre-training",
                            "1", "2", "3", "4", "5", "6"}
        assert stats.total_interactions == (
            stats.pretrain_interactions + sum(stats.span_interactions)
        )

    def test_counts_match_split(self):
        world, split = load_dataset("books", scale=0.2)
        stats = compute_stats("books", split)
        assert stats.num_users == split.num_users
        assert stats.span_interactions[2] == split.spans[2].num_interactions()
