"""Unit tests for the deterministic fault-injection subsystem."""

import numpy as np
import pytest

from repro import faults
from repro.faults import (
    FaultPlan,
    InjectedIOError,
    SimulatedCrash,
    active,
    all_finite,
    fire,
    flip_one_byte,
    nan_poison,
)


class TestProbeMechanics:
    def test_fire_without_active_plans_is_a_noop(self):
        assert fire("span-boundary", span=3) == {}
        assert faults.active_plans() == []

    def test_activation_is_scoped(self):
        plan = FaultPlan()
        with active(plan):
            assert faults.active_plans() == [plan]
        assert faults.active_plans() == []

    def test_activation_unwinds_on_exception(self):
        plan = FaultPlan().crash_at_span_boundary(1)
        with pytest.raises(SimulatedCrash):
            with active(plan):
                fire("span-boundary", span=1)
        assert faults.active_plans() == []

    def test_match_filter_selects_span(self):
        plan = FaultPlan().crash_at_span_boundary(2)
        with active(plan):
            fire("span-boundary", span=1)  # no match, no raise
            with pytest.raises(SimulatedCrash):
                fire("span-boundary", span=2)

    def test_crash_fault_is_one_shot(self):
        plan = FaultPlan().crash_at_span_boundary(2)
        with active(plan):
            with pytest.raises(SimulatedCrash):
                fire("span-boundary", span=2)
            fire("span-boundary", span=2)  # spent: fires once only

    def test_occurrence_counting_for_io_errors(self):
        plan = FaultPlan().io_error_on_write(2)
        with active(plan):
            fire("io-write", path="a")
            fire("io-write", path="b")
            with pytest.raises(InjectedIOError):
                fire("io-write", path="c")  # third occurrence (index 2)

    def test_modifier_fault_returns_payload(self):
        plan = FaultPlan().nan_loss_at_step(5)
        with active(plan):
            assert fire("train-step", step=4) == {}
            assert fire("train-step", step=5) == {"poison_nan": True}
            assert fire("train-step", step=5) == {}  # one-shot

    def test_every_step_nan_fault_is_persistent(self):
        plan = FaultPlan().nan_loss_at_step()  # no step: every firing
        with active(plan):
            for step in range(4):
                assert fire("train-step", step=step) == {"poison_nan": True}

    def test_firing_log_records_scalars_only(self):
        plan = FaultPlan().crash_at_span_boundary(1)
        with active(plan):
            with pytest.raises(SimulatedCrash):
                fire("span-boundary", span=1, strategy=object())
        point, info = plan.log[0]
        assert point == "span-boundary"
        assert info == {"span": 1}  # non-scalar info never journaled

    def test_describe_is_plain_data(self):
        plan = (FaultPlan(seed=3).crash_at_span_boundary(2)
                .io_error_on_write(1).nan_loss_at_step(7))
        described = plan.describe()
        assert described[0] == {"point": "span-boundary", "kind": "crash",
                                "match": {"span": 2}}
        assert described[1] == {"point": "io-write", "kind": "io-error",
                                "at": 1}
        assert described[2]["payload"] == {"poison_nan": True}

    def test_stacked_plans_both_fire(self):
        outer = FaultPlan().nan_loss_at_step(0)
        inner = FaultPlan().nan_loss_at_step(0)
        with active(outer), active(inner):
            assert fire("train-step", step=0) == {"poison_nan": True}
        assert len(outer.log) == 1
        assert len(inner.log) == 1


class TestSeededHelpers:
    def test_nan_poison_is_deterministic_per_seed(self):
        arr = np.zeros((4, 5))
        a = nan_poison(arr, np.random.default_rng(7))
        b = nan_poison(arr, np.random.default_rng(7))
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).sum() == 1
        assert np.isfinite(arr).all()  # input untouched

    def test_all_finite(self):
        assert all_finite(np.ones((3, 2)))
        assert not all_finite(np.array([[1.0, np.nan]]))
        assert not all_finite(np.array([np.inf]))

    def test_flip_one_byte_round_trips(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"hello world")
        offset = flip_one_byte(path, offset=4)
        assert path.read_bytes() != b"hello world"
        assert flip_one_byte(path, offset=offset) == offset
        assert path.read_bytes() == b"hello world"

    def test_flip_one_byte_seeded_offset(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(256)))
        off_a = flip_one_byte(path, rng=np.random.default_rng(5))
        flip_one_byte(path, offset=off_a)  # restore
        off_b = flip_one_byte(path, rng=np.random.default_rng(5))
        assert off_a == off_b

    def test_flip_one_byte_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            flip_one_byte(path)


class TestTrainingIntegration:
    """The fault model replaces the ad-hoc monkeypatching that
    ``test_robustness.py`` used to prove NaN containment."""

    def test_nan_poisoned_steps_leave_parameters_untouched(
            self, tiny_split, train_config):
        from repro.incremental import FineTune
        from repro.models import ComiRecDR

        model = ComiRecDR(tiny_split.num_items, dim=12, num_interests=3,
                          seed=0)
        strategy = FineTune(model, tiny_split, train_config)
        strategy.pretrain()
        before = strategy.model.state_dict()
        with active(FaultPlan().nan_loss_at_step()):
            strategy.train_span(1)
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, before[name]), name

    def test_single_step_poison_only_skips_that_step(
            self, tiny_split, train_config):
        from repro.incremental import FineTune
        from repro.models import ComiRecDR

        model = ComiRecDR(tiny_split.num_items, dim=12, num_interests=3,
                          seed=0)
        strategy = FineTune(model, tiny_split, train_config)
        plan = FaultPlan().nan_loss_at_step(0)
        with active(plan):
            strategy.pretrain()
        # exactly one step fired, training still moved the parameters
        assert len(plan.log) == 1
        assert np.isfinite(strategy.model.item_emb.weight.data).all()
