"""Call-graph construction, fixed-point summaries, the RA80x rules on
multi-module trees, the summary cache, and the new CLI surfaces."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_paths,
    analyze_project,
    extract_module_facts,
    render_json,
    render_sarif,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import ModuleContext
from repro.analysis.summaries import SummaryCache, rules_signature


def _facts(source: str, path: Path, name: str = "mod.py"):
    file_path = path / name
    file_path.parent.mkdir(parents=True, exist_ok=True)
    file_path.write_text(source)
    ctx = ModuleContext.from_source(source, file_path,
                                    display_path=str(file_path))
    return extract_module_facts(ctx)


def _tree(tmp_path: Path, files: dict) -> Path:
    """Write a ``repro``-rooted package so dotted imports resolve."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _ra80x(report):
    return [f for f in report.findings if f.rule.startswith("RA80")]


class TestFactExtraction:
    def test_functions_methods_and_nested(self, tmp_path):
        facts = _facts(
            "def top(a):\n"
            "    def inner(b):\n"
            "        return b\n"
            "    return inner(a)\n"
            "class C:\n"
            "    def m(self, x):\n"
            "        return x\n",
            tmp_path)
        assert set(facts.functions) == {"top", "top.<locals>.inner", "C.m"}
        assert facts.functions["top"].local_funcs == {
            "inner": "top.<locals>.inner"}
        assert facts.functions["C.m"].params == ["self", "x"]
        assert facts.classes["C"].methods == ["m"]

    def test_import_aliases_recorded(self, tmp_path):
        facts = _facts(
            "import numpy as np\n"
            "import repro.util\n"
            "from repro.util import scale as s\n",
            tmp_path)
        assert facts.imports["np"] == "numpy"
        # plain `import repro.util` binds the root package name
        assert facts.imports["repro"] == "repro"
        assert facts.imports["s"] == "repro.util.scale"

    def test_seeded_detection(self, tmp_path):
        facts = _facts(
            "import numpy as np\n"
            "def a(seed):\n"
            "    return seed\n"
            "def b(x):\n"
            "    rng = np.random.default_rng(0)\n"
            "    return x\n"
            "def c(x):\n"
            "    return x\n",
            tmp_path)
        assert facts.functions["a"].seeded
        assert facts.functions["b"].seeded
        assert not facts.functions["c"].seeded

    def test_contract_decorator_detected(self, tmp_path):
        facts = _facts(
            "from repro.contracts import shape_contract\n"
            "@shape_contract('(N, D) f -> (N, D) f')\n"
            "def f(x):\n"
            "    return x\n",
            tmp_path)
        assert facts.functions["f"].has_contract

    def test_facts_round_trip_through_json(self, tmp_path):
        facts = _facts(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "    def m(self, a):\n"
            "        a *= 2\n"
            "        return a\n",
            tmp_path)
        from repro.analysis.callgraph import ModuleFacts
        encoded = json.dumps(facts.as_dict(), sort_keys=True)
        restored = ModuleFacts.from_dict(json.loads(encoded))
        assert restored.as_dict() == facts.as_dict()


class TestResolution:
    def test_cross_module_via_aliased_import(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
            "repro/caller.py": ("from repro.util import scale as s\n"
                                "def decay(snapshot_w):\n"
                                "    return s(snapshot_w, 0.5)\n"),
        })
        report = analyze_paths([str(root)])
        assert [f.rule for f in _ra80x(report)] == ["RA801"]
        assert _ra80x(report)[0].path.endswith("caller.py")

    def test_reexport_hop_through_package_init(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/__init__.py": "from .util import scale\n",
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
            "repro/caller.py": ("from repro import scale\n"
                                "def decay(snapshot_w):\n"
                                "    return scale(snapshot_w, 0.5)\n"),
        })
        report = analyze_paths([str(root)])
        assert [f.rule for f in _ra80x(report)] == ["RA801"]

    def test_method_resolution_through_base_class(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/base.py": ("class Base:\n"
                              "    def step(self, mat):\n"
                              "        mat += 1\n"
                              "        return mat\n"),
            "repro/sub.py": ("from repro.base import Base\n"
                             "class Sub(Base):\n"
                             "    def run(self, snapshot_m):\n"
                             "        return self.step(snapshot_m)\n"),
        })
        report = analyze_paths([str(root)])
        assert [f.rule for f in _ra80x(report)] == ["RA801"]

    def test_method_resolution_through_attribute_type(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/opt.py": ("class Optim:\n"
                             "    def apply(self, mat):\n"
                             "        mat *= 0.9\n"
                             "        return mat\n"),
            "repro/train.py": ("from repro.opt import Optim\n"
                               "class Trainer:\n"
                               "    def __init__(self):\n"
                               "        self.opt = Optim()\n"
                               "    def run(self, teacher_w):\n"
                               "        return self.opt.apply(teacher_w)\n"),
        })
        report = analyze_paths([str(root)])
        assert [f.rule for f in _ra80x(report)] == ["RA801"]

    def test_local_instance_method_resolution(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/opt.py": ("class Optim:\n"
                             "    def apply(self, mat):\n"
                             "        mat *= 0.9\n"
                             "        return mat\n"),
            "repro/train.py": ("from repro.opt import Optim\n"
                               "def run(teacher_w):\n"
                               "    opt = Optim()\n"
                               "    return opt.apply(teacher_w)\n"),
        })
        report = analyze_paths([str(root)])
        assert [f.rule for f in _ra80x(report)] == ["RA801"]

    def test_higher_order_value_is_unresolved_not_crash(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/hof.py": ("def pick(fns, k, x):\n"
                             "    fn = fns[k]\n"
                             "    return fn(x)\n"),
        })
        report = analyze_paths([str(root)])
        # no cycle: the dynamic call alone must not warn or crash
        assert _ra80x(report) == []

    def test_rng_witness_is_transitive(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/noise.py": ("import random\n"
                               "def jitter(x):\n"
                               "    return x + random.random()\n"),
            "repro/mid.py": ("from repro.noise import jitter\n"
                             "def perturb(x):\n"
                             "    return jitter(x)\n"),
            "repro/runner.py": ("from repro.mid import perturb\n"
                                "def run(seed, x):\n"
                                "    return perturb(x)\n"),
        })
        report = analyze_paths([str(root)])
        ra803 = [f for f in _ra80x(report) if f.rule == "RA803"]
        assert len(ra803) == 1
        assert ra803[0].path.endswith("runner.py")
        assert "random.random" in ra803[0].message

    def test_returns_view_composes_across_calls(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/views.py": ("def head(mat):\n"
                               "    return mat[:2]\n"
                               "def head2(mat):\n"
                               "    return head(mat)\n"),
            "repro/writer.py": ("from repro.views import head2\n"
                                "def poke(model):\n"
                                "    h = head2(model.frozen_emb)\n"
                                "    h += 1\n"
                                "    return h\n"),
        })
        report = analyze_paths([str(root)])
        ra802 = [f for f in _ra80x(report) if f.rule == "RA802"]
        assert len(ra802) == 1
        assert ra802[0].path.endswith("writer.py")

    def test_cycle_with_dynamic_forward_warns_once(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/cyc.py": ("TABLE = {}\n"
                             "def a(n, payload):\n"
                             "    op = TABLE[n]\n"
                             "    op(payload)\n"
                             "    return b(n, payload)\n"
                             "def b(n, payload):\n"
                             "    if n:\n"
                             "        return a(n - 1, payload)\n"
                             "    return payload\n"),
        })
        report = analyze_paths([str(root)])
        ra805 = [f for f in _ra80x(report) if f.rule == "RA805"]
        assert len(ra805) == 1
        assert ra805[0].severity == "warning"

    def test_noqa_suppresses_project_findings(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
            "repro/caller.py": ("from repro.util import scale\n"
                                "def decay(snapshot_w):\n"
                                "    return scale(snapshot_w, 0.5)"
                                "  # repro: noqa[RA801]\n"),
        })
        report = analyze_paths([str(root)])
        assert _ra80x(report) == []
        assert any(f.rule == "RA801" for f in report.noqa_suppressed)


class TestGraphExport:
    def test_graph_json_and_dot(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/a.py": ("def f(x):\n"
                           "    x *= 2\n"
                           "    return x\n"),
            "repro/b.py": ("from repro.a import f\n"
                           "def g(x):\n"
                           "    return f(x)\n"),
        })
        report = analyze_paths([str(root)])
        graph = report.project.graph_as_dict()
        assert "repro.a.f" in graph["functions"]
        assert graph["functions"]["repro.a.f"]["summary"]["mutates"] == [0]
        assert ["repro.b.g", "repro.a.f"] in [e[:2] for e in graph["edges"]]
        dot = report.project.graph_as_dot()
        assert '"repro.b.g" -> "repro.a.f";' in dot
        assert dot.startswith("digraph callgraph {")


class TestSummaryCache:
    def _paths(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
            "repro/caller.py": ("from repro.util import scale\n"
                                "def decay(snapshot_w):\n"
                                "    return scale(snapshot_w, 0.5)\n"),
        })
        return root

    def test_cold_runs_are_byte_identical(self, tmp_path):
        root = self._paths(tmp_path)
        c1, c2 = tmp_path / "c1.json", tmp_path / "c2.json"
        analyze_paths([str(root)], cache=SummaryCache(c1))
        analyze_paths([str(root)], cache=SummaryCache(c2))
        assert c1.read_bytes() == c2.read_bytes()

    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        root = self._paths(tmp_path)
        cache_path = tmp_path / "cache.json"
        cold = analyze_paths([str(root)], cache=SummaryCache(cache_path))
        assert cold.cache_misses == 2 and cold.cache_hits == 0
        warm = analyze_paths([str(root)], cache=SummaryCache(cache_path))
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert render_json(warm) == render_json(cold)
        assert [f.rule for f in warm.findings] == \
            [f.rule for f in cold.findings] == ["RA801"]

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = self._paths(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths([str(root)], cache=SummaryCache(cache_path))
        caller = root / "repro" / "caller.py"
        caller.write_text(caller.read_text().replace(
            "scale(snapshot_w, 0.5)", "scale(snapshot_w.copy(), 0.5)"))
        warm = analyze_paths([str(root)], cache=SummaryCache(cache_path))
        assert warm.cache_hits == 1 and warm.cache_misses == 1
        assert warm.findings == []

    def test_signature_change_invalidates_everything(self, tmp_path):
        root = self._paths(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths([str(root)], cache=SummaryCache(cache_path))
        payload = json.loads(cache_path.read_text())
        payload["rules_signature"] = "0" * 16
        cache_path.write_text(json.dumps(payload))
        warm = analyze_paths([str(root)], cache=SummaryCache(cache_path))
        assert warm.cache_hits == 0 and warm.cache_misses == 2

    def test_select_bypasses_cache(self, tmp_path):
        root = self._paths(tmp_path)
        cache_path = tmp_path / "cache.json"
        report = analyze_paths([str(root)], select=["RA801"],
                               cache=SummaryCache(cache_path))
        assert report.cache_hits == 0 and report.cache_misses == 0
        assert not cache_path.exists()

    def test_signature_is_stable_within_process(self):
        assert rules_signature() == rules_signature()
        assert len(rules_signature()) == 16


class TestCliSurfaces:
    def _tree_with_baseline(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/caller.py": ("from repro.util import scale\n"
                                "def decay(snapshot_w):\n"
                                "    return scale(snapshot_w.copy(), 0.5)\n"),
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
        })
        baseline = root / "analysis-baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "findings": [{"fingerprint": "feedfeedfeedfeed",
                          "rule": "RA801", "path": "gone.py",
                          "justification": "stale on purpose"}],
        }))
        return root, baseline

    def test_fail_stale_gates_clean_runs(self, tmp_path, capsys):
        root, baseline = self._tree_with_baseline(tmp_path)
        code = lint_main([str(root), "--baseline", str(baseline),
                          "--no-cache", "--fail-stale"])
        assert code == 1
        assert "stale baseline" in capsys.readouterr().err

    def test_prune_baseline_rewrites_file(self, tmp_path, capsys):
        root, baseline = self._tree_with_baseline(tmp_path)
        code = lint_main([str(root), "--baseline", str(baseline),
                          "--no-cache", "--prune-baseline"])
        assert code == 0
        payload = json.loads(baseline.read_text())
        assert payload["findings"] == []
        # and the gate passes afterwards
        assert lint_main([str(root), "--baseline", str(baseline),
                          "--no-cache", "--fail-stale"]) == 0

    def test_call_graph_cli_export(self, tmp_path, capsys):
        root, baseline = self._tree_with_baseline(tmp_path)
        assert lint_main([str(root), "--no-baseline", "--no-cache",
                          "--call-graph", "json"]) == 0
        graph = json.loads(capsys.readouterr().out)
        assert "repro.util.scale" in graph["functions"]
        assert lint_main([str(root), "--no-baseline", "--no-cache",
                          "--call-graph", "dot"]) == 0
        assert "digraph callgraph" in capsys.readouterr().out


class TestSarif:
    def test_sarif_shape_and_fingerprints(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/util.py": ("def scale(mat, k):\n"
                              "    mat *= k\n"
                              "    return mat\n"),
            "repro/caller.py": ("from repro.util import scale\n"
                                "def decay(snapshot_w):\n"
                                "    return scale(snapshot_w, 0.5)\n"),
        })
        report = analyze_paths([str(root)])
        sarif = json.loads(render_sarif(report))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RA801" in rule_ids and rule_ids == sorted(rule_ids)
        results = run["results"]
        assert len(results) == 1
        result = results[0]
        assert result["ruleId"] == "RA801"
        assert result["level"] == "error"
        fp = result["partialFingerprints"]["reproFingerprint/v1"]
        assert fp == report.findings[0].fingerprint()
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == report.findings[0].line

    def test_sarif_is_deterministic(self, tmp_path):
        root = _tree(tmp_path, {
            "repro/a.py": "def f(x):\n    return x\n",
        })
        r1 = analyze_paths([str(root)])
        r2 = analyze_paths([str(root)])
        assert render_sarif(r1) == render_sarif(r2)
