"""The pluggable compute backend (:mod:`repro.backend`).

Four families of guarantees:

1. **Selection** — registry names/aliases, scoped switching, the
   ``REPRO_BACKEND`` environment hook, and dtype threading into Tensors.
2. **Equivalence** — the fused kernels agree with the op-by-op graphs to
   float64 round-off when fusion is isolated (``FusedF64``), the fast
   float32 backend stays within documented drift tolerances, and a
   crash/resumed fast run is metric-identical to its uninterrupted twin.
3. **Pool lifecycle** — buffers are reused across steps, never while
   lent, and nothing that survives an optimizer step aliases pool
   memory (checked under the PR 6 write-guard sanitizer).
4. **Contracts** — every backend op's shape contract rejects malformed
   operands for both backends.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import backend, sanitize
from repro.backend import (
    BufferPool,
    FastBackend,
    NumpyBackend,
    available_backends,
    set_backend,
    use_backend,
)
from repro.backend.pool import MAX_POOLED_ELEMS
from repro.contracts import ContractViolation, enforced
from repro.experiments import make_strategy, run_strategy
from repro.faults import FaultPlan, SimulatedCrash, active
from repro.incremental import TrainConfig
from repro.models import (
    MIND,
    ComiRecDR,
    ComiRecSA,
    batched_compute_interests,
    batched_loss_targets,
)
from repro.obs import read_trace, render_summary, summarize_trace
from repro.stream import MODE_HEALTHY, run_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
MODEL_CLASSES = {"MIND": MIND, "ComiRec-DR": ComiRecDR, "ComiRec-SA": ComiRecSA}
FAMILIES = sorted(MODEL_CLASSES)

#: documented float32 drift tolerances (see docs/PERFORMANCE.md):
#: per-step loss agrees to ~1e-3 relative; end-of-run ranking metrics on
#: the tiny world stay within 0.1 absolute of the float64 run.
F32_LOSS_RTOL = 1e-3
F32_GRAD_RTOL = 5e-2
F32_METRIC_ATOL = 0.1


class FusedF64(NumpyBackend):
    """Float64 + fused kernels: isolates fusion error from dtype error."""

    name = "fused-f64"
    fused = True


def make_model(name, **overrides):
    kwargs = dict(dim=10, num_interests=3, seed=3)
    kwargs.update(overrides)
    return MODEL_CLASSES[name](80, **kwargs)


def make_jobs(model, seed=0, count=4):
    """Varying sequence lengths and K_u, exactly like training sees."""
    rng = np.random.default_rng(seed)
    jobs = []
    for user in range(count):
        state = model.init_user_state(user)
        if user % 2 == 0:
            model.expand_user(state, 1 + user % 2, span=1)
        seq = rng.integers(0, model.num_items,
                           size=int(rng.integers(3, 10))).tolist()
        jobs.append((state, seq))
    return jobs


def per_user_loss(model, state, seq, seed=0):
    """compute_interests -> loss_targets -> backward; returns the loss."""
    rng = np.random.default_rng(seed)
    interests = model.compute_interests(state, seq)
    targets = rng.integers(0, model.num_items, size=3).tolist()
    negatives = rng.integers(0, model.num_items, size=(3, 4))
    loss = model.loss_targets(interests, targets, negatives)
    loss.backward()
    return loss


def grad_snapshot(model):
    return {name: param.grad.copy()
            for name, param in model.named_parameters()
            if param.grad is not None}


def fast_config(**overrides):
    base = dict(epochs_pretrain=2, epochs_incremental=1,
                num_negatives=4, seed=0)
    return TrainConfig(**{**base, **overrides})


def build(tiny_split, config=None, model="ComiRec-DR"):
    return make_strategy("IMSR", model, tiny_split, config or fast_config(),
                         model_kwargs={"dim": 10, "num_interests": 2},
                         strategy_kwargs={"c1": 0.2})


def assert_metric_identical(result, reference):
    assert len(result.per_span) == len(reference.per_span)
    for ours, theirs in zip(result.per_span, reference.per_span):
        assert ours.hr == theirs.hr
        assert ours.ndcg == theirs.ndcg
    assert result.hr == reference.hr
    assert result.ndcg == reference.ndcg


# --------------------------------------------------------------------- #
# 1. selection
# --------------------------------------------------------------------- #


class TestSelection:
    def test_default_backend(self):
        assert backend.active.name == "default"
        assert backend.active.compute_dtype == np.float64
        assert not backend.active.fused
        assert backend.active_backend_name() == "default"

    def test_available_backends(self):
        assert available_backends() == ("default", "fast")

    @pytest.mark.parametrize("alias,name", [
        ("default", "default"), ("numpy", "default"), ("exact", "default"),
        ("fast", "fast"), ("f32", "fast"), ("FAST", "fast"),
    ])
    def test_aliases(self, alias, name):
        with use_backend(alias) as active_backend:
            assert active_backend.name == name

    def test_set_backend_returns_previous(self):
        previous = set_backend("fast")
        try:
            assert previous.name == "default"
            assert backend.active.name == "fast"
        finally:
            set_backend(previous)
        assert backend.active is previous

    def test_use_backend_restores_on_error(self):
        before = backend.active
        with pytest.raises(RuntimeError):
            with use_backend("fast"):
                raise RuntimeError("boom")
        assert backend.active is before

    def test_instance_injection(self):
        probe = FusedF64()
        with use_backend(probe) as active_backend:
            assert active_backend is probe

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cuda")

    def test_env_selection(self):
        env = dict(os.environ, REPRO_BACKEND="fast",
                   PYTHONPATH=str(REPO_ROOT / "src"))
        out = subprocess.run(
            [sys.executable, "-c",
             "import repro.backend as b; print(b.active.name)"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "fast"

    def test_env_typo_fails_loud(self):
        env = dict(os.environ, REPRO_BACKEND="fats",
                   PYTHONPATH=str(REPO_ROOT / "src"))
        out = subprocess.run(
            [sys.executable, "-c", "import repro.backend"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert out.returncode != 0
        assert "unknown backend" in out.stderr


class TestDtypeThreading:
    def test_tensor_dtype_follows_backend(self):
        from repro.autograd import Tensor

        assert Tensor([1.0, 2.0]).data.dtype == np.float64
        with use_backend("fast"):
            t = Tensor([[1.0, 2.0]], requires_grad=True)
            assert t.data.dtype == np.float32
            (t * t).sum().backward()
            assert t.grad.dtype == np.float32

    @pytest.mark.parametrize("name", FAMILIES)
    def test_model_parameters_and_state(self, name):
        with use_backend("fast"):
            model = make_model(name)
            for _, param in model.named_parameters():
                assert param.data.dtype == np.float32
            state = model.init_user_state(0)
            assert state.interests.dtype == np.float32
            interests = model.compute_interests(state, [1, 2, 3])
            assert interests.data.dtype == np.float32

    def test_embedding_grow_preserves_dtype(self):
        from repro.nn import Embedding

        with use_backend("fast"):
            emb = Embedding(8, 4, rng=np.random.default_rng(0))
            emb.grow(4, rng=np.random.default_rng(1))
            assert emb.weight.data.dtype == np.float32
            assert emb.weight.data.shape == (12, 4)


# --------------------------------------------------------------------- #
# 2. equivalence
# --------------------------------------------------------------------- #


class TestFusedMatchesUnfusedF64:
    """Fusion alone (still float64) reproduces the op-by-op graphs to
    round-off: interests, losses, and every parameter gradient."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_per_user_interests_and_grads(self, name):
        exact, fused = make_model(name), make_model(name)
        jobs_e, jobs_f = make_jobs(exact), make_jobs(fused)
        for (state_e, seq), (state_f, _) in zip(jobs_e, jobs_f):
            loss_e = per_user_loss(exact, state_e, seq)
            with use_backend(FusedF64()):
                loss_f = per_user_loss(fused, state_f, seq)
            np.testing.assert_allclose(loss_f.data, loss_e.data,
                                       rtol=0, atol=1e-12)
            grads_e, grads_f = grad_snapshot(exact), grad_snapshot(fused)
            assert grads_e.keys() == grads_f.keys()
            for key in grads_e:
                np.testing.assert_allclose(grads_f[key], grads_e[key],
                                           rtol=0, atol=1e-12)
            exact.zero_grad()
            fused.zero_grad()

    @pytest.mark.parametrize("name", FAMILIES)
    def test_batched_training_path(self, name):
        exact, fused = make_model(name), make_model(name)
        jobs_e, jobs_f = make_jobs(exact), make_jobs(fused)
        rng = np.random.default_rng(7)
        targets = [rng.integers(0, 80, size=3).tolist() for _ in jobs_e]
        negatives = [rng.integers(0, 80, size=(3, 4)) for _ in jobs_e]

        def group_loss(model, jobs):
            interests, capsule_mask, _ = batched_compute_interests(
                model, jobs)
            loss = batched_loss_targets(model, interests, capsule_mask,
                                        targets, negatives)
            loss.backward()
            return loss

        loss_e = group_loss(exact, jobs_e)
        with use_backend(FusedF64()):
            loss_f = group_loss(fused, jobs_f)
        np.testing.assert_allclose(loss_f.data, loss_e.data,
                                   rtol=0, atol=1e-12)
        grads_e, grads_f = grad_snapshot(exact), grad_snapshot(fused)
        assert grads_e.keys() == grads_f.keys()
        for key in grads_e:
            np.testing.assert_allclose(grads_f[key], grads_e[key],
                                       rtol=0, atol=1e-12)


class TestFastF32Drift:
    """The float32 backend tracks float64 within documented tolerances."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_per_user_loss_drift(self, name):
        exact = make_model(name)
        with use_backend("fast"):
            fast = make_model(name)
            jobs_f = make_jobs(fast)
        jobs_e = make_jobs(exact)
        for (state_e, seq), (state_f, _) in zip(jobs_e, jobs_f):
            loss_e = per_user_loss(exact, state_e, seq)
            with use_backend("fast"):
                loss_f = per_user_loss(fast, state_f, seq)
            np.testing.assert_allclose(loss_f.data, loss_e.data,
                                       rtol=F32_LOSS_RTOL, atol=1e-4)
            grads_e, grads_f = grad_snapshot(exact), grad_snapshot(fast)
            for key in grads_e:
                scale = np.abs(grads_e[key]).max() or 1.0
                drift = np.abs(grads_f[key].astype(np.float64)
                               - grads_e[key]).max()
                assert drift <= F32_GRAD_RTOL * scale + 1e-6, (key, drift)
            exact.zero_grad()
            fast.zero_grad()

    def test_end_to_end_metric_drift(self, tiny_split):
        reference = run_strategy(build(tiny_split), tiny_split,
                                 "tiny", "ComiRec-DR")
        with use_backend("fast"):
            fast = run_strategy(build(tiny_split), tiny_split,
                                "tiny", "ComiRec-DR")
        assert np.isfinite(fast.hr) and np.isfinite(fast.ndcg)
        assert abs(fast.hr - reference.hr) <= F32_METRIC_ATOL
        assert abs(fast.ndcg - reference.ndcg) <= F32_METRIC_ATOL


class TestCrashResumeUnderFast:
    """Crash-safety is backend-independent: a resumed fast run is
    metric-identical (exact float equality) to its uninterrupted twin."""

    def test_crash_then_resume_matches_uninterrupted(self, tiny_split,
                                                     tmp_path):
        with use_backend("fast"):
            baseline = run_strategy(build(tiny_split), tiny_split,
                                    "tiny", "ComiRec-DR")
            with active(FaultPlan(seed=1).crash_at_span_boundary(1)):
                with pytest.raises(SimulatedCrash):
                    run_strategy(build(tiny_split), tiny_split, "tiny",
                                 "ComiRec-DR", checkpoint_dir=tmp_path)
            resumed = run_strategy(build(tiny_split), tiny_split, "tiny",
                                   "ComiRec-DR", checkpoint_dir=tmp_path,
                                   resume=True)
        assert resumed.resumed_spans == [1]
        assert_metric_identical(resumed, baseline)


class TestStreamUnderFast:
    def test_stream_pipeline_smoke(self, tiny_split, tmp_path):
        with use_backend("fast"):
            strategy = make_strategy(
                "FT", "ComiRec-DR", tiny_split, fast_config(),
                model_kwargs={"dim": 10, "num_interests": 2})
            result = run_stream(strategy, config=None, dataset_name="tiny",
                                model_name="ComiRec-DR",
                                checkpoint_dir=tmp_path / "run")
        assert result.mode == MODE_HEALTHY
        assert result.trained > 0
        for _, param in strategy.model.named_parameters():
            assert param.data.dtype == np.float32
            assert np.isfinite(param.data).all()


# --------------------------------------------------------------------- #
# 3. pool lifecycle
# --------------------------------------------------------------------- #


class TestBufferPool:
    def test_miss_then_hit_reuses_backing_memory(self):
        pool = BufferPool()
        first = pool.acquire((4, 3), np.float32)
        assert pool.stats()["misses"] == 1 and pool.lent == 1
        pool.reclaim()
        assert pool.lent == 0
        second = pool.acquire((6, 2), np.float32)  # same 16-slot bucket
        assert pool.stats()["hits"] == 1
        assert np.shares_memory(first, second)
        assert pool.stats()["bytes_reused"] == 12 * 4

    def test_lent_buffers_are_never_handed_out_twice(self):
        pool = BufferPool()
        a = pool.acquire((8,), np.float64)
        b = pool.acquire((8,), np.float64)
        assert not np.shares_memory(a, b)
        assert pool.lent == 2

    def test_dtypes_do_not_share_buckets(self):
        pool = BufferPool()
        a = pool.acquire((8,), np.float32)
        pool.reclaim()
        b = pool.acquire((8,), np.float64)
        assert not np.shares_memory(a, b)
        assert pool.stats()["hits"] == 0

    def test_oversized_requests_bypass_the_pool(self):
        pool = BufferPool()
        big = pool.acquire((MAX_POOLED_ELEMS + 1,), np.float32)
        assert big.shape == (MAX_POOLED_ELEMS + 1,)
        assert pool.lent == 0  # not tracked, garbage-collected normally
        assert pool.stats()["misses"] == 1

    def test_clear_drops_everything(self):
        pool = BufferPool()
        pool.acquire((4,), np.float32)
        pool.reclaim()
        pool.clear()
        assert pool.stats()["free_buffers"] == 0

    def test_end_step_reclaims_and_counts(self):
        fast = FastBackend(blas_threads=None)
        fast.scratch((5, 5))
        assert fast.pool.lent == 1
        fast.end_step()
        assert fast.pool.lent == 0
        stats = fast.pool_stats()
        assert stats["misses"] == 1

    def test_unpooled_scratch_skips_the_pool(self):
        fast = FastBackend(blas_threads=None)
        buf = fast.scratch((5, 5), pooled=False)
        assert buf.dtype == np.float32
        assert fast.pool.lent == 0


class TestPoolLifecycleInTraining:
    """End-to-end: pooling survives the write-guard sanitizer and no
    pooled buffer aliases anything that outlives the step."""

    def test_training_under_sanitizer(self, tiny_split):
        fast = FastBackend(blas_threads=None)
        with use_backend(fast), sanitize.enforced():
            strategy = build(tiny_split)
            result = run_strategy(strategy, tiny_split, "tiny", "ComiRec-DR")
        assert np.isfinite(result.hr)
        stats = fast.pool_stats()
        assert stats["lent"] == 0  # every step boundary reclaimed
        assert stats["hits"] > 0  # and the pool actually recycled
        # nothing persistent aliases pool memory
        pooled = [flat for stack in fast.pool._free.values()
                  for flat in stack]
        for name, param in strategy.model.named_parameters():
            for flat in pooled:
                assert not np.shares_memory(param.data, flat), name
        for state in strategy.states.values():
            for flat in pooled:
                assert not np.shares_memory(state.interests, flat)

    def test_no_grad_extraction_does_not_grow_the_pool(self):
        fast = FastBackend(blas_threads=None)
        with use_backend(fast):
            model = make_model("ComiRec-DR")
            state = model.init_user_state(0)
            model.snapshot_interests(state, [1, 2, 3, 4])
        assert fast.pool.lent == 0


# --------------------------------------------------------------------- #
# 4. contracts and observability
# --------------------------------------------------------------------- #


@pytest.fixture(params=["default", "fast"])
def a_backend(request):
    if request.param == "fast":
        return FastBackend(blas_threads=None)
    return NumpyBackend()


class TestBackendContracts:
    def test_gemm_shapes(self, a_backend):
        dt = a_backend.compute_dtype
        with enforced():
            out = a_backend.gemm(np.ones((2, 3), dtype=dt),
                                 np.ones((3, 4), dtype=dt))
            assert out.shape == (2, 4)
            with pytest.raises(ContractViolation):
                a_backend.gemm(np.ones((2, 3), dtype=dt),
                               np.ones((5, 4), dtype=dt))

    def test_gather_contract(self, a_backend):
        dt = a_backend.compute_dtype
        table = np.arange(12, dtype=dt).reshape(4, 3)
        with enforced():
            rows = a_backend.gather(table, np.array([0, 2]))
            np.testing.assert_array_equal(rows, table[[0, 2]])
            with pytest.raises(ContractViolation):
                a_backend.gather(np.ones(4, dtype=dt), np.array([0]))

    def test_scatter_add_contract(self, a_backend):
        dt = a_backend.compute_dtype
        out = np.zeros((4, 3), dtype=dt)
        with enforced():
            a_backend.scatter_add(out, np.array([1, 1]),
                                  np.ones((2, 3), dtype=dt))
            assert out[1, 0] == 2.0
            with pytest.raises(ContractViolation):
                a_backend.scatter_add(out, np.array([1]),
                                      np.ones((1, 2), dtype=dt))

    def test_softmax_contract_and_value(self, a_backend):
        dt = a_backend.compute_dtype
        with enforced():
            probs = a_backend.softmax(np.zeros((2, 3), dtype=dt), axis=-1)
            np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)
            with pytest.raises(ContractViolation):
                a_backend.softmax(np.zeros((2, 3), dtype=np.int64))


class TestObservability:
    def test_trace_carries_backend_telemetry(self, tiny_split, tmp_path):
        with use_backend("fast"):
            run_strategy(build(tiny_split), tiny_split, "tiny",
                         "ComiRec-DR", trace_dir=tmp_path)
        summary = summarize_trace(tmp_path)
        assert summary["backend"]["active"] == "fast"
        pools = summary["backend"]["pools"]
        assert pools["fast"]["hits"] > 0
        assert pools["fast"]["hit_rate"] > 0.5
        assert pools["fast"]["bytes_reused"] > 0
        rendered = render_summary(summary)
        assert "backend:" in rendered
        assert "pool[fast]" in rendered
        # the run span itself is labelled with the backend
        events, _ = read_trace(tmp_path)
        run_spans = [e for e in events if e.get("kind") == "span_start"
                     and e.get("name") == "run"]
        assert run_spans and run_spans[0]["fields"]["backend"] == "fast"

    def test_default_backend_trace_has_gauge_only(self, tiny_split,
                                                  tmp_path):
        run_strategy(build(tiny_split), tiny_split, "tiny", "ComiRec-DR",
                     trace_dir=tmp_path)
        summary = summarize_trace(tmp_path)
        assert summary["backend"]["active"] == "default"
        assert summary["backend"]["pools"] == {}
