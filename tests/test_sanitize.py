"""Tests for the runtime write-guard sanitizer (:mod:`repro.sanitize`).

Two layers of proof:

* API/unit tests for the enforcement toggles, the capture/release
  freeze, and the tensor buffer-stamp guard inside autograd.
* A seeded mutant harness in the :mod:`repro.faults` spirit: for each
  guarded capture boundary, run the real training/persistence code
  under enforcement, then inject one aliased in-place write at that
  boundary and assert it raises *at the faulting line* — while the
  legal suite stays green under the same enforcement.
"""

import numpy as np
import pytest

from repro import sanitize
from repro.autograd import Tensor
from repro.experiments import make_strategy
from repro.incremental import TrainConfig
from repro.persistence import load_checkpoint, save_checkpoint
from repro.sanitize import SanitizeViolation


@pytest.fixture()
def fast_config():
    return TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                       num_negatives=4, seed=0)


def build(tiny_split, config, name="FT", model="ComiRec-DR", **extra):
    kwargs = {"c1": 0.2} if name == "IMSR" else {}
    kwargs.update(extra)
    return make_strategy(name, model, tiny_split, config,
                         model_kwargs={"dim": 10, "num_interests": 2},
                         strategy_kwargs=kwargs)


@pytest.fixture()
def enforced():
    with sanitize.enforced():
        yield


# ---------------------------------------------------------------------- #
# API
# ---------------------------------------------------------------------- #
class TestToggles:
    def test_enforce_returns_previous_and_restores(self):
        before = sanitize.checking_enabled()
        prev = sanitize.enforce(True)
        assert prev == before
        assert sanitize.checking_enabled()
        sanitize.enforce(prev)
        assert sanitize.checking_enabled() == before

    def test_enforced_context_restores_on_exit(self):
        before = sanitize.checking_enabled()
        with sanitize.enforced():
            assert sanitize.checking_enabled()
        assert sanitize.checking_enabled() == before

    def test_capture_is_passthrough_when_disabled(self):
        with sanitize.enforced(False):
            arr = np.zeros(3)
            assert sanitize.capture(arr) is arr
            assert not sanitize.is_frozen(arr)
            arr[0] = 1.0  # still writable

    def test_capture_freezes_when_enabled(self, enforced):
        arr = np.zeros(3)
        assert sanitize.capture(arr) is arr
        assert sanitize.is_frozen(arr)
        with pytest.raises(ValueError):
            arr[0] = 1.0

    def test_views_of_frozen_arrays_are_read_only(self, enforced):
        arr = sanitize.capture(np.zeros((2, 3)))
        view = arr.reshape(-1)
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_release_reenables_writes(self, enforced):
        arr = sanitize.capture(np.zeros(3))
        sanitize.release(arr)
        arr[0] = 1.0  # does not raise
        assert not sanitize.is_frozen(arr)

    def test_capture_ignores_non_arrays(self, enforced):
        assert sanitize.capture(7) == 7
        assert sanitize.capture(None) is None


class TestBufferStamp:
    def test_stable_across_reads(self):
        arr = np.arange(12.0).reshape(3, 4)
        assert sanitize.buffer_stamp(arr) == sanitize.buffer_stamp(arr)

    def test_detects_single_element_change(self):
        arr = np.arange(12.0)
        before = sanitize.buffer_stamp(arr)
        arr[7] += 1e-9
        assert sanitize.buffer_stamp(arr) != before

    def test_large_array_stamp_samples_the_interior(self):
        arr = np.zeros(200_000)
        before = sanitize.buffer_stamp(arr)
        stride = max(1, arr.size // 1024)
        # beyond the head/tail crc windows, on the sampled lattice
        arr[stride * 500] = 3.0
        assert sanitize.buffer_stamp(arr) != before

    def test_shape_is_part_of_the_stamp(self):
        arr = np.arange(12.0)
        assert (sanitize.buffer_stamp(arr.reshape(3, 4))
                != sanitize.buffer_stamp(arr.reshape(4, 3)))


# ---------------------------------------------------------------------- #
# autograd guard
# ---------------------------------------------------------------------- #
class TestTensorGuard:
    def test_mutation_between_forward_and_backward_raises(self, enforced):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = (t * 3.0).sum()
        # the illegal write is this test's subject
        t.data[0, 0] = 42.0  # repro: noqa[RA101]
        with pytest.raises(SanitizeViolation):
            loss.backward()

    def test_legal_forward_backward_is_silent(self, enforced):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        loss = (t * 3.0).sum()
        loss.backward()
        assert np.allclose(t.grad, 3.0)

    def test_backward_clears_stamps_for_next_step(self, enforced):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2.0).sum().backward()
        # optimizer-style in-place update between steps is legal
        t.data -= 0.1 * t.grad  # repro: noqa[RA101]
        t.zero_grad()
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, 2.0)

    def test_disabled_mode_does_not_stamp(self):
        with sanitize.enforced(False):
            t = Tensor(np.ones(3), requires_grad=True)
            loss = (t * 2.0).sum()
            t.data[0] = 9.0  # repro: noqa[RA101]
            loss.backward()  # no guard, no raise


# ---------------------------------------------------------------------- #
# mutant harness: one aliased write after each capture boundary
# ---------------------------------------------------------------------- #
def _any_user(strategy):
    return sorted(strategy.states)[0]


def _mutate_train_user_snapshot(tiny_split, config, tmp_path):
    """B1: per-user interest snapshot written by ``_train_user``."""
    strategy = build(tiny_split, config, name="FT")
    strategy.pretrain()
    state = strategy.states[_any_user(strategy)]
    state.interests[0, 0] = 99.0


def _mutate_batched_snapshot(tiny_split, config, tmp_path):
    """B2: vectorized snapshot from ``batched_snapshot_interests``."""
    cfg = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                      num_negatives=4, seed=0, users_per_batch=4,
                      batched_snapshots=True)
    strategy = build(tiny_split, cfg, name="FT")
    strategy.pretrain()
    state = strategy.states[_any_user(strategy)]
    state.interests[0, 0] = 99.0


def _mutate_begin_span_teacher(tiny_split, config, tmp_path):
    """B3: the ``prev_interests`` teacher captured at the span boundary."""
    strategy = build(tiny_split, config, name="IMSR")
    strategy.pretrain()
    strategy.train_span(1)
    state = strategy.states[_any_user(strategy)]
    state.prev_interests[0, 0] = 99.0


def _mutate_ewc_fisher(tiny_split, config, tmp_path):
    """B4: EWC's Fisher estimate captured after each span."""
    strategy = build(tiny_split, config, name="EWC")
    strategy.pretrain()
    strategy.train_span(1)
    name = sorted(strategy.fisher)[0]
    strategy.fisher[name][...] = 0.0


def _mutate_ewc_anchors(tiny_split, config, tmp_path):
    """B4b: EWC's parameter anchors captured alongside the Fisher."""
    strategy = build(tiny_split, config, name="EWC")
    strategy.pretrain()
    strategy.train_span(1)
    name = sorted(strategy.anchors)[0]
    strategy.anchors[name] += 1.0


def _mutate_checkpoint_manifest(tiny_split, config, tmp_path):
    """B5: arrays collected into a checkpoint manifest."""
    strategy = build(tiny_split, config, name="FT")
    strategy.pretrain()
    save_checkpoint(strategy, tmp_path / "ckpt.npz")
    state = strategy.states[_any_user(strategy)]
    state.created_span[0] = 7


def _mutate_restored_state(tiny_split, config, tmp_path):
    """B6: user state restored by ``load_checkpoint``."""
    strategy = build(tiny_split, config, name="FT")
    strategy.pretrain()
    path = save_checkpoint(strategy, tmp_path / "ckpt.npz")
    fresh = build(tiny_split, config, name="FT")
    load_checkpoint(fresh, path)
    state = fresh.states[_any_user(fresh)]
    state.interests[0, 0] = 99.0


def _mutate_train_group_snapshot(tiny_split, config, tmp_path):
    """B7: the snapshot written by the micro-batched ``_train_group``."""
    cfg = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                      num_negatives=4, seed=0, users_per_batch=4)
    strategy = build(tiny_split, cfg, name="FT")
    strategy.pretrain()
    state = strategy.states[_any_user(strategy)]
    state.interests[0, 0] = 99.0


MUTANTS = {
    "train-user-snapshot": _mutate_train_user_snapshot,
    "batched-snapshot": _mutate_batched_snapshot,
    "begin-span-teacher": _mutate_begin_span_teacher,
    "ewc-fisher": _mutate_ewc_fisher,
    "ewc-anchors": _mutate_ewc_anchors,
    "checkpoint-manifest": _mutate_checkpoint_manifest,
    "restored-state": _mutate_restored_state,
    "train-group-snapshot": _mutate_train_group_snapshot,
}


class TestMutantHarness:
    def test_covers_at_least_five_boundaries(self):
        assert len(MUTANTS) >= 5

    @pytest.mark.parametrize("boundary", sorted(MUTANTS))
    def test_aliased_write_raises_at_boundary(self, boundary, tiny_split,
                                              fast_config, tmp_path,
                                              enforced):
        with pytest.raises(ValueError, match="read-only"):
            MUTANTS[boundary](tiny_split, fast_config, tmp_path)

    @pytest.mark.parametrize("boundary", sorted(MUTANTS))
    def test_same_write_passes_unenforced(self, boundary, tiny_split,
                                          fast_config, tmp_path):
        with sanitize.enforced(False):
            MUTANTS[boundary](tiny_split, fast_config, tmp_path)


class TestLegalSuiteUnderEnforcement:
    def test_full_span_loop_with_checkpointing(self, tiny_split, fast_config,
                                               tmp_path, enforced):
        strategy = build(tiny_split, fast_config, name="IMSR")
        strategy.pretrain()
        for t in range(1, min(3, len(tiny_split.spans) + 1)):
            strategy.train_span(t)
            save_checkpoint(strategy, tmp_path / f"span-{t}.npz", span=t)
        fresh = build(tiny_split, fast_config, name="IMSR")
        load_checkpoint(fresh, tmp_path / "span-1.npz")
        user = _any_user(fresh)
        assert fresh.states[user].interests.shape[1] == 10

    def test_enforcement_does_not_change_results(self, tiny_split,
                                                 fast_config):
        with sanitize.enforced(False):
            plain = build(tiny_split, fast_config, name="FT")
            plain.pretrain()
        with sanitize.enforced():
            guarded = build(tiny_split, fast_config, name="FT")
            guarded.pretrain()
        for (name, a), (_, b) in zip(plain.model.named_parameters(),
                                     guarded.model.named_parameters()):
            assert np.allclose(a.data, b.data), name
