"""repro.stream units: validation gate, quarantine, offset journal
integrity (byte-flip property tests), and mid-stream catalog growth."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.sampler import NegativeSampler
from repro.experiments import make_strategy
from repro.faults import flip_one_byte
from repro.incremental import TrainConfig
from repro.nn import Adam, Embedding, Parameter, SparseAdam
from repro.stream import (
    GateConfig,
    IntervalRecord,
    Quarantine,
    StreamEvent,
    StreamJournal,
    StreamJournalError,
    chain_extend,
    events_from_split,
    read_quarantine,
    validate_event,
)


def gate_kwargs(**overrides):
    base = dict(watermark=float("-inf"), seen_keys=set(), num_items=100,
                known_users={1, 2, 3}, gate=GateConfig())
    base.update(overrides)
    return base


def ev(seq=0, user=1, item=5, ts=10.0):
    return StreamEvent(seq=seq, user=user, item=item, ts=ts)


class TestValidationGate:
    def test_clean_event_accepted(self):
        assert validate_event(ev(), **gate_kwargs()) is None

    @pytest.mark.parametrize("user", [-1, 1.5, "3", None, True])
    def test_malformed_user(self, user):
        verdict = validate_event(ev(user=user), **gate_kwargs())
        assert verdict is not None and verdict[0] == "malformed-user"

    @pytest.mark.parametrize("item", [-7, 2.0, "x", False])
    def test_malformed_item(self, item):
        verdict = validate_event(ev(item=item), **gate_kwargs())
        assert verdict is not None and verdict[0] == "malformed-item"

    @pytest.mark.parametrize("ts", [float("nan"), float("inf"), "noon", None])
    def test_malformed_timestamp(self, ts):
        verdict = validate_event(ev(ts=ts), **gate_kwargs())
        assert verdict is not None and verdict[0] == "malformed-timestamp"

    def test_duplicate_detected_by_content_key(self):
        seen = {ev(seq=3).key()}
        # a redelivery carries a new seq but the same (user, item, ts)
        verdict = validate_event(ev(seq=9), **gate_kwargs(seen_keys=seen))
        assert verdict is not None and verdict[0] == "duplicate"

    def test_stale_vs_merely_late(self):
        kwargs = gate_kwargs(watermark=1000.0)
        late = validate_event(ev(ts=960.0), **kwargs)     # within lateness
        stale = validate_event(ev(ts=949.0), **kwargs)    # beyond it
        assert late is None
        assert stale is not None and stale[0] == "stale"

    def test_unknown_item_only_when_growth_disabled(self):
        frozen = GateConfig(allow_new_items=False)
        assert validate_event(ev(item=100), **gate_kwargs()) is None
        verdict = validate_event(ev(item=100), **gate_kwargs(gate=frozen))
        assert verdict is not None and verdict[0] == "unknown-item"

    def test_unknown_user_only_when_growth_disabled(self):
        frozen = GateConfig(allow_new_users=False)
        assert validate_event(ev(user=99), **gate_kwargs()) is None
        verdict = validate_event(ev(user=99), **gate_kwargs(gate=frozen))
        assert verdict is not None and verdict[0] == "unknown-user"

    def test_first_failure_wins(self):
        # malformed beats duplicate beats stale: one unambiguous reason
        seen = {(1, 5, 10.0)}
        verdict = validate_event(ev(user=-1), **gate_kwargs(seen_keys=seen))
        assert verdict[0] == "malformed-user"


class TestEventsFromSplit:
    def test_deterministic_and_seed_sensitive(self, tiny_split):
        a = events_from_split(tiny_split, seed=0)
        b = events_from_split(tiny_split, seed=0)
        c = events_from_split(tiny_split, seed=1)
        assert a == b
        assert [e.key() for e in a] != [e.key() for e in c]

    def test_seqs_are_contiguous_and_ts_nondecreasing(self, tiny_split):
        events = events_from_split(tiny_split, seed=0)
        assert [e.seq for e in events] == list(range(len(events)))
        ts = [e.ts for e in events]
        assert ts == sorted(ts)

    def test_per_user_item_order_preserved(self, tiny_split):
        events = events_from_split(tiny_split, seed=0)
        for t, span in enumerate(tiny_split.spans, start=1):
            lo, hi = t * 1000.0, (t + 1) * 1000.0
            span_events = [e for e in events if lo <= e.ts < hi]
            for user in span.user_ids():
                expected = list(span.users[user].all_items)
                got = [e.item for e in span_events if e.user == user]
                assert got == expected


class TestQuarantine:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with Quarantine(path) as q:
            q.add(ev(seq=1), "duplicate", "seen before", offset=4)
            q.add(ev(seq=2, item=-1), "malformed-item", "negative", offset=5)
        records = read_quarantine(path)
        assert [r["reason"] for r in records] == ["duplicate", "malformed-item"]
        assert [r["offset"] for r in records] == [4, 5]
        assert records[0]["seq"] == 1

    def test_resume_truncates_past_offset(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with Quarantine(path) as q:
            for offset in range(6):
                q.add(ev(seq=offset), "stale", "", offset=offset)
        # resume from offset 3: records at offsets >= 3 are re-evaluated
        with Quarantine(path, resume_offset=3):
            pass
        assert [r["offset"] for r in read_quarantine(path)] == [0, 1, 2]

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with Quarantine(path) as q:
            q.add(ev(seq=1), "stale", "", offset=0)
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 2, "user": 1, "item')  # crash mid-append
        records = read_quarantine(path)
        assert len(records) == 1 and records[0]["seq"] == 1


def make_journal(tmp_path, intervals=3):
    journal = StreamJournal(tmp_path, fingerprint="fp", dataset="tiny",
                            model="ComiRec-DR", strategy="FT")
    chain = ""
    for i in range(intervals):
        chain = chain_extend(chain, i)
        journal.intervals[i] = IntervalRecord(
            interval=i, offset=(i + 1) * 10, trained=(i + 1) * 9,
            scored=(i + 1) * 10, quarantined=i, dropped=0, chain=chain,
            checkpoint=f"interval-{i:04d}.npz", mode="healthy",
            window_recall=0.5, window_ndcg=0.25)
        journal.prev_state = journal.state
        journal.state = {"interval": i, "offset": (i + 1) * 10}
    journal.incidents.append({"interval": 1, "kind": "recovered",
                              "detail": {}, "action": "promote"})
    journal.write()
    return journal


class TestStreamJournal:
    def test_round_trip(self, tmp_path):
        written = make_journal(tmp_path)
        loaded = StreamJournal.load(tmp_path)
        assert loaded.fingerprint == "fp"
        assert sorted(loaded.intervals) == [0, 1, 2]
        assert loaded.intervals[2].chain == written.intervals[2].chain
        assert loaded.intervals[1].window_recall == 0.5
        assert loaded.state == {"interval": 2, "offset": 30}
        assert loaded.prev_state == {"interval": 1, "offset": 20}
        assert loaded.incidents == written.incidents

    def test_chain_is_order_sensitive(self):
        ab = chain_extend(chain_extend("", 1), 2)
        ba = chain_extend(chain_extend("", 2), 1)
        assert ab != ba
        assert chain_extend(chain_extend("", 1), 2) == ab

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(StreamJournalError, match="no stream journal"):
            StreamJournal.load(tmp_path)

    def test_every_byte_flip_is_detected(self, tmp_path):
        """Property test: flip ONE byte anywhere — load must refuse."""
        journal = make_journal(tmp_path)
        size = journal.path.stat().st_size
        rng = np.random.default_rng(11)
        offsets = sorted({0, size - 1,
                          *map(int, rng.integers(size, size=40))})
        for offset in offsets:
            flip_one_byte(journal.path, offset=offset)
            with pytest.raises(StreamJournalError):
                StreamJournal.load(tmp_path)
            flip_one_byte(journal.path, offset=offset)  # restore
        StreamJournal.load(tmp_path)  # restored file loads again

    def test_truncation_is_detected(self, tmp_path):
        journal = make_journal(tmp_path)
        data = journal.path.read_bytes()
        for keep in (0, 1, len(data) // 2, len(data) - 1):
            journal.path.write_bytes(data[:keep])
            with pytest.raises(StreamJournalError):
                StreamJournal.load(tmp_path)
        journal.path.write_bytes(data)
        StreamJournal.load(tmp_path)

    def test_state_for_retains_latest_two_only(self, tmp_path):
        journal = make_journal(tmp_path, intervals=3)
        assert journal.state_for(2) == {"interval": 2, "offset": 30}
        assert journal.state_for(1) == {"interval": 1, "offset": 20}
        assert journal.state_for(0) is None


class TestCatalogGrowth:
    def test_embedding_grow_preserves_existing_rows(self):
        emb = Embedding(8, 4, np.random.default_rng(0))
        before = emb.weight.data.copy()
        emb.grow(3, rng=np.random.default_rng(1))
        assert emb.num_embeddings == 11
        assert emb.weight.data.shape == (11, 4)
        np.testing.assert_array_equal(emb.weight.data[:8], before)

    def test_embedding_grow_is_rng_reproducible(self):
        a = Embedding(8, 4, np.random.default_rng(0))
        b = Embedding(8, 4, np.random.default_rng(0))
        a.grow(3, rng=np.random.default_rng(5))
        b.grow(3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_embedding_grow_without_rng_zero_fills(self):
        emb = Embedding(8, 4, np.random.default_rng(0))
        emb.grow(2, rng=None)
        np.testing.assert_array_equal(emb.weight.data[8:], 0.0)

    def test_model_grow_items_updates_catalog(self, tiny_split):
        config = TrainConfig(epochs_pretrain=1, epochs_incremental=1,
                             num_negatives=4, seed=0)
        strategy = make_strategy("FT", "ComiRec-DR", tiny_split, config,
                                 model_kwargs={"dim": 10, "num_interests": 2})
        model = strategy.model
        old = model.num_items
        added = model.grow_items(old + 5, rng=model.rng)
        assert added == 5
        assert model.num_items == old + 5
        assert model.item_emb.weight.data.shape[0] == old + 5
        # growing to a smaller/equal catalog is a no-op
        assert model.grow_items(old, rng=model.rng) == 0
        assert model.num_items == old + 5

    def test_sampler_grow_widens_never_shrinks(self):
        sampler = NegativeSampler(num_items=10, num_negatives=4,
                                  rng=np.random.default_rng(0))
        sampler.grow(15)
        assert sampler.num_items == 15
        sampler.grow(8)
        assert sampler.num_items == 15

    def test_dense_adam_rejects_non_row_growth(self):
        p = Parameter(np.zeros((4, 3)))
        opt = Adam([p], lr=0.01)
        p.data = np.zeros((4, 5))  # reshape, not row growth
        p.grad = np.zeros((4, 5))
        with pytest.raises(ValueError, match="shape"):
            opt.step()
