"""Stream robustness under injected faults.

Two families of guarantees, both seeded and deterministic:

1. **Fault matrix** — for every stream fault kind the pipeline either
   quarantines-and-continues (delivery faults) or degrades-and-recovers
   (state faults); the run always completes and ends healthy.
2. **Exactly-once resume** — crash the run at *any* event boundary,
   resume, and the final sliding-window metrics, trained-event hash
   chain, and model parameters are byte-identical to the uninterrupted
   run; corrupting the newest checkpoint makes resume fall back one
   interval and still converge to the identical result.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.experiments import make_strategy
from repro.faults import Fault, FaultPlan, SimulatedCrash, active, flip_one_byte
from repro.incremental import TrainConfig
from repro.stream import (
    MODE_DEGRADED,
    MODE_HEALTHY,
    QUARANTINE_NAME,
    StreamConfig,
    StreamJournal,
    StreamJournalError,
    events_from_split,
    read_quarantine,
    run_stream,
)
from repro.stream.pipeline import _Pipeline

N_EVENTS = 60
STREAM_CONFIG = StreamConfig(checkpoint_every=16, backoff_base=0.0)


def build(tiny_split, name="FT"):
    config = TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                         num_negatives=4, seed=0)
    return make_strategy(
        name, "ComiRec-DR", tiny_split, config,
        model_kwargs={"dim": 10, "num_interests": 2},
        strategy_kwargs={"c1": 0.2} if name == "IMSR" else {})


def stream_events(tiny_split):
    return events_from_split(tiny_split, seed=0)[:N_EVENTS]


def state_hash(strategy):
    """Bytes of every model parameter and every user's stored interests."""
    digest = hashlib.sha256()
    for name, param in sorted(strategy.model.named_parameters()):
        digest.update(name.encode())
        digest.update(param.data.tobytes())
    for user in sorted(strategy.states):
        digest.update(str(user).encode())
        digest.update(np.ascontiguousarray(
            strategy.states[user].interests).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def baseline(tiny_split, tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream-baseline")
    strategy = build(tiny_split)
    result = run_stream(strategy, events=stream_events(tiny_split),
                        config=STREAM_CONFIG, checkpoint_dir=directory / "run")
    return result, state_hash(strategy)


class TestFaultMatrix:
    """Every fault kind: quarantine-and-continue or degrade-and-recover."""

    def run_with(self, tiny_split, tmp_path, plan, name="FT",
                 config=STREAM_CONFIG):
        strategy = build(tiny_split, name)
        with active(plan):
            result = run_stream(strategy, events=stream_events(tiny_split),
                                config=config, checkpoint_dir=tmp_path / "run")
        return result, strategy

    def test_duplicate_is_quarantined_chain_unchanged(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, _ = self.run_with(
            tiny_split, tmp_path, FaultPlan().duplicate_event(10))
        assert result.quarantined == {"duplicate": 1}
        assert result.mode == MODE_HEALTHY
        # the redelivered copy never trains: same trained set, same chain
        assert result.chain == base.chain
        records = read_quarantine(tmp_path / "run" / QUARANTINE_NAME)
        assert [r["reason"] for r in records] == ["duplicate"]

    def test_malformed_is_quarantined_stream_continues(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, _ = self.run_with(
            tiny_split, tmp_path, FaultPlan().malform_event(10, fld="item"))
        assert result.quarantined == {"malformed-item": 1}
        assert result.scored == base.scored - 1
        assert result.events == base.events  # every source event consumed
        assert result.mode == MODE_HEALTHY

    def test_reorder_still_trains_every_event(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, _ = self.run_with(
            tiny_split, tmp_path, FaultPlan().reorder_event(10, delay=3))
        assert result.quarantined == {}
        assert result.scored == base.scored
        assert result.trained == base.trained
        assert result.chain != base.chain  # order is part of the witness
        assert result.mode == MODE_HEALTHY

    def test_io_error_burst_is_retried_with_backoff(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, _ = self.run_with(
            tiny_split, tmp_path, FaultPlan().io_error_burst(first=2, length=2))
        assert result.backoffs >= 2
        assert result.chain == base.chain  # retries are invisible to training
        assert result.mode == MODE_HEALTHY

    def test_io_errors_beyond_retry_budget_propagate(
            self, tiny_split, tmp_path):
        plan = FaultPlan().io_error_burst(first=0, length=50)
        strategy = build(tiny_split)
        with active(plan), pytest.raises(OSError):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=StreamConfig(checkpoint_every=16,
                                           backoff_base=0.0, max_retries=2),
                       checkpoint_dir=tmp_path / "run")

    def test_cold_start_flood_grows_users_and_items(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, strategy = self.run_with(
            tiny_split, tmp_path, FaultPlan().cold_start_flood(10, count=5))
        assert result.users_created == 5
        assert result.items_grown == 5
        assert strategy.model.num_items == tiny_split.num_items + 5
        assert strategy.model.item_emb.weight.data.shape[0] == \
            tiny_split.num_items + 5
        assert result.scored == base.scored + 5
        assert result.mode == MODE_HEALTHY

    def test_poisoned_params_degrade_then_recover(
            self, tiny_split, tmp_path, baseline):
        base, _ = baseline
        result, strategy = self.run_with(
            tiny_split, tmp_path, FaultPlan().poison_params_after_event(40))
        assert result.degraded_spells == 1
        assert result.recoveries == 1
        assert result.mode == MODE_HEALTHY
        # every accepted event still trained exactly once (rolled-back
        # events were requeued and retrained during recovery)
        assert result.trained == base.trained
        # no NaN survived anywhere
        for _, param in strategy.model.named_parameters():
            assert np.isfinite(param.data).all()

    def test_recall_floor_demotes_to_score_only(self, tiny_split, tmp_path):
        config = StreamConfig(checkpoint_every=16, backoff_base=0.0,
                              min_window_recall=1.0, warmup=8,
                              buffer_size=4, max_recovery_attempts=3)
        result, _ = self.run_with(tiny_split, tmp_path, FaultPlan(),
                                  config=config)
        # an unreachable floor forces degrade; recovery retrains cleanly,
        # then the floor re-arms and trips again — spells cycle
        assert result.degraded_spells >= 1
        assert result.recoveries >= 1
        # the bounded ingest buffer overflowed while degraded
        assert result.dropped >= 1
        assert result.scored == N_EVENTS  # scoring never stops


class TestRecoveryExhaustion:
    def test_unrecoverable_queue_is_quarantined(self, tiny_split, tmp_path):
        """When every recovery attempt re-poisons the params, the queue is
        dropped to quarantine (``degraded-dropped``) and the stream
        returns to the last clean commit instead of looping forever."""
        strategy = build(tiny_split)
        config = StreamConfig(checkpoint_every=16, backoff_base=0.0,
                              max_recovery_attempts=2)
        events = stream_events(tiny_split)
        pipeline = _Pipeline(strategy, events, config, tmp_path / "run",
                             False, "tiny", "ComiRec-DR")

        poisoned_train = pipeline._train_one

        def always_poisons(user, item, history):
            took_step = poisoned_train(user, item, history)
            if pipeline.mode == MODE_DEGRADED and took_step:
                strategy.model.item_emb.weight.data[1, 0] = float("nan")  # repro: noqa[RA101] deliberate poisoning to exhaust recovery
            return took_step

        pipeline._train_one = always_poisons
        plan = FaultPlan().poison_params_after_event(20)
        with active(plan):
            result = pipeline.run()

        assert result.degraded_spells >= 1
        assert result.mode == MODE_HEALTHY
        assert "degraded-dropped" in result.quarantined
        records = read_quarantine(tmp_path / "run" / QUARANTINE_NAME)
        assert any(r["reason"] == "degraded-dropped" for r in records)
        for _, param in strategy.model.named_parameters():
            assert np.isfinite(param.data).all()


class TestCrashResume:
    """Crash at any event boundary; resume reproduces the uninterrupted
    run exactly: chain, window metrics, and parameter bytes."""

    def crash_and_resume(self, tiny_split, directory, seq, name="FT"):
        plan = FaultPlan()
        plan.faults.append(Fault(point="stream-event-boundary", kind="crash",
                                 match={"seq": seq}))
        strategy = build(tiny_split, name)
        with active(plan), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=STREAM_CONFIG, checkpoint_dir=directory)
        resumed = build(tiny_split, name)
        result = run_stream(resumed, events=stream_events(tiny_split),
                            config=STREAM_CONFIG, checkpoint_dir=directory,
                            resume=True)
        return result, resumed

    def test_crash_at_every_event_boundary_ft(self, tiny_split, tmp_path,
                                              baseline):
        base, base_hash = baseline
        for seq in range(N_EVENTS):
            directory = tmp_path / f"crash-{seq}"
            result, resumed = self.crash_and_resume(tiny_split, directory, seq)
            assert result.chain == base.chain, f"chain diverged at seq {seq}"
            assert result.window_recall == base.window_recall, \
                f"window recall diverged at seq {seq}"
            assert result.window_ndcg == base.window_ndcg
            assert state_hash(resumed) == base_hash, \
                f"parameters diverged at seq {seq}"

    @pytest.mark.parametrize("name", ["ADER", "EWC", "IMSR"])
    @pytest.mark.parametrize("seq", [0, 13, 27, 59])
    def test_crash_resume_identity_other_strategies(self, tiny_split,
                                                    tmp_path, name, seq):
        events = stream_events(tiny_split)
        straight = build(tiny_split, name)
        base = run_stream(straight, events=events, config=STREAM_CONFIG,
                          checkpoint_dir=tmp_path / "straight")
        base_hash = state_hash(straight)
        result, resumed = self.crash_and_resume(
            tiny_split, tmp_path / "crashed", seq, name=name)
        assert result.chain == base.chain
        assert result.window_recall == base.window_recall
        assert state_hash(resumed) == base_hash

    def test_crash_at_interval_commit_boundary(self, tiny_split, tmp_path,
                                               baseline):
        base, base_hash = baseline
        plan = FaultPlan().crash_at_stream_boundary(2)
        strategy = build(tiny_split)
        with active(plan), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run")
        resumed = build(tiny_split)
        result = run_stream(resumed, events=stream_events(tiny_split),
                            config=STREAM_CONFIG,
                            checkpoint_dir=tmp_path / "run", resume=True)
        assert result.resumed_from == 2
        assert result.chain == base.chain
        assert state_hash(resumed) == base_hash

    def test_corrupt_newest_checkpoint_falls_back_one_interval(
            self, tiny_split, tmp_path, baseline):
        base, base_hash = baseline
        plan = FaultPlan()
        plan.faults.append(Fault(point="stream-event-boundary", kind="crash",
                                 match={"seq": 40}))
        strategy = build(tiny_split)
        with active(plan), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run")
        journal = StreamJournal.load(tmp_path / "run")
        newest = max(journal.intervals)
        flip_one_byte(journal.checkpoint_path(newest))

        resumed = build(tiny_split)
        result = run_stream(resumed, events=stream_events(tiny_split),
                            config=STREAM_CONFIG,
                            checkpoint_dir=tmp_path / "run", resume=True)
        assert result.resumed_from == newest - 1
        assert result.chain == base.chain
        assert result.window_recall == base.window_recall
        assert state_hash(resumed) == base_hash

    def test_corrupt_journal_refuses_resume_loudly(self, tiny_split,
                                                   tmp_path):
        plan = FaultPlan()
        plan.faults.append(Fault(point="stream-event-boundary", kind="crash",
                                 match={"seq": 40}))
        strategy = build(tiny_split)
        with active(plan), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run")
        flip_one_byte(tmp_path / "run" / "stream-journal.json")
        resumed = build(tiny_split)
        with pytest.raises(StreamJournalError):
            run_stream(resumed, events=stream_events(tiny_split),
                       config=STREAM_CONFIG,
                       checkpoint_dir=tmp_path / "run", resume=True)

    def test_fingerprint_mismatch_refuses_resume(self, tiny_split, tmp_path):
        strategy = build(tiny_split)
        run_stream(strategy, events=stream_events(tiny_split)[:20],
                   config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run")
        other = build(tiny_split, "EWC")  # different strategy, same dir
        with pytest.raises(StreamJournalError, match="fingerprint"):
            run_stream(other, events=stream_events(tiny_split)[:20],
                       config=STREAM_CONFIG,
                       checkpoint_dir=tmp_path / "run", resume=True)

    def test_quarantine_survives_crash_without_double_records(
            self, tiny_split, tmp_path):
        """A quarantined event before the crash is recorded once; records
        past the resume offset are truncated and re-created on replay."""
        combined = FaultPlan().malform_event(10, fld="item")
        combined.faults.append(Fault(point="stream-event-boundary",
                                     kind="crash", match={"seq": 40}))
        strategy = build(tiny_split)
        with active(combined), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=stream_events(tiny_split),
                       config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run")
        resumed = build(tiny_split)
        # the malform modifier hit event 10, which is before the resumed
        # offset (32): the record must survive resume exactly once
        run_stream(resumed, events=stream_events(tiny_split),
                   config=STREAM_CONFIG, checkpoint_dir=tmp_path / "run",
                   resume=True)
        records = read_quarantine(tmp_path / "run" / QUARANTINE_NAME)
        assert [r["reason"] for r in records] == ["malformed-item"]

    def test_cold_start_growth_survives_crash_resume(self, tiny_split,
                                                     tmp_path):
        """Items grown mid-stream restore from the checkpoint: a flood
        before the crash, committed, must not perturb the resumed run."""
        events = stream_events(tiny_split)
        flood_plan = FaultPlan().cold_start_flood(10, count=4)
        straight = build(tiny_split)
        with active(flood_plan):
            base = run_stream(straight, events=events, config=STREAM_CONFIG,
                              checkpoint_dir=tmp_path / "straight")
        base_hash = state_hash(straight)

        combined = FaultPlan().cold_start_flood(10, count=4)
        combined.faults.append(Fault(point="stream-event-boundary",
                                     kind="crash", match={"seq": 40}))
        strategy = build(tiny_split)
        with active(combined), pytest.raises(SimulatedCrash):
            run_stream(strategy, events=events, config=STREAM_CONFIG,
                       checkpoint_dir=tmp_path / "crashed")
        resumed = build(tiny_split)
        result = run_stream(resumed, events=events, config=STREAM_CONFIG,
                            checkpoint_dir=tmp_path / "crashed", resume=True)
        assert resumed.model.num_items == tiny_split.num_items + 4
        assert result.chain == base.chain
        assert state_hash(resumed) == base_hash
