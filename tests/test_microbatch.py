"""Micro-batched training engine: equivalence with the per-user path.

``users_per_batch=1`` (the default) must run the untouched historical
loop; the grouped engine must compute the *same* loss and gradients as
accumulating per-user steps (one optimizer step per group is the only
semantic difference), preserve per-user RNG draw order, honor the IMSR
hooks, and compose with journaled crash/resume.
"""

import numpy as np
import pytest

from repro.data import NegativeSampler
from repro.experiments import make_strategy, run_strategy
from repro.faults import FaultPlan, SimulatedCrash, active
from repro.incremental import TrainConfig
from repro.models import (
    ComiRecDR,
    ComiRecSA,
    MIND,
    batched_compute_interests,
    batched_loss_targets,
    supports_batched_training,
)

MODEL_CLASSES = {"MIND": MIND, "ComiRec-DR": ComiRecDR,
                 "ComiRec-SA": ComiRecSA}


def twin_models(name, count=2, **kwargs):
    """Identically-seeded copies: per-user and batched arms must start
    from the same parameters *and* the same RNG stream position."""
    cls = MODEL_CLASSES[name]
    return [cls(80, dim=10, num_interests=3, seed=3, **kwargs)
            for _ in range(count)]


def make_jobs(model, rng, count=5):
    jobs = []
    for user in range(count):
        state = model.init_user_state(user)
        if user % 2 == 0:
            model.expand_user(state, 1 + user % 2, span=1)
        seq = rng.integers(0, model.num_items,
                           size=int(rng.integers(3, 10))).tolist()
        jobs.append((state, seq))
    return jobs


def fast_config(**overrides):
    base = dict(epochs_pretrain=1, epochs_incremental=1,
                num_negatives=4, seed=0)
    return TrainConfig(**{**base, **overrides})


def build(tiny_split, config, model="ComiRec-DR"):
    return make_strategy("IMSR", model, tiny_split, config,
                         model_kwargs={"dim": 10, "num_interests": 2})


class TestDispatch:
    def test_default_config_is_per_user(self):
        assert TrainConfig().users_per_batch == 1
        assert TrainConfig().sparse_adam is False
        assert TrainConfig().batched_snapshots is False

    def test_per_user_mode_never_calls_batched_machinery(self, tiny_split,
                                                         monkeypatch):
        strategy = build(tiny_split, fast_config())

        def boom(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("batched path used with users_per_batch=1")

        monkeypatch.setattr(strategy.sampler, "sample_batch", boom)
        monkeypatch.setattr("repro.models.batched_train."
                            "batched_compute_interests", boom)
        strategy.pretrain()

    def test_supported_families(self):
        assert supports_batched_training(twin_models("MIND", 1)[0])
        assert supports_batched_training(twin_models("ComiRec-SA", 1)[0])
        assert supports_batched_training(twin_models("ComiRec-DR", 1)[0])
        capsules = ComiRecDR(80, dim=10, num_interests=3, seed=3,
                             routing_normalize="capsules")
        assert not supports_batched_training(capsules)

    def test_unsupported_model_falls_back_to_per_user(self, tiny_split,
                                                      monkeypatch):
        config = fast_config(users_per_batch=4)
        strategy = make_strategy(
            "IMSR", "ComiRec-DR", tiny_split, config,
            model_kwargs={"dim": 10, "num_interests": 2,
                          "routing_normalize": "capsules"})

        def boom(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("grouped path used for unsupported model")

        monkeypatch.setattr(strategy.sampler, "sample_batch", boom)
        strategy.pretrain()  # falls back, completes


class TestExtractionEquivalence:
    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_batched_matches_per_user(self, name):
        model_a, model_b = twin_models(name)
        jobs_a = make_jobs(model_a, np.random.default_rng(1))
        jobs_b = make_jobs(model_b, np.random.default_rng(1))
        slow = [model_a.compute_interests(s, seq) for s, seq in jobs_a]
        fast, capsule_mask, ks = batched_compute_interests(model_b, jobs_b)
        assert capsule_mask.shape == fast.data.shape[:2]
        for b, tensor in enumerate(slow):
            assert ks[b] == tensor.data.shape[0]
            assert capsule_mask[b, :ks[b]].all()
            assert not capsule_mask[b, ks[b]:].any()
            assert np.allclose(fast.data[b, :ks[b]], tensor.data,
                               atol=1e-10), (
                f"user {b}: max err "
                f"{np.abs(fast.data[b, :ks[b]] - tensor.data).max()}")


class TestLossEquivalence:
    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_group_loss_and_grads_match_accumulated_per_user(self, name):
        rng = np.random.default_rng(2)
        model_a, model_b = twin_models(name)
        jobs_a = make_jobs(model_a, np.random.default_rng(1))
        jobs_b = make_jobs(model_b, np.random.default_rng(1))
        targets = [rng.integers(0, 80, size=int(rng.integers(1, 4))).tolist()
                   for _ in jobs_a]
        negatives = [np.stack([np.arange(5) + t for t in ts])
                     for ts in targets]

        total = 0.0
        for (state, seq), ts, negs in zip(jobs_a, targets, negatives):
            interests = model_a.compute_interests(state, seq)
            loss = model_a.loss_targets(interests, ts, negs)
            loss.backward()
            total += float(loss.data)

        fast, capsule_mask, _ = batched_compute_interests(model_b, jobs_b)
        group_loss = batched_loss_targets(model_b, fast, capsule_mask,
                                          targets, negatives)
        group_loss.backward()

        assert float(group_loss.data) == pytest.approx(total, rel=1e-8)
        grad_a = model_a.item_emb.weight.grad
        grad_b = model_b.item_emb.weight.grad
        assert np.allclose(grad_a, grad_b, atol=1e-8), (
            f"max grad err {np.abs(grad_a - grad_b).max()}")


class TestEndToEnd:
    @pytest.mark.parametrize("name", sorted(MODEL_CLASSES))
    def test_grouped_imsr_run_completes(self, tiny_split, name):
        config = fast_config(users_per_batch=4)
        result = run_strategy(build(tiny_split, config, name), tiny_split,
                              "tiny", name)
        reference = run_strategy(build(tiny_split, fast_config(), name),
                                 tiny_split, "tiny", name)
        assert np.isfinite(result.hr) and np.isfinite(result.ndcg)
        assert 0.0 <= result.hr <= 1.0
        # same protocol, same cases — only the step granularity differs
        for ours, theirs in zip(result.per_span, reference.per_span):
            assert ours.num_cases == theirs.num_cases

    def test_full_engine_run(self, tiny_split):
        config = fast_config(users_per_batch=4, sparse_adam=True,
                             batched_snapshots=True)
        result = run_strategy(build(tiny_split, config), tiny_split,
                              "tiny", "ComiRec-DR")
        assert np.isfinite(result.hr) and np.isfinite(result.ndcg)

    def test_batched_snapshots_close_to_per_user_refresh(self, tiny_split):
        def pretrained(batched):
            strategy = build(tiny_split,
                             fast_config(batched_snapshots=batched))
            strategy.pretrain()
            return strategy

        loop, batched = pretrained(False), pretrained(True)
        # training is identical (same seeds, same per-user loop); only
        # the final snapshot refresh differs, and only by float noise
        for user, state in loop.states.items():
            other = batched.states[user].interests
            assert other.shape == state.interests.shape
            assert np.allclose(state.interests, other, atol=1e-8)


class TestSampleBatch:
    def test_rows_match_per_target_semantics(self):
        sampler = NegativeSampler(50, num_negatives=8,
                                  rng=np.random.default_rng(0))
        targets = [3, 3, 49, 0]
        batch = sampler.sample_batch(targets)
        assert batch.shape == (4, 8)
        for row, target in zip(batch, targets):
            assert target not in row
            assert ((0 <= row) & (row < 50)).all()

    def test_collision_redraw_terminates(self):
        # two items: every draw has a 50% collision chance per slot
        sampler = NegativeSampler(2, num_negatives=4,
                                  rng=np.random.default_rng(1))
        batch = sampler.sample_batch([0, 1, 0])
        assert (batch[0] == 1).all()
        assert (batch[1] == 0).all()
        assert (batch[2] == 1).all()


class TestCrashResume:
    def test_batched_crash_at_boundary_then_resume(self, tiny_split,
                                                   tmp_path):
        config = fast_config(users_per_batch=4)
        baseline = run_strategy(build(tiny_split, config), tiny_split,
                                "tiny", "ComiRec-DR")
        with active(FaultPlan(seed=2).crash_at_span_boundary(2)):
            with pytest.raises(SimulatedCrash):
                run_strategy(build(tiny_split, config), tiny_split, "tiny",
                             "ComiRec-DR", checkpoint_dir=tmp_path)
        resumed = run_strategy(build(tiny_split, config), tiny_split, "tiny",
                               "ComiRec-DR", checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_spans == [1, 2]
        assert resumed.hr == baseline.hr
        assert resumed.ndcg == baseline.ndcg
        for ours, theirs in zip(resumed.per_span, baseline.per_span):
            assert ours.hr == theirs.hr
            assert ours.ndcg == theirs.ndcg
