"""The RA5xx static shape pass: detection power and soundness.

Detection: transposed matmuls, broadcast slips, call-site contradictions,
dtype downcasts — including a mutated copy of the *real* PIT source, so
the canonical IMSR failure mode is provably caught at lint time.

Soundness: anything the propagator cannot follow (branches, loops, fancy
indexing, unannotated callees) must degrade to unknown, never to a false
positive — the whole src/ tree being lint-clean is the standing proof,
and the cases here pin the tricky corners.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

REPO_ROOT = Path(__file__).resolve().parents[1]

HEADER = "from repro.contracts import shape_contract\n"


def findings_for(body, select=None):
    return analyze_source(HEADER + body, Path("snippet.py"), select=select)


def rule_ids(body):
    return {f.rule for f in findings_for(body)}


class TestRA501InBody:
    def test_transposed_matmul_operand(self):
        assert "RA501" in rule_ids('''
@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests
''')

    def test_correct_transpose_is_clean(self):
        assert rule_ids('''
@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests.T
''') == set()

    def test_broadcast_contradiction(self):
        assert "RA501" in rule_ids('''
@shape_contract("(N, K) f, (N, D) f -> (N, K) f")
def slip(scores, feats):
    return scores + feats
''')

    def test_reduce_then_broadcast_slip(self):
        # summing over the wrong axis yields (N,) where (K,) is declared
        assert "RA501" in rule_ids('''
@shape_contract("(N, K) f -> (K) f")
def column_totals(scores):
    return scores.sum(axis=1)
''')
        assert rule_ids('''
@shape_contract("(N, K) f -> (K) f")
def column_totals(scores):
    return scores.sum(axis=0)
''') == set()

    def test_return_ndim_mismatch(self):
        assert "RA501" in rule_ids('''
@shape_contract("(N, D) f -> () f")
def mean_all(x):
    return x.mean(axis=0)
''')

    def test_return_tuple_arity_mismatch(self):
        assert "RA501" in rule_ids('''
@shape_contract("(N, D) f -> (N) f, (D) f, () f")
def stats(x):
    return x.sum(axis=1), x.sum(axis=0)
''')


class TestRA502Specs:
    def test_parse_error(self):
        assert "RA502" in rule_ids('''
@shape_contract("(N, D f -> (N)")
def broken(x):
    return x
''')

    def test_arity_overflow(self):
        assert "RA502" in rule_ids('''
@shape_contract("(N) f, (M) f -> ()")
def unary(x):
    return x.sum()
''')

    def test_self_is_skipped_in_arity(self):
        assert rule_ids('''
class Layer:
    @shape_contract("(N, D) f -> (N, D) f")
    def forward(self, x):
        return x * 2.0
''') == set()


class TestRA503CallSites:
    def test_local_callee_contradiction(self):
        assert "RA503" in rule_ids('''
@shape_contract("(N, D) f, (N, D) f -> (N) f")
def row_dots(a, b):
    return (a * b).sum(axis=1)

@shape_contract("(B, D) f, (T, D) f -> () f")
def caller(queries, keys):
    return row_dots(queries, keys).mean()
''')

    def test_external_contract_contradiction(self):
        # np.outer is registered as "(N) any, (M) any -> (N, M) any"
        assert "RA503" in rule_ids('''
@shape_contract("(N, D) f, (M) f -> (N, M) f")
def cross(matrix, vec):
    return np.outer(matrix, vec)
''')

    def test_callee_outputs_feed_the_caller(self):
        # the (D, D) projector output makes the downstream mismatch provable
        assert "RA501" in rule_ids('''
@shape_contract("(K, D) f -> (D, D) f")
def projector(existing):
    return existing.T @ existing

@shape_contract("(N, D) f, (K, D) f -> (N, D) f")
def residual(new, existing):
    proj = projector(existing)
    return new - proj @ new
''')


class TestRA504Dtypes:
    def test_downcast_on_return(self):
        assert "RA504" in rule_ids('''
@shape_contract("(N) f -> (N) f64")
def quantize(x):
    return x.astype("float32")
''')

    def test_family_only_declaration_accepts_any_width(self):
        assert rule_ids('''
@shape_contract("(N) f -> (N) f")
def quantize(x):
    return x.astype("float32")
''') == set()


class TestSoundness:
    def test_branches_invalidate_bindings(self):
        # x is reassigned inside an if: its shape must become unknown,
        # so the (would-be) mismatch cannot be proven
        assert rule_ids('''
@shape_contract("(N, D) f -> (N, D) f")
def maybe(x, flag=False):
    if flag:
        x = x.sum(axis=0)
    return x
''') == set()

    def test_unannotated_callees_are_opaque(self):
        assert rule_ids('''
def helper(x):
    return x.sum(axis=0)

@shape_contract("(N, D) f -> (N, D) f")
def wrapper(x):
    return helper(x)
''') == set()

    def test_fancy_indexing_is_opaque(self):
        assert rule_ids('''
@shape_contract("(N, D) f, (M) i -> (M, D) f")
def gather(x, idx):
    return x[idx]
''') == set()

    def test_output_only_symbols_bind_freely(self):
        assert rule_ids('''
@shape_contract("(N, D) f -> (R, D) f")
def dedupe(x):
    return x[::2]
''') == set()

    def test_undecorated_functions_are_ignored(self):
        assert rule_ids('''
def free(a, b):
    return a @ b
''') == set()


class TestRealPITMutant:
    """The acceptance-criteria case: transposing an axis in the *actual*
    PIT projection is caught statically."""

    SOURCE = (REPO_ROOT / "src/repro/incremental/imsr/pit.py").read_text()

    def assert_mutant_caught(self, original, mutant):
        assert original in self.SOURCE, "pit.py changed; update this test"
        mutated = self.SOURCE.replace(original, mutant)
        findings = analyze_source(mutated, Path("pit_mutant.py"))
        assert any(f.rule == "RA501" for f in findings), (
            original, mutant)

    def test_pristine_pit_is_clean(self):
        findings = analyze_source(self.SOURCE, Path("pit.py"))
        assert [f.rule for f in findings] == []

    def test_transposed_projection_caught(self):
        self.assert_mutant_caught(
            "return new - new @ proj.T",
            "return new - proj @ new",
        )

    def test_swapped_residual_orientation_caught(self):
        self.assert_mutant_caught(
            "return new - new @ proj.T",
            "return new - (new @ proj).T",
        )


class TestNoqaAndEngineIntegration:
    def test_noqa_suppresses_ra501(self):
        body = '''
@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests  # repro: noqa[RA501]
'''
        assert rule_ids(body) == set()

    def test_select_restricts_to_shape_rules(self):
        findings = findings_for('''
@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests
''', select=["RA501"])
        assert {f.rule for f in findings} == {"RA501"}
