"""Tier-1 gate: the whole repository must pass the full rule set.

This is the enforcement point for the autograd-contract linter — a new
finding in ``src/``, ``tests/``, or ``benchmarks/`` fails the suite until
it is fixed or explicitly justified (inline ``# repro: noqa[RULE]`` or a
baseline entry).  ``tests/analysis_fixtures/`` is excluded: those files
violate the rules on purpose.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, discover_baseline, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
GATED_TREES = [SRC, REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
EXCLUDE = ["analysis_fixtures"]


def run_gate(paths=None):
    paths = paths if paths is not None else GATED_TREES
    baseline_path = discover_baseline([SRC])
    baseline = Baseline.load(baseline_path) if baseline_path else None
    return analyze_paths([str(p) for p in paths], baseline=baseline,
                         exclude=EXCLUDE)


def test_gated_trees_are_clean():
    report = run_gate()
    assert report.exit_code == 0, "\n" + render_text(report)
    assert report.parse_errors == []


def test_src_tree_is_clean_without_baseline():
    # the baseline only grandfathers test/benchmark findings; production
    # code must be clean outright
    report = analyze_paths([str(SRC)])
    assert report.exit_code == 0, "\n" + render_text(report)


def test_gate_actually_scans_the_package():
    report = run_gate()
    assert report.files_scanned >= 100  # src ~77 modules + tests + benchmarks
    assert len(set(report.rules_run)) >= 12  # RA1xx-RA4xx plus RA5xx


def test_gate_skips_the_deliberately_bad_fixtures():
    report = run_gate()
    fixture_dir = "analysis_fixtures"
    assert all(fixture_dir not in f.path for f in report.all_raw_findings)


def test_baseline_has_no_stale_entries():
    report = run_gate()
    assert report.stale_baseline == [], (
        "baseline entries no longer match any finding — remove them: "
        + ", ".join(e.fingerprint for e in report.stale_baseline))
