"""Tier-1 gate: the production tree must pass the full rule set.

This is the enforcement point for the autograd-contract linter — a new
finding in ``src/`` fails the suite until it is fixed or explicitly
justified (inline ``# repro: noqa[RULE]`` or a baseline entry).
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, discover_baseline, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_gate():
    baseline_path = discover_baseline([SRC])
    baseline = Baseline.load(baseline_path) if baseline_path else None
    return analyze_paths([str(SRC)], baseline=baseline)


def test_src_tree_is_clean():
    report = run_gate()
    assert report.exit_code == 0, "\n" + render_text(report)
    assert report.parse_errors == []


def test_gate_actually_scans_the_package():
    report = run_gate()
    assert report.files_scanned >= 50  # the repro package is ~77 modules
    assert len(set(report.rules_run)) >= 8


def test_baseline_has_no_stale_entries():
    report = run_gate()
    assert report.stale_baseline == [], (
        "baseline entries no longer match any finding — remove them: "
        + ", ".join(e.fingerprint for e in report.stale_baseline))
