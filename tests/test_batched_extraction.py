"""Equivalence and behavior tests for the batched inference fast path."""

import numpy as np
import pytest

from repro.models import ComiRecDR, ComiRecSA, MIND
from repro.models.batched import batched_extract_dr, batched_snapshot_refresh


@pytest.fixture()
def model(tiny_split):
    return ComiRecDR(tiny_split.num_items, dim=12, num_interests=3, seed=0)


def make_jobs(model, rng, count=6, expand_some=True):
    jobs = []
    for i in range(count):
        state = model.init_user_state(i)
        if expand_some and i % 2 == 0:
            model.expand_user(state, 1 + i % 3, span=1)
        length = int(rng.integers(2, 12))
        seq = rng.integers(0, model.num_items, size=length).tolist()
        jobs.append((state, seq))
    return jobs


class TestEquivalence:
    def test_matches_per_user_extraction(self, model, rng):
        jobs = make_jobs(model, rng)
        batched = batched_extract_dr(model, jobs)
        for (state, seq), fast in zip(jobs, batched):
            slow = model.compute_interests(state, seq).data
            assert fast.shape == slow.shape
            assert np.allclose(fast, slow, atol=1e-10), (
                f"user {state.user}: max err {np.abs(fast - slow).max()}"
            )

    def test_variable_interest_counts(self, model, rng):
        jobs = make_jobs(model, rng, expand_some=True)
        shapes = {b[0].num_interests for b in jobs}
        assert len(shapes) > 1  # the batch really is ragged
        batched = batched_extract_dr(model, jobs)
        for (state, _), fast in zip(jobs, batched):
            assert fast.shape == (state.num_interests, model.dim)

    def test_single_job_batch(self, model, rng):
        jobs = make_jobs(model, rng, count=1)
        fast = batched_extract_dr(model, jobs)[0]
        slow = model.compute_interests(jobs[0][0], jobs[0][1]).data
        assert np.allclose(fast, slow, atol=1e-10)

    def test_iterations_override(self, model, rng):
        jobs = make_jobs(model, rng, count=2)
        one = batched_extract_dr(model, jobs, iterations=1)
        three = batched_extract_dr(model, jobs, iterations=3)
        assert not np.allclose(one[0], three[0])


class TestValidation:
    def test_rejects_non_dr_models(self, tiny_split, rng):
        sa = ComiRecSA(tiny_split.num_items, dim=12, num_interests=3, seed=0)
        state = sa.init_user_state(0)
        with pytest.raises(TypeError):
            batched_extract_dr(sa, [(state, [1, 2])])
        mind = MIND(tiny_split.num_items, dim=12, num_interests=3, seed=0)
        with pytest.raises(TypeError):
            batched_extract_dr(mind, [(mind.init_user_state(0), [1, 2])])

    def test_rejects_capsule_normalization(self, tiny_split):
        model = ComiRecDR(tiny_split.num_items, dim=12, num_interests=3,
                          seed=0, routing_normalize="capsules")
        state = model.init_user_state(0)
        with pytest.raises(ValueError):
            batched_extract_dr(model, [(state, [1, 2])])

    def test_rejects_empty_sequence(self, model):
        state = model.init_user_state(0)
        with pytest.raises(ValueError):
            batched_extract_dr(model, [(state, [])])

    def test_empty_batch(self, model):
        assert batched_extract_dr(model, []) == []


class TestSnapshotRefresh:
    def test_matches_per_user_snapshot(self, model, rng):
        jobs = make_jobs(model, rng)
        reference = []
        for state, seq in jobs:
            clone = model.init_user_state(state.user)
            clone.interests = state.interests.copy()
            clone.created_span = state.created_span.copy()
            model.snapshot_interests(clone, seq)
            reference.append(clone.interests)
        batched_snapshot_refresh(model, jobs)
        for (state, _), expected in zip(jobs, reference):
            assert np.allclose(state.interests, expected, atol=1e-10)

    def test_skips_empty_sequences(self, model, rng):
        state = model.init_user_state(0)
        before = state.interests.copy()
        batched_snapshot_refresh(model, [(state, [])])
        assert np.allclose(state.interests, before)
