"""Unit tests for B2I dynamic routing and the interest aggregator."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import aggregate_interests, attention_scores, b2i_routing, score_items
from repro.models.routing import _softmax_over_items, squash_np


class TestSquashNp:
    def test_matches_tensor_squash(self, rng):
        from repro.autograd.ops import squash
        x = rng.normal(size=(5, 8))
        assert np.allclose(squash_np(x), squash(Tensor(x)).data)

    def test_norms_below_one(self, rng):
        x = rng.normal(size=(4, 6)) * 20
        assert (np.linalg.norm(squash_np(x), axis=1) < 1.0).all()


class TestRouting:
    def test_output_shape(self, rng):
        e_hat = Tensor(rng.normal(size=(10, 8)))
        init = rng.normal(size=(3, 8))
        out = b2i_routing(e_hat, init, iterations=3)
        assert out.shape == (3, 8)

    def test_capsule_norms_below_one(self, rng):
        e_hat = Tensor(rng.normal(size=(10, 8)))
        out = b2i_routing(e_hat, rng.normal(size=(4, 8)), iterations=2)
        assert (np.linalg.norm(out.data, axis=1) < 1.0).all()

    def test_warm_start_alignment(self, rng):
        """Capsules initialized near an item cluster should absorb it."""
        # two well-separated item clusters
        c1, c2 = np.zeros(8), np.zeros(8)
        c1[0], c2[1] = 5.0, 5.0
        items = np.vstack([
            c1 + 0.1 * rng.normal(size=(6, 8)),
            c2 + 0.1 * rng.normal(size=(6, 8)),
        ])
        init = np.vstack([c1, c2]) * 0.2
        out = b2i_routing(Tensor(items), init, iterations=3).data
        # capsule 0 should stay aligned with cluster 1, capsule 1 with cluster 2
        assert out[0] @ c1 > out[0] @ c2
        assert out[1] @ c2 > out[1] @ c1

    def test_gradient_reaches_e_hat(self, rng):
        e_hat = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        out = b2i_routing(e_hat, rng.normal(size=(2, 4)), iterations=2)
        out.sum().backward()
        assert e_hat.grad is not None
        assert np.abs(e_hat.grad).sum() > 0

    def test_init_logits_change_result(self, rng):
        e_hat = Tensor(rng.normal(size=(6, 4)))
        init = rng.normal(size=(2, 4))
        a = b2i_routing(e_hat, init, iterations=2).data
        b = b2i_routing(e_hat, init, iterations=2,
                        init_logits=rng.normal(size=(6, 2)) * 3).data
        assert not np.allclose(a, b)

    def test_single_iteration_allowed(self, rng):
        out = b2i_routing(Tensor(rng.normal(size=(4, 4))),
                          rng.normal(size=(2, 4)), iterations=1)
        assert out.shape == (2, 4)

    @pytest.mark.parametrize("bad_iterations", [0, -1])
    def test_bad_iterations_rejected(self, rng, bad_iterations):
        with pytest.raises(ValueError):
            b2i_routing(Tensor(rng.normal(size=(4, 4))),
                        rng.normal(size=(2, 4)), iterations=bad_iterations)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            b2i_routing(Tensor(rng.normal(size=(4, 4))),
                        rng.normal(size=(2, 5)))

    def test_1d_e_hat_rejected(self, rng):
        with pytest.raises(ValueError):
            b2i_routing(Tensor(rng.normal(size=(4,))), rng.normal(size=(2, 4)))

    def test_softmax_over_items_columns_sum_to_one(self, rng):
        logits = rng.normal(size=(7, 3))
        out = _softmax_over_items(logits)
        assert np.allclose(out.sum(axis=0), 1.0)


class TestAggregator:
    def test_eq5_matches_manual(self, rng):
        interests = rng.normal(size=(3, 4))
        target = rng.normal(size=4)
        logits = interests @ target
        beta = np.exp(logits - logits.max())
        beta /= beta.sum()
        expected = beta @ interests
        out = aggregate_interests(Tensor(interests), Tensor(target))
        assert np.allclose(out.data, expected)

    def test_aggregation_is_convex_combination(self, rng):
        interests = rng.normal(size=(4, 6))
        target = rng.normal(size=6)
        v = aggregate_interests(Tensor(interests), Tensor(target)).data
        # v must lie in the convex hull: its projection on each axis is
        # bounded by the min/max over interests
        assert (v <= interests.max(axis=0) + 1e-12).all()
        assert (v >= interests.min(axis=0) - 1e-12).all()

    def test_dominant_interest_wins(self):
        interests = np.array([[10.0, 0.0], [0.0, 10.0]])
        target = np.array([1.0, 0.0])
        v = aggregate_interests(Tensor(interests), Tensor(target)).data
        assert v[0] > v[1]

    def test_attention_scores_sum_to_one(self, rng):
        att = attention_scores(rng.normal(size=(5, 3)), rng.normal(size=3))
        assert att.shape == (5,)
        assert np.isclose(att.sum(), 1.0)

    def test_score_items_max_over_interests(self, rng):
        interests = rng.normal(size=(3, 4))
        items = rng.normal(size=(10, 4))
        scores = score_items(interests, items)
        assert np.allclose(scores, (items @ interests.T).max(axis=1))

    def test_score_items_empty_interests(self, rng):
        scores = score_items(np.zeros((0, 4)), rng.normal(size=(5, 4)))
        assert np.allclose(scores, 0.0)

    def test_more_interests_never_lower_scores(self, rng):
        """Adding an interest can only raise max-over-interests scores —
        the retrieval-side rationale for interest expansion."""
        interests = rng.normal(size=(3, 4))
        extra = np.vstack([interests, rng.normal(size=(1, 4))])
        items = rng.normal(size=(20, 4))
        assert (score_items(extra, items) >= score_items(interests, items) - 1e-12).all()
