"""Tests for the trace tooling: percentiles, diffs, flamegraphs, and the
perf-regression gate in benchmarks/summarize.py."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import run_strategy
from repro.obs import (
    build_span_tree,
    collapsed_stacks,
    critical_path,
    diff_traces,
    read_trace,
    render_critical_path,
    render_diff,
    render_summary,
    speedscope_profile,
    summarize_trace,
)

from tests.test_crash_resume import build, fast_config


def load_summarize():
    """Import benchmarks/summarize.py (a script, not a package) by path."""
    path = Path(__file__).resolve().parent.parent / "benchmarks" / \
        "summarize.py"
    spec = importlib.util.spec_from_file_location("bench_summarize", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def summarize():
    return load_summarize()


@pytest.fixture(scope="module")
def traced_pair(tiny_split, tmp_path_factory):
    """Two profiled traced runs of the same seeded strategy."""
    root = tmp_path_factory.mktemp("traces")
    for sub in ("a", "b"):
        run_strategy(build(tiny_split, config=fast_config()), tiny_split,
                     "tiny", "ComiRec-DR", trace_dir=root / sub,
                     profile=True)
    return root / "a", root / "b"


# ---------------------------------------------------------------------- #
# percentile rendering
# ---------------------------------------------------------------------- #
class TestPercentileRendering:
    def test_summary_rows_carry_p50_p95_p99(self, traced_pair):
        summary = summarize_trace(traced_pair[0])
        text = render_summary(summary)
        # every histogram with data renders its percentile cells
        assert "p50=" in text and "p95=" in text and "p99=" in text

    def test_percentiles_respect_observed_range(self, traced_pair):
        from repro.obs.metrics import quantile_from_snapshot
        summary = summarize_trace(traced_pair[0])
        hists = [state for state in summary["metrics"].values()
                 if state.get("type") == "histogram" and state.get("count")]
        assert hists
        for state in hists:
            p50 = quantile_from_snapshot(state, 0.50)
            p99 = quantile_from_snapshot(state, 0.99)
            assert state["min"] <= p50 <= p99 <= state["max"]


# ---------------------------------------------------------------------- #
# trace diff
# ---------------------------------------------------------------------- #
class TestTraceDiff:
    def test_identical_decisions_match_fingerprints(self, traced_pair):
        diff = diff_traces(*traced_pair)
        assert diff["fingerprints_match"]
        assert diff["counters"] == {}  # same decisions -> same counts
        assert set(diff["spans"])  # spans still compared for timing

    def test_diff_detects_changed_runs(self, tiny_split, traced_pair,
                                       tmp_path):
        run_strategy(
            build(tiny_split, config=fast_config(epochs_incremental=2)),
            tiny_split, "tiny", "ComiRec-DR", trace_dir=tmp_path,
            profile=True)
        diff = diff_traces(traced_pair[0], tmp_path)
        assert not diff["fingerprints_match"]
        assert diff["counters"]  # train.steps etc. moved
        text = render_diff(diff)
        assert "fingerprints DIFFER" in text
        assert "metrics (changed only):" in text

    def test_render_diff_marks_matching_runs_as_timing_only(
            self, traced_pair):
        text = render_diff(diff_traces(*traced_pair))
        assert "fingerprints match" in text
        assert "timing only" in text


# ---------------------------------------------------------------------- #
# flamegraphs / critical path
# ---------------------------------------------------------------------- #
class TestFlame:
    def test_span_tree_reassembles_the_run(self, traced_pair):
        events, _ = read_trace(traced_pair[0])
        roots = build_span_tree(events)
        assert roots
        names = {root["name"] for root in roots}
        assert "run" in names
        run = next(r for r in roots if r["name"] == "run")
        assert run["dur_s"] > 0 and run["children"]

    def test_collapsed_stacks_are_wellformed(self, traced_pair):
        events, _ = read_trace(traced_pair[0])
        lines = collapsed_stacks(events)
        assert lines == sorted(lines)
        for line in lines:
            stack, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert stack.split(";")[0] == "run"
        # op leaves appear under their span path
        assert any("fwd." in line for line in lines)

    def test_critical_path_descends_the_heaviest_chain(self, traced_pair):
        events, _ = read_trace(traced_pair[0])
        segments = critical_path(events)
        assert segments and segments[0]["name"] == "run"
        durs = [seg["dur_s"] for seg in segments]
        assert durs == sorted(durs, reverse=True)  # children nest inside
        text = render_critical_path(segments)
        assert text.startswith("critical path")
        assert render_critical_path([]) == "critical path: (no spans)"

    def test_speedscope_document_is_balanced(self, traced_pair):
        events, _ = read_trace(traced_pair[0])
        doc = speedscope_profile(events)
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        depth = 0
        last_at = 0.0
        for evt in profile["events"]:
            assert evt["at"] >= last_at - 1e-12  # monotone timeline
            last_at = evt["at"]
            depth += 1 if evt["type"] == "O" else -1
            assert depth >= 0
        assert depth == 0  # every open frame closes
        assert profile["endValue"] >= profile["startValue"]
        json.dumps(doc)  # serializable as-is

    def test_unclosed_spans_are_tolerated(self):
        events = [
            {"kind": "span_start", "id": 1, "name": "run", "wall": 0.0},
            {"kind": "span_start", "id": 2, "name": "train_span",
             "parent": 1, "wall": 0.1},
            {"kind": "span_end", "id": 2, "dur_s": 0.5},
            # id 1 never closes: a crashed run
        ]
        roots = build_span_tree(events)
        assert roots[0]["dur_s"] == pytest.approx(0.5)
        assert critical_path(events)[0]["name"] == "run"


# ---------------------------------------------------------------------- #
# perf-regression gate (benchmarks/summarize.py --regress)
# ---------------------------------------------------------------------- #
def perf_report(train=0.100, extract=0.020, evals=0.010, speedup=3.0):
    return {
        "tool": "repro.perf",
        "scales": {
            "large": {
                "train": {"batched_s": train, "speedup": speedup},
                "extract": {"batched_s": extract, "speedup": speedup},
                "eval": {"batched_s": evals, "speedup": speedup},
            },
        },
    }


def history_lines(summarize, n=3, **kwargs):
    return [{"probe": "repro.perf",
             "metrics": summarize.flatten_perf_metrics(perf_report(**kwargs))}
            for _ in range(n)]


class TestFlattenPerfMetrics:
    def test_flattens_layer_times_and_speedups(self, summarize):
        metrics = summarize.flatten_perf_metrics(perf_report())
        assert metrics["large.train_s"] == pytest.approx(0.100)
        assert metrics["large.train_speedup"] == pytest.approx(3.0)
        assert all(isinstance(v, float) for v in metrics.values())

    def test_rejects_foreign_reports(self, summarize):
        with pytest.raises(ValueError, match="not a perf report"):
            summarize.flatten_perf_metrics({"tool": "repro.obs"})


class TestRegressionCheck:
    def test_clean_rerun_passes(self, summarize):
        history = history_lines(summarize)
        current = summarize.flatten_perf_metrics(perf_report())
        rows, failures = summarize.regression_check(current, history)
        assert failures == []
        assert rows  # every metric produced a gated row

    def test_injected_20pct_slowdown_fails(self, summarize):
        history = history_lines(summarize)
        slow = summarize.flatten_perf_metrics(perf_report(
            train=0.120, extract=0.024, evals=0.012))
        rows, failures = summarize.regression_check(slow, history)
        failed = {row["metric"] for row in failures}
        assert {"large.train_s", "large.extract_s",
                "large.eval_s"} <= failed

    def test_speedup_collapse_fails(self, summarize):
        history = history_lines(summarize)
        collapsed = summarize.flatten_perf_metrics(
            perf_report(speedup=1.0))
        _, failures = summarize.regression_check(collapsed, history)
        assert any(row["metric"].endswith("_speedup") for row in failures)

    def test_short_history_is_skipped_not_failed(self, summarize):
        history = history_lines(summarize, n=summarize.MIN_HISTORY - 1)
        slow = summarize.flatten_perf_metrics(perf_report(train=1.0))
        rows, failures = summarize.regression_check(slow, history)
        assert failures == []
        assert all(row["status"].startswith("skipped") for row in rows)

    def test_slack_widens_the_threshold(self, summarize):
        history = history_lines(summarize)
        mild = summarize.flatten_perf_metrics(perf_report(train=0.118))
        _, tight = summarize.regression_check(mild, history, slack=1.0)
        _, loose = summarize.regression_check(mild, history, slack=2.5)
        assert any(row["metric"] == "large.train_s" for row in tight)
        assert not any(row["metric"] == "large.train_s" for row in loose)

    def test_noisy_history_widens_up_to_the_ceiling(self, summarize):
        # alternating fast/slow history -> large MAD -> threshold at ceil
        noisy = []
        for value in (0.080, 0.120, 0.080, 0.120):
            noisy.extend(history_lines(summarize, n=1, train=value))
        current = summarize.flatten_perf_metrics(perf_report(train=0.115))
        rows, failures = summarize.regression_check(current, noisy)
        assert not any(row["metric"] == "large.train_s" for row in failures)
        # the ceiling still catches a 2x collapse
        bad = summarize.flatten_perf_metrics(perf_report(train=0.200))
        _, failures = summarize.regression_check(bad, noisy)
        assert any(row["metric"] == "large.train_s" for row in failures)


class TestRegressionCli:
    def write(self, path, payload):
        path.write_text(json.dumps(payload) + "\n")
        return path

    def write_history(self, summarize, path, n=3):
        lines = [json.dumps(entry) for entry in history_lines(summarize, n)]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_exit_codes(self, summarize, tmp_path, capsys):
        history = self.write_history(summarize, tmp_path / "hist.jsonl")
        clean = self.write(tmp_path / "clean.json", perf_report())
        slow = self.write(tmp_path / "slow.json",
                          perf_report(train=0.120, extract=0.024,
                                      evals=0.012))
        assert summarize.main([
            "summarize.py", "--regress", str(clean),
            "--history", str(history)]) == 0
        assert "no regressions" in capsys.readouterr().out
        assert summarize.main([
            "summarize.py", "--regress", str(slow),
            "--history", str(history)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_torn_history_lines_are_skipped(self, summarize, tmp_path):
        history = tmp_path / "hist.jsonl"
        lines = [json.dumps(entry)
                 for entry in history_lines(summarize, n=3)]
        lines.insert(1, '{"torn": ')  # crash mid-write
        history.write_text("\n".join(lines) + "\n")
        assert len(summarize.read_history(history)) == 3

    def test_missing_history_is_an_input_error(self, summarize, tmp_path):
        clean = self.write(tmp_path / "clean.json", perf_report())
        assert summarize.main([
            "summarize.py", "--regress", str(clean),
            "--history", str(tmp_path / "absent.jsonl")]) == 2
