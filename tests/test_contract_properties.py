"""Property tests tying the two enforcement layers together.

For a seeded generator of random shape assignments:

* every *consistent* assignment must be accepted at runtime on the real
  annotated functions (the static pass already accepts them — src/ is
  lint-clean, which the gate test enforces);
* every *mutant* assignment (one symbolic dim perturbed) must be rejected
  at runtime;
* for function bodies where the mutation is a code transposition rather
  than a data perturbation, the static verdict and the runtime verdict
  must agree on the same snippet.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis import analyze_source
from repro.contracts import ContractViolation, enforced
from repro.eval.metrics import rank_of_target
from repro.incremental.imsr.eir import sigmoid_distillation_loss
from repro.incremental.imsr.nid import kl_from_uniform, puzzlement
from repro.incremental.imsr.pit import orthogonal_residual, projection_matrix
from repro.models.aggregator import attention_scores, score_items
from repro.autograd import Tensor
from repro.autograd.ops import dot_rows

RNG = np.random.default_rng(20230806)
TRIALS = 20


def dims(*names):
    return {name: int(RNG.integers(1, 9)) for name in names}


# (function, builder) — builder maps a symbol assignment to call args.
# Every entry is one annotated function exercised with random dims.
CASES = [
    ("kl_from_uniform", lambda s: (
        kl_from_uniform, (RNG.normal(size=(s["N"], s["D"])),
                          RNG.normal(size=(s["K"], s["D"]))))),
    ("puzzlement", lambda s: (
        puzzlement, (RNG.normal(size=(s["N"], s["D"])),
                     RNG.normal(size=(s["K"], s["D"]))))),
    ("orthogonal_residual", lambda s: (
        orthogonal_residual, (RNG.normal(size=(s["N"], s["D"])),
                              RNG.normal(size=(s["K"], s["D"]))))),
    ("projection_matrix", lambda s: (
        projection_matrix, (RNG.normal(size=(s["K"], s["D"])),))),
    ("score_items", lambda s: (
        score_items, (RNG.normal(size=(s["K"], s["D"])),
                      RNG.normal(size=(s["N"], s["D"]))))),
    ("attention_scores", lambda s: (
        attention_scores, (RNG.normal(size=(s["K"], s["D"])),
                           RNG.normal(size=s["D"])))),
    ("dot_rows", lambda s: (
        dot_rows, (Tensor(RNG.normal(size=(s["N"], s["D"]))),
                   Tensor(RNG.normal(size=(s["N"], s["D"])))))),
    ("sigmoid_distillation_loss", lambda s: (
        sigmoid_distillation_loss,
        (Tensor(RNG.normal(size=(s["K"] + 1, s["D"]))),
         RNG.normal(size=(s["K"], s["D"])),
         Tensor(RNG.normal(size=(s["N"], s["D"])))))),
]


@pytest.mark.parametrize("name,builder", CASES, ids=[c[0] for c in CASES])
def test_consistent_random_shapes_accepted(name, builder):
    with enforced(True):
        for _ in range(TRIALS):
            fn, args = builder(dims("N", "K", "D"))
            fn(*args)  # must not raise


MUTANTS = [
    ("kl_from_uniform", lambda s: (
        kl_from_uniform, (RNG.normal(size=(s["N"], s["D"])),
                          RNG.normal(size=(s["K"], s["D"] + 1))))),
    ("puzzlement_1d_items", lambda s: (
        puzzlement, (RNG.normal(size=s["D"]),
                     RNG.normal(size=(s["K"], s["D"]))))),
    ("orthogonal_residual", lambda s: (
        orthogonal_residual, (RNG.normal(size=(s["N"], s["D"])),
                              RNG.normal(size=(s["K"], s["D"] + 1))))),
    ("score_items_wrong_item_dim", lambda s: (
        score_items, (RNG.normal(size=(s["K"], s["D"])),
                      RNG.normal(size=(s["N"], s["D"] + 1))))),
    ("attention_scores_matrix_query", lambda s: (
        attention_scores, (RNG.normal(size=(s["K"], s["D"])),
                           RNG.normal(size=(s["D"], 1))))),
    ("dot_rows_row_mismatch", lambda s: (
        dot_rows, (Tensor(RNG.normal(size=(s["N"], s["D"]))),
                   Tensor(RNG.normal(size=(s["N"] + 1, s["D"])))))),
    ("rank_of_target_2d_scores", lambda s: (
        rank_of_target, (RNG.normal(size=(s["N"], 1)), 0))),
]


@pytest.mark.parametrize("name,builder", MUTANTS, ids=[m[0] for m in MUTANTS])
def test_mutant_shapes_rejected(name, builder):
    with enforced(True):
        for _ in range(TRIALS):
            fn, args = builder(dims("N", "K", "D"))
            with pytest.raises(ContractViolation):
                fn(*args)


# ---- static/runtime agreement on the same snippet -------------------- #

SNIPPET = '''
from repro.contracts import shape_contract

@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests{transpose}
'''


@pytest.mark.parametrize("transpose,expect_bad", [(".T", False), ("", True)])
def test_static_and_runtime_verdicts_agree(transpose, expect_bad):
    source = SNIPPET.format(transpose=transpose)
    static_bad = any(
        f.rule == "RA501"
        for f in analyze_source(source, Path("agreement.py")))
    assert static_bad == expect_bad

    namespace = {}
    exec(compile(source, "agreement.py", "exec"), namespace)
    fn = namespace["affinity"]
    with enforced(True):
        for _ in range(TRIALS):
            s = dims("N", "K", "D")
            if expect_bad and s["K"] == s["D"]:
                # with K == D the transposition is shape-invisible (to
                # numpy AND to any shape checker) — not a fair mutant
                s["K"] += 1
            items = RNG.normal(size=(s["N"], s["D"]))
            interests = RNG.normal(size=(s["K"], s["D"]))
            if expect_bad:
                # the un-transposed body trips numpy's own matmul check
                with pytest.raises(ValueError):
                    fn(items, interests)
            else:
                assert fn(items, interests).shape == (s["N"], s["K"])
