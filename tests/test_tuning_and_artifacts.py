"""Tests for grid search and artifact export."""

import json

import numpy as np
import pytest

from repro.experiments import make_strategy
from repro.experiments.artifacts import export_result, load_artifact
from repro.experiments.tuning import GridSearchResult, TrialResult, grid_search, validation_score
from repro.incremental import TrainConfig


@pytest.fixture()
def fast_config():
    return TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                       num_negatives=4, seed=0)


class TestGridSearch:
    def test_covers_cartesian_product(self, tiny_split, fast_config):
        result = grid_search(
            {"lr": [0.01, 0.05], "kd_weight": [0.0, 0.1]},
            tiny_split, base_config=fast_config,
            model_kwargs={"dim": 8, "num_interests": 2},
            train_spans=[1],
        )
        assert len(result.trials) == 4
        settings = {tuple(sorted(t.settings.items())) for t in result.trials}
        assert len(settings) == 4

    def test_best_is_max(self, tiny_split, fast_config):
        result = grid_search(
            {"lr": [0.01, 0.05]}, tiny_split, base_config=fast_config,
            model_kwargs={"dim": 8, "num_interests": 2}, train_spans=[1],
        )
        assert result.best.val_hr == max(t.val_hr for t in result.trials)

    def test_rows_sorted_descending(self, tiny_split, fast_config):
        result = grid_search(
            {"lr": [0.01, 0.05, 0.1]}, tiny_split, base_config=fast_config,
            model_kwargs={"dim": 8, "num_interests": 2}, train_spans=[1],
        )
        scores = [row["val_HR"] for row in result.rows()]
        assert scores == sorted(scores, reverse=True)

    def test_config_vs_strategy_kwargs_split(self, tiny_split, fast_config):
        # c1 is a strategy kwarg; epochs_incremental a config field — both
        # must be routed without error
        result = grid_search(
            {"c1": [0.3], "epochs_incremental": [1]},
            tiny_split, base_config=fast_config,
            model_kwargs={"dim": 8, "num_interests": 2}, train_spans=[1],
        )
        assert len(result.trials) == 1

    def test_empty_grid_rejected(self, tiny_split, fast_config):
        with pytest.raises(ValueError):
            grid_search({}, tiny_split, base_config=fast_config)

    def test_empty_result_best_raises(self):
        with pytest.raises(ValueError):
            GridSearchResult().best

    def test_validation_score_bounds(self, tiny_split, fast_config):
        strategy = make_strategy("FT", "ComiRec-DR", tiny_split, fast_config,
                                 model_kwargs={"dim": 8, "num_interests": 2})
        strategy.pretrain()
        score = validation_score(strategy, tiny_split, [1, 2])
        assert 0.0 <= score <= 1.0


class _FakeResult:
    def rows(self):
        return [{"a": 1, "b": np.float64(0.5), "c": float("nan")}]

    def shape_checks(self):
        return [{"check": "x", "holds": "yes"}, {"check": "y", "holds": "NO"}]


class TestArtifacts:
    def test_export_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "table.json"
        payload = export_result(_FakeResult(), path, experiment_id="t1")
        assert path.exists()
        loaded = load_artifact(path)
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["experiment"] == "t1"
        assert loaded["checks_passed"] == 1
        assert loaded["checks_total"] == 2

    def test_nan_becomes_null(self, tmp_path):
        payload = export_result(_FakeResult(), tmp_path / "a.json")
        assert payload["rows"][0]["c"] is None

    def test_numpy_scalars_converted(self, tmp_path):
        payload = export_result(_FakeResult(), tmp_path / "b.json")
        assert isinstance(payload["rows"][0]["b"], float)

    def test_extra_merged(self, tmp_path):
        payload = export_result(_FakeResult(), tmp_path / "c.json",
                                extra={"scale": np.float64(1.0)})
        assert payload["scale"] == 1.0

    def test_result_without_rows_ok(self, tmp_path):
        class Bare:
            pass

        payload = export_result(Bare(), tmp_path / "d.json", "bare")
        assert "rows" not in payload
