"""The examples must stay parseable and built on the public API only.

Executing the examples takes minutes (they run real experiments), so the
test suite verifies their structure instead: they parse, they import
only public `repro` surfaces, and they expose a ``main()`` guarded by
``__main__``.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_main_guard(self, path):
        tree = ast.parse(path.read_text())
        has_main = any(
            isinstance(node, ast.FunctionDef) and node.name == "main"
            for node in tree.body
        )
        has_guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
            for node in tree.body
        )
        assert has_main and has_guard

    def test_imports_resolve(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                module = __import__(node.module, fromlist=["_"])
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"


def test_at_least_four_examples():
    assert len(EXAMPLES) >= 4
