"""Unit tests for the synthetic interest-world generator."""

import numpy as np
import pytest

from repro.data import WorldConfig, generate_world, interactions_by_user
from repro.data.stats import interest_reappearance_rate


def small(**overrides):
    base = dict(num_users=12, num_items=60, num_topics=6, num_spans=3,
                pretrain_events_per_user=(10, 14),
                span_events_per_user=(4, 6), seed=5)
    base.update(overrides)
    return WorldConfig(**base)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        a = generate_world(small())
        b = generate_world(small())
        assert len(a.interactions) == len(b.interactions)
        assert all(
            (x.user, x.item, x.timestamp) == (y.user, y.item, y.timestamp)
            for x, y in zip(a.interactions, b.interactions)
        )

    def test_different_seed_differs(self):
        a = generate_world(small(seed=1))
        b = generate_world(small(seed=2))
        pairs_a = [(x.user, x.item) for x in a.interactions]
        pairs_b = [(x.user, x.item) for x in b.interactions]
        assert pairs_a != pairs_b

    def test_timestamps_sorted_and_in_unit_range(self):
        world = generate_world(small())
        ts = [e.timestamp for e in world.interactions]
        assert ts == sorted(ts)
        assert min(ts) >= 0.0 and max(ts) < 1.0

    def test_every_user_has_pretrain_events(self):
        world = generate_world(small())
        grouped = interactions_by_user(world.interactions)
        for user in range(world.num_users):
            assert any(e.timestamp < 0.5 for e in grouped[user])

    def test_items_within_catalog(self):
        world = generate_world(small())
        assert all(0 <= e.item < world.num_items for e in world.interactions)

    def test_item_topics_cover_all_items(self):
        world = generate_world(small())
        assert world.item_topics.shape == (world.num_items,)
        assert world.item_topics.min() >= 0
        assert world.item_topics.max() < world.config.num_topics


class TestTopicDynamics:
    def test_timeline_length(self):
        world = generate_world(small(num_spans=4))
        for timeline in world.user_topic_timeline.values():
            assert len(timeline) == 5  # pretrain + 4 spans

    def test_topics_never_removed(self):
        world = generate_world(small())
        for timeline in world.user_topic_timeline.values():
            for prev, cur in zip(timeline, timeline[1:]):
                assert prev <= cur  # active sets only grow

    def test_high_adoption_rate_grows_topics(self):
        lazy = generate_world(small(new_topic_rate=0.0))
        eager = generate_world(small(new_topic_rate=0.9, num_topics=20))
        growth = lambda w: np.mean([
            len(t[-1]) - len(t[0]) for t in w.user_topic_timeline.values()
        ])
        assert growth(lazy) == 0.0
        assert growth(eager) > 1.0

    def test_new_topic_users_matches_timeline(self):
        world = generate_world(small(new_topic_rate=0.8))
        grew = world.new_topic_users(1)
        for user in grew:
            timeline = world.user_topic_timeline[user]
            assert timeline[1] - timeline[0]

    def test_reappearance_rate_high(self):
        # the paper's motivation: >80% of interests reappear
        world = generate_world(small(num_spans=6))
        assert interest_reappearance_rate(world) > 0.7


class TestCatalogRelease:
    def test_initial_fraction_respected(self):
        world = generate_world(small(initial_catalog_fraction=0.5))
        live_at_start = (world.item_release_period == 0).sum()
        assert live_at_start == pytest.approx(0.5 * world.num_items, abs=2)

    def test_full_fraction_means_all_live(self):
        world = generate_world(small(initial_catalog_fraction=1.0))
        assert (world.item_release_period == 0).all()

    def test_no_item_interacted_before_release(self):
        config = small(initial_catalog_fraction=0.4)
        world = generate_world(config)
        span_width = 0.5 / config.num_spans
        for e in world.interactions:
            period = 0 if e.timestamp < 0.5 else int(
                (e.timestamp - 0.5) // span_width) + 1
            assert world.item_release_period[e.item] <= period


class TestActivity:
    def test_full_activity_means_every_span(self):
        world = generate_world(small(span_activity=1.0))
        grouped = interactions_by_user(world.interactions)
        span_width = 0.5 / world.config.num_spans
        for user, events in grouped.items():
            periods = {0 if e.timestamp < 0.5 else int(
                (e.timestamp - 0.5) // span_width) + 1 for e in events}
            assert periods == set(range(world.config.num_spans + 1))

    def test_low_activity_creates_gaps(self):
        world = generate_world(small(span_activity=0.3, num_spans=4))
        grouped = interactions_by_user(world.interactions)
        n_gappy = 0
        for events in grouped.values():
            periods = {0 if e.timestamp < 0.5 else int(
                (e.timestamp - 0.5) // (0.5 / 4)) + 1 for e in events}
            if len(periods) < 5:
                n_gappy += 1
        assert n_gappy > len(grouped) / 2
