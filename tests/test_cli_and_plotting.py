"""Tests for the CLI and the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.plotting import ascii_bars, ascii_heatmap, ascii_line_chart


class TestPlotting:
    def test_line_chart_contains_markers_and_legend(self):
        chart = ascii_line_chart({"FT": [0.1, 0.2, 0.15], "FR": [0.3, 0.25, 0.2]})
        assert "o=FT" in chart
        assert "x=FR" in chart
        grid_rows = chart.splitlines()[:-2]  # exclude axis + legend
        assert any("o" in row for row in grid_rows)
        assert any("x" in row for row in grid_rows)

    def test_line_chart_bounds_labels(self):
        chart = ascii_line_chart({"a": [1.0, 3.0]})
        assert "3.000" in chart
        assert "1.000" in chart

    def test_line_chart_constant_series_safe(self):
        chart = ascii_line_chart({"a": [0.5, 0.5, 0.5]})
        assert "(empty" not in chart

    def test_line_chart_empty(self):
        assert ascii_line_chart({}) == "(no series)"

    def test_line_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_heatmap_scale_line(self):
        out = ascii_heatmap(np.array([[0.0, 1.0], [0.5, 0.25]]))
        assert "scale:" in out
        assert "0.000" in out and "1.000" in out

    def test_heatmap_labels(self):
        out = ascii_heatmap(np.eye(2), row_labels=["u1", "u2"],
                            col_labels=["i1", "i2"])
        assert "u1" in out and "u2" in out

    def test_heatmap_empty(self):
        assert ascii_heatmap(np.zeros((0, 0))) == "(empty heatmap)"

    def test_bars_render_values(self):
        out = ascii_bars({"skirt": 0.9, "lego": 0.1})
        assert "skirt" in out and "0.900" in out

    def test_bars_negative_values(self):
        out = ascii_bars({"a": -1.0, "b": 1.0})
        assert "-1.000" in out


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "IMSR" in out
        assert "taobao" in out
        assert "table3" in out

    def test_stats_command(self, capsys):
        assert main(["stats", "books", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "books" in out
        assert "#users" in out

    def test_stats_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["stats", "netflix"])

    def test_run_command_tiny(self, capsys):
        assert main(["run", "books", "ComiRec-DR", "FT",
                     "--scale", "0.15", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "HR@20" in out
        assert "average:" in out

    def test_run_imsr_flags(self, capsys):
        assert main(["run", "books", "ComiRec-DR", "IMSR",
                     "--scale", "0.15", "--epochs", "2",
                     "--c1", "0.3", "--delta-k", "2"]) == 0
        assert "mean K" in capsys.readouterr().out

    def test_imsr_flag_on_other_strategy_warns(self, capsys):
        assert main(["run", "books", "ComiRec-DR", "FT",
                     "--scale", "0.15", "--epochs", "2", "--c1", "0.3"]) == 0
        assert "only applies to IMSR" in capsys.readouterr().err

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "pre-training" in out

    def test_lint_command_clean_on_src(self, capsys):
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        assert main(["lint", str(src)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_command_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "m.py"
        bad.write_text("import numpy as np\n"
                       "def f():\n"
                       "    return np.random.rand(3)\n")
        assert main(["lint", str(bad), "--no-baseline"]) == 1
        assert "RA201" in capsys.readouterr().out

    def test_lint_command_json_format(self, tmp_path, capsys):
        import json

        clean = tmp_path / "m.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 0

    def test_lint_command_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "RA101" in capsys.readouterr().out

    def test_checkpoint_info_command(self, tiny_split, tmp_path, capsys):
        from repro.experiments import make_strategy
        from repro.incremental import TrainConfig
        from repro.persistence import save_checkpoint

        strategy = make_strategy(
            "FT", "ComiRec-DR", tiny_split,
            TrainConfig(epochs_pretrain=1, epochs_incremental=1, seed=0),
            model_kwargs={"dim": 8, "num_interests": 2})
        path = tmp_path / "c.npz"
        save_checkpoint(strategy, path)
        assert main(["checkpoint-info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "model_family: dr" in out
