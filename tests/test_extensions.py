"""Tests for the extension strategies: EWC and IMSR+Replay."""

import numpy as np
import pytest

from repro.incremental import EWC, IMSRReplay, STRATEGY_REGISTRY, TrainConfig
from repro.models import ComiRecDR


def dr_model(split, seed=0):
    return ComiRecDR(split.num_items, dim=12, num_interests=3, seed=seed)


class TestEWC:
    def test_registered(self):
        assert STRATEGY_REGISTRY["EWC"] is EWC

    def test_fisher_estimated_after_pretrain(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        assert not strategy.fisher
        strategy.pretrain()
        assert strategy.fisher
        for name, value in strategy.fisher.items():
            assert (value >= 0).all(), name

    def test_anchors_match_parameters_at_estimation(self, tiny_split,
                                                    train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        for name, param in strategy.model.named_parameters():
            assert np.allclose(strategy.anchors[name], param.data)

    def test_penalty_zero_at_anchor(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        penalty = strategy._penalty()
        assert penalty is not None
        assert penalty.item() == pytest.approx(0.0, abs=1e-12)

    def test_penalty_grows_with_distance(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        for param in strategy.model.parameters():
            param.data += 0.5
        moved = strategy._penalty().item()
        assert moved > 0

    def test_penalty_none_before_fisher(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        assert strategy._penalty() is None

    def test_full_span_runs(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        strategy.train_span(1)
        assert 1 in strategy.train_times
        for state in strategy.states.values():
            assert np.isfinite(state.interests).all()

    def test_no_interest_expansion(self, tiny_split, train_config):
        strategy = EWC(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        strategy.train_span(1)
        assert set(strategy.interest_counts().values()) == {3}

    def test_strong_penalty_freezes_parameters(self, tiny_split):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=2, seed=0)
        strong = EWC(dr_model(tiny_split), tiny_split, config,
                     ewc_weight=1e6)
        strong.pretrain()
        before = strong.model.state_dict()
        strong.train_span(1)
        drift_strong = sum(
            float(np.abs(v - before[k]).mean())
            for k, v in strong.model.state_dict().items()
        )
        weak = EWC(dr_model(tiny_split), tiny_split, config, ewc_weight=0.0)
        weak.pretrain()
        before = weak.model.state_dict()
        weak.train_span(1)
        drift_weak = sum(
            float(np.abs(v - before[k]).mean())
            for k, v in weak.model.state_dict().items()
        )
        assert drift_strong < drift_weak


class TestIMSRReplay:
    def test_registered(self):
        assert STRATEGY_REGISTRY["IMSR+Replay"] is IMSRReplay

    def test_pool_populated(self, tiny_split, train_config):
        strategy = IMSRReplay(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        assert strategy.pool

    def test_replay_payloads_structure(self, tiny_split, train_config):
        strategy = IMSRReplay(dr_model(tiny_split), tiny_split, train_config,
                              replay_per_span=2)
        strategy.pretrain()
        payloads = strategy._replay_payloads()
        assert payloads
        per_user: dict = {}
        for p in payloads:
            assert p.history and p.targets
            per_user[p.user] = per_user.get(p.user, 0) + 1
        assert max(per_user.values()) <= 2

    def test_inherits_imsr_expansion(self, tiny_split, train_config):
        strategy = IMSRReplay(dr_model(tiny_split), tiny_split, train_config,
                              c1=0.2, c2=0.0)
        strategy.pretrain()
        strategy.train_span(1)
        assert strategy.expansion_log.get(1)

    def test_imsr_kwargs_forwarded(self, tiny_split, train_config):
        strategy = IMSRReplay(dr_model(tiny_split), tiny_split, train_config,
                              use_nid=False, kd_weight=0.0)
        strategy.pretrain()
        strategy.train_span(1)
        assert set(strategy.interest_counts().values()) == {3}
