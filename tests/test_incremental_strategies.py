"""Integration-style tests for the incremental learning strategies."""

import numpy as np
import pytest

from repro.incremental import (
    ADER,
    FineTune,
    FullRetrain,
    IMSR,
    SML,
    STRATEGY_REGISTRY,
    TrainConfig,
    build_payloads,
)
from repro.incremental.strategy import merge_payload_items
from repro.models import ComiRecDR, ComiRecSA


def dr_model(split, seed=0):
    return ComiRecDR(split.num_items, dim=12, num_interests=3, seed=seed)


class TestPayloads:
    def test_history_target_split(self, tiny_split, train_config):
        payloads = build_payloads(tiny_split.pretrain, train_config)
        assert payloads
        for p in payloads:
            assert p.history
            assert p.targets
            data = tiny_split.pretrain.users[p.user]
            expected = data.train_items + (
                [data.val_item] if data.val_item is not None else [])
            assert p.history + p.targets == expected[-len(p.history + p.targets):]

    def test_history_fraction_respected(self, tiny_split):
        config = TrainConfig(history_fraction=0.8, max_targets=100)
        payloads = build_payloads(tiny_split.pretrain, config)
        for p in payloads:
            total = len(p.history) + len(p.targets)
            assert len(p.history) == pytest.approx(0.8 * total, abs=1)

    def test_max_targets_cap(self, tiny_split):
        config = TrainConfig(max_targets=2)
        payloads = build_payloads(tiny_split.pretrain, config)
        assert all(len(p.targets) <= 2 for p in payloads)

    def test_exclude_val(self, tiny_split, train_config):
        with_val = build_payloads(tiny_split.pretrain, train_config,
                                  include_val=True)
        without = build_payloads(tiny_split.pretrain, train_config,
                                 include_val=False)
        n_with = sum(len(p.history) + len(p.targets) for p in with_val)
        n_without = sum(len(p.history) + len(p.targets) for p in without)
        assert n_with > n_without

    def test_merge_payload_items(self, tiny_split, train_config):
        payloads = build_payloads(tiny_split.pretrain, train_config)
        merged = merge_payload_items(payloads, payloads)
        user = payloads[0].user
        assert len(merged[user]) == 2 * (
            len(payloads[0].history) + len(payloads[0].targets))


class TestStrategyRegistry:
    def test_all_paper_strategies(self):
        paper = {"FR", "FT", "SML", "ADER", "IMSR"}
        extensions = {"EWC", "IMSR+Replay"}
        assert set(STRATEGY_REGISTRY) == paper | extensions


class TestFineTune:
    def test_pretrain_updates_interests(self, tiny_split, train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        before = {u: s.interests.copy() for u, s in strategy.states.items()}
        strategy.pretrain()
        moved = sum(
            not np.allclose(before[u], s.interests)
            for u, s in strategy.states.items()
        )
        assert moved > len(strategy.states) * 0.8

    def test_train_span_records_time(self, tiny_split, train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        elapsed = strategy.train_span(1)
        assert elapsed > 0
        assert strategy.train_times[1] == elapsed

    def test_interest_count_fixed(self, tiny_split, train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        strategy.train_span(1)
        assert all(k == 3 for k in strategy.interest_counts().values())

    def test_score_user_shape(self, tiny_split, train_config):
        strategy = FineTune(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        scores = strategy.score_user(0)
        assert scores.shape == (tiny_split.num_items,)

    def test_sa_user_weights_in_optimizer(self, tiny_split, train_config):
        model = ComiRecSA(tiny_split.num_items, dim=12, num_interests=3, seed=0)
        strategy = FineTune(model, tiny_split, train_config)
        before = {
            u: s.sa_weights.data.copy() for u, s in strategy.states.items()
        }
        strategy.pretrain()
        moved = sum(
            not np.allclose(before[u], s.sa_weights.data)
            for u, s in strategy.states.items()
            if u in tiny_split.pretrain
        )
        assert moved > 0


class TestFullRetrain:
    def test_requires_factory(self, tiny_split, train_config):
        with pytest.raises(ValueError):
            FullRetrain(dr_model(tiny_split), tiny_split, train_config)

    def test_reinitializes_model(self, tiny_split, train_config):
        strategy = FullRetrain(
            dr_model(tiny_split), tiny_split, train_config,
            model_factory=lambda: dr_model(tiny_split, seed=1))
        strategy.pretrain()
        first_model = strategy.model
        strategy.train_span(1)
        assert strategy.model is not first_model

    def test_interest_count_sync(self, tiny_split, train_config):
        user = tiny_split.pretrain.user_ids()[0]
        strategy = FullRetrain(
            dr_model(tiny_split), tiny_split, train_config,
            model_factory=lambda: dr_model(tiny_split, seed=1),
            interest_counts={1: {user: 7}})
        strategy.pretrain()
        strategy.train_span(1)
        assert strategy.states[user].num_interests == 7

    def test_cumulative_payloads_grow(self, tiny_split, train_config):
        strategy = FullRetrain(
            dr_model(tiny_split), tiny_split, train_config,
            model_factory=lambda: dr_model(tiny_split, seed=1))
        early = strategy._cumulative_payloads(1)
        late = strategy._cumulative_payloads(3)
        total = lambda ps: sum(len(p.history) + len(p.targets) for p in ps)
        assert total(late) > total(early)


class TestSML:
    def test_alpha_chosen_from_grid(self, tiny_split, train_config):
        strategy = SML(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        strategy.train_span(1)
        assert 1 in strategy.chosen_alphas
        assert strategy.chosen_alphas[1] in strategy.alpha_grid

    def test_interpolation_restores_prev_at_alpha_one(self, tiny_split,
                                                      train_config):
        strategy = SML(dr_model(tiny_split), tiny_split, train_config)
        prev = strategy.model.state_dict()
        new = {k: v + 1.0 for k, v in prev.items()}
        strategy._load_interpolated(prev, new, alpha=1.0)
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, prev[name])

    def test_interpolation_uses_new_at_alpha_zero(self, tiny_split,
                                                  train_config):
        strategy = SML(dr_model(tiny_split), tiny_split, train_config)
        prev = strategy.model.state_dict()
        new = {k: v + 1.0 for k, v in prev.items()}
        strategy._load_interpolated(prev, new, alpha=0.0)
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, new[name])


class TestADER:
    def test_pool_grows_over_spans(self, tiny_split, train_config):
        strategy = ADER(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        after_pretrain = sum(len(b) for b in strategy.pool.values())
        assert after_pretrain > 0
        strategy.train_span(1)
        assert sum(len(b) for b in strategy.pool.values()) > after_pretrain

    def test_exemplars_are_subsequences(self, tiny_split, train_config):
        strategy = ADER(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        for user, bucket in strategy.pool.items():
            full = tiny_split.pretrain.users[user].all_items
            for seq in bucket:
                assert len(seq) >= 2
                # contiguous subsequence of the user's history
                joined = ",".join(map(str, full))
                assert ",".join(map(str, seq)) in joined

    def test_replays_inactive_users(self, tiny_split, train_config):
        strategy = ADER(dr_model(tiny_split), tiny_split, train_config)
        strategy.pretrain()
        span = tiny_split.spans[0]
        payloads = strategy._exemplar_payloads(span)
        payload_users = {p.user for p in payloads}
        pooled_inactive = set(strategy.pool) - set(span.users)
        if pooled_inactive:  # activity < 1 should leave some users out
            assert pooled_inactive & payload_users


class TestIMSR:
    def test_expansion_happens(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        c1=0.2, c2=0.0)  # c2=0: nothing trimmed back
        strategy.pretrain()
        strategy.train_span(1)
        assert strategy.expansion_log.get(1)
        expanded = strategy.expansion_log[1][0]
        assert strategy.states[expanded].num_interests > 3

    def test_high_c1_blocks_expansion(self, tiny_split, train_config):
        # puzzlement = exp(-KL) < 1 strictly unless the posterior is
        # exactly uniform, so c1 = 1.0 blocks all expansion
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        c1=1.0)
        strategy.pretrain()
        strategy.train_span(1)
        assert not strategy.expansion_log.get(1)

    def test_expansion_once_per_span(self, tiny_split, train_config):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=4, seed=0)
        strategy = IMSR(dr_model(tiny_split), tiny_split, config,
                        c1=0.0, delta_k=2)  # always puzzled
        strategy.pretrain()
        strategy.train_span(1)
        for user in strategy.expansion_log.get(1, []):
            state = strategy.states[user]
            # at most one delta_k batch added (minus any trims)
            assert state.num_interests <= 3 + 2

    def test_max_interests_cap(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        c1=0.0, delta_k=3, max_interests=5)
        strategy.pretrain()
        for t in (1, 2, 3):
            strategy.train_span(t)
        assert all(s.num_interests <= 5 for s in strategy.states.values())

    def test_no_nid_means_no_expansion(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        c1=0.0, use_nid=False)
        strategy.pretrain()
        strategy.train_span(1)
        assert all(s.num_interests == 3 for s in strategy.states.values())

    def test_kd_weight_zero_skips_retention(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        kd_weight=0.0)
        payload_like = build_payloads(tiny_split.spans[0], train_config)[0]
        state = strategy.states[payload_like.user]
        H = strategy.model.compute_interests(state, payload_like.history)
        assert strategy._retention_loss(state, H, payload_like) is None

    def test_unknown_retainer_rejected(self, tiny_split, train_config):
        with pytest.raises(KeyError):
            IMSR(dr_model(tiny_split), tiny_split, train_config,
                 retainer="nope")

    @pytest.mark.parametrize("retainer", ["DIR", "KD1", "KD2", "KD3"])
    def test_variant_retainers_run(self, tiny_split, train_config, retainer):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config,
                        retainer=retainer)
        strategy.pretrain()
        strategy.train_span(1)  # no crash, interests finite
        for state in strategy.states.values():
            assert np.isfinite(state.interests).all()

    def test_trimming_logged(self, tiny_split):
        config = TrainConfig(epochs_pretrain=2, epochs_incremental=4, seed=0)
        strategy = IMSR(dr_model(tiny_split), tiny_split, config,
                        c1=0.0, delta_k=4, c2=10.0)  # absurd c2: trim all new
        strategy.pretrain()
        strategy.train_span(1)
        assert strategy.trim_log.get(1)
        # everything expanded was eventually trimmed back
        for user in strategy.expansion_log.get(1, []):
            assert strategy.states[user].num_interests == 3

    def test_imsr_on_sa_model(self, tiny_split, train_config):
        model = ComiRecSA(tiny_split.num_items, dim=12, num_interests=3, seed=0)
        strategy = IMSR(model, tiny_split, train_config, c1=0.2)
        strategy.pretrain()
        strategy.train_span(1)
        for state in strategy.states.values():
            assert state.sa_weights.data.shape[1] == state.num_interests

    def test_mean_interest_count(self, tiny_split, train_config):
        strategy = IMSR(dr_model(tiny_split), tiny_split, train_config)
        assert strategy.mean_interest_count() == 3.0
