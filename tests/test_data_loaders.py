"""Tests for the real-dataset CSV loaders."""

import pytest

from repro.data import load_amazon_ratings, load_taobao_userbehavior, split_time_spans


AMAZON_CSV = """\
A1,B001,5.0,1300000000
A1,B002,4.0,1300100000
A1,B003,3.0,1300200000
A2,B001,5.0,1300050000
A2,B004,1.0,1300150000
A3,B009,2.0,1300300000
"""

TAOBAO_CSV = """\
1,100,77,pv,1511544070
1,101,77,buy,1511544080
1,102,78,pv,1511544090
2,100,77,pv,1511544100
2,103,79,cart,1511544110
2,104,79,pv,1511544120
"""


@pytest.fixture()
def amazon_file(tmp_path):
    path = tmp_path / "ratings_Electronics.csv"
    path.write_text(AMAZON_CSV)
    return path


@pytest.fixture()
def taobao_file(tmp_path):
    path = tmp_path / "UserBehavior.csv"
    path.write_text(TAOBAO_CSV)
    return path


class TestAmazonLoader:
    def test_parses_all_rows(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=0)
        assert len(data.interactions) == 6
        assert data.num_users == 3
        assert data.num_items == 5

    def test_dense_reindexing(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=0)
        users = {e.user for e in data.interactions}
        items = {e.item for e in data.interactions}
        assert users == set(range(data.num_users))
        assert items == set(range(data.num_items))

    def test_min_interactions_filter(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=3)
        assert data.num_users == 1  # only A1 has 3 interactions
        assert len(data.interactions) == 3

    def test_chronological_order(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=0)
        ts = [e.timestamp for e in data.interactions]
        assert ts == sorted(ts)

    def test_max_rows(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=0,
                                   max_rows=2)
        assert len(data.interactions) == 2

    def test_malformed_rows_skipped(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A1,B001,5.0,notatime\nA1,B002\nA2,B001,1.0,123\n")
        data = load_amazon_ratings(path, min_user_interactions=0)
        assert len(data.interactions) == 1

    def test_feeds_timespan_splitter(self, amazon_file):
        data = load_amazon_ratings(amazon_file, min_user_interactions=0)
        split = split_time_spans(data.interactions, num_items=data.num_items,
                                 T=2, alpha=0.5)
        assert split.T == 2
        assert split.num_users == 3


class TestTaobaoLoader:
    def test_default_keeps_clicks_only(self, taobao_file):
        data = load_taobao_userbehavior(taobao_file, min_user_interactions=0)
        assert len(data.interactions) == 4  # pv rows only

    def test_behavior_filter_configurable(self, taobao_file):
        data = load_taobao_userbehavior(taobao_file, min_user_interactions=0,
                                        behaviors=("pv", "buy", "cart"))
        assert len(data.interactions) == 6

    def test_min_interactions_applied_after_behavior_filter(self, taobao_file):
        data = load_taobao_userbehavior(taobao_file, min_user_interactions=2)
        assert data.num_users == 2  # both users have exactly 2 pv rows

    def test_reindexing_shared_items(self, taobao_file):
        data = load_taobao_userbehavior(taobao_file, min_user_interactions=0)
        # item "100" clicked by both users maps to a single id
        first = data.item_index["100"]
        hits = [e for e in data.interactions if e.item == first]
        assert len(hits) == 2
        assert {e.user for e in hits} == {0, 1}
