"""Edge cases for repro.obs.metrics: empty histograms, label cardinality,
and histogram merging across resumed trace segments."""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    read_trace,
    summarize_trace,
    tracing,
)
from repro.obs import trace as obs
from repro.obs.metrics import (
    LATENCY_EDGES,
    merge_snapshots,
    quantile_from_snapshot,
)


class TestEmptyHistograms:
    def test_quantiles_of_an_empty_histogram_are_none(self):
        hist = Histogram("empty")
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) is None
        assert hist.mean is None

    def test_snapshot_with_zero_count_yields_none(self):
        snapshot = {"type": "histogram", "count": 0, "counts": [],
                    "edges": [], "min": None, "max": None}
        assert quantile_from_snapshot(snapshot, 0.5) is None

    def test_single_observation_pins_every_quantile(self):
        hist = Histogram("one", edges=LATENCY_EDGES)
        hist.observe(3.0e-4)
        for q in (0.0, 0.5, 0.99):
            assert hist.quantile(q) == pytest.approx(3.0e-4)

    def test_histogram_with_empty_buckets_interpolates_around_them(self):
        hist = Histogram("gappy", edges=(1.0, 2.0, 3.0, 4.0))
        for value in (0.5, 0.6, 3.5, 3.6):  # nothing in the middle buckets
            hist.observe(value)
        p50 = hist.quantile(0.50)
        p99 = hist.quantile(0.99)
        assert 0.5 <= p50 <= 3.6
        assert p50 <= p99 <= 3.6

    def test_non_histogram_snapshots_are_rejected(self):
        assert quantile_from_snapshot(
            {"type": "counter", "value": 5.0, "count": 5}, 0.5) is None


class TestLabelCardinality:
    def test_each_label_set_is_a_distinct_metric(self):
        registry = MetricsRegistry()
        n = 500
        for i in range(n):
            registry.counter("requests", shard=i % 10, user=i).inc()
        assert len(registry) == n
        snapshot = registry.snapshot()
        assert len(snapshot) == n
        assert all(state["value"] == 1.0 for state in snapshot.values())

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", a=1, b=2).inc()
        registry.counter("hits", b=2, a=1).inc()
        assert len(registry) == 1
        assert registry.counter("hits", a=1, b=2).value == 2.0

    def test_snapshot_is_deterministically_ordered(self):
        registry = MetricsRegistry()
        for i in (3, 1, 2):
            registry.gauge("g", idx=i).set(i)
        assert list(registry.snapshot()) == \
            ["g{idx=1}", "g{idx=2}", "g{idx=3}"]

    def test_kind_collisions_are_type_errors(self):
        registry = MetricsRegistry()
        registry.counter("m", shard=1)
        registry.histogram("m", shard=2)  # different labels: fine
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("m", shard=1)

    def test_high_cardinality_survives_the_trace_roundtrip(self, tmp_path):
        with tracing(tmp_path):
            for i in range(64):
                obs.counter("shards.touched", shard=i)
        summary = summarize_trace(tmp_path)
        shard_rows = [name for name in summary["metrics"]
                      if name.startswith("shards.touched{")]
        assert len(shard_rows) == 64


class TestHistogramMerge:
    def test_merge_requires_identical_edges(self):
        base = Histogram("h", edges=(1.0, 2.0))
        other = Histogram("h", edges=(1.0, 3.0))
        with pytest.raises(ValueError, match="different edges"):
            base.merge(other)

    def test_merge_folds_counts_and_extrema(self):
        a = Histogram("h")
        b = Histogram("h")
        for v in (0.1, 0.2):
            a.observe(v)
        for v in (5.0, 50.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(55.3)
        assert a.min == pytest.approx(0.1)
        assert a.max == pytest.approx(50.0)
        assert sum(a.counts) == 4

    def test_merging_an_empty_histogram_is_identity(self):
        a = Histogram("h")
        a.observe(1.5)
        before = a.snapshot()
        a.merge(Histogram("h"))
        assert a.snapshot() == before

    def test_merge_snapshots_folds_all_metric_kinds(self):
        seg1 = {
            "c": {"type": "counter", "value": 2.0},
            "g": {"type": "gauge", "value": 1.0},
            "h": Histogram("h").snapshot(),
        }
        seg2 = {
            "c": {"type": "counter", "value": 3.0},
            "g": {"type": "gauge", "value": None},
            "h": Histogram("h").snapshot(),
        }
        seg1["h"]["count"], seg1["h"]["counts"] = 1, [1] + [0] * 9
        seg1["h"]["sum"], seg1["h"]["min"], seg1["h"]["max"] = 0.5, 0.5, 0.5
        seg2["h"]["count"], seg2["h"]["counts"] = 1, [0, 1] + [0] * 8
        seg2["h"]["sum"], seg2["h"]["min"], seg2["h"]["max"] = 2.0, 2.0, 2.0
        merged = merge_snapshots(seg1, seg2)
        assert merged["c"]["value"] == 5.0
        assert merged["g"]["value"] == 1.0  # None never overwrites
        assert merged["h"]["count"] == 2
        assert merged["h"]["min"] == 0.5 and merged["h"]["max"] == 2.0

    def test_edge_change_between_segments_keeps_the_later_segment(self):
        old = {"h": {"type": "histogram", "count": 4, "sum": 1.0,
                     "min": 0.1, "max": 0.4, "edges": [1.0],
                     "counts": [4, 0]}}
        new = {"h": {"type": "histogram", "count": 2, "sum": 6.0,
                     "min": 2.0, "max": 4.0, "edges": [1.0, 5.0],
                     "counts": [0, 2, 0]}}
        merged = merge_snapshots(old, new)
        assert merged["h"] == new["h"]

    def test_resumed_trace_merges_histograms_across_segments(
            self, tmp_path):
        with tracing(tmp_path):
            obs.observe("loss.value", 0.25)
            obs.counter("events.seen")
        with tracing(tmp_path, resume=True):
            obs.observe("loss.value", 0.75)
            obs.counter("events.seen")
        events, _ = read_trace(tmp_path)
        segments = [e for e in events if e.get("kind") == "metrics"]
        assert len(segments) == 2  # one snapshot per trace segment
        summary = summarize_trace(tmp_path)
        loss = summary["metrics"]["loss.value"]
        assert loss["count"] == 2
        assert loss["min"] == pytest.approx(0.25)
        assert loss["max"] == pytest.approx(0.75)
        assert summary["metrics"]["events.seen"]["value"] == 2.0

    def test_merged_state_stays_json_serializable(self):
        a = Histogram("h", edges=LATENCY_EDGES)
        b = Histogram("h", edges=LATENCY_EDGES)
        a.observe_many([1e-4, 2e-4, 3e-4])
        b.observe_many([5e-3, 1e-2])
        merged = merge_snapshots({"h": a.snapshot()}, {"h": b.snapshot()})
        json.dumps(merged)
        assert quantile_from_snapshot(merged["h"], 0.5) is not None
