"""RA801 compliant: mutating helpers only ever see fresh copies."""


def scale_rows(mat, factor):
    mat *= factor
    return mat


def apply_decay(snapshot_emb, factor):
    return scale_rows(snapshot_emb.copy(), factor)


def corrupt_teacher(model, factor):
    teacher = model.teacher_emb
    return scale_rows(teacher.copy(), factor)
