"""RA401 silent: None default, constructed per call."""


def collect(item, seen=None):
    if seen is None:
        seen = []
    seen.append(item)
    return seen
