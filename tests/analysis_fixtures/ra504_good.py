"""RA504 silent: the returned dtype class matches the declaration."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f -> (N, D) f64")
def normalize(x):
    scaled = x / 255.0
    return scaled.astype("float64")
