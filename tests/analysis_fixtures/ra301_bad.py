"""RA301 firing: log of a possibly-zero probability in loss code."""

import numpy as np


def nll_loss(probs):
    return -np.log(probs).mean()
