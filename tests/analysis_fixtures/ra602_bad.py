"""RA602 firing: mutating method calls on a buffer alias."""

import numpy as np


def scramble(tensor, other):
    flat = tensor.data.reshape(-1)
    flat.fill(0.0)                   # writes through the view
    cols = other.data.T
    np.copyto(cols, 1.0)             # np.copyto mutates its first arg
