"""RA601 firing: in-place writes through aliases of autograd buffers."""


def corrupt(tensor, idx):
    view = tensor.data[0]        # row view aliases the live buffer
    view[:] = 0.0                # mutates tensor.data through the alias
    flat = tensor.grad.reshape(-1)
    flat[idx] += 1.0             # same story via a reshape view
