"""RA401 firing: the default list is shared across every call."""


def collect(item, seen=[]):
    seen.append(item)
    return seen
