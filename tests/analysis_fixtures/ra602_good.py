"""RA602 silent: mutating methods on detached copies only."""

import numpy as np


def rebuild(tensor, other):
    flat = tensor.data.copy().reshape(-1)
    flat.fill(0.0)
    cols = np.array(other.data.T)    # np.array copies by default
    np.copyto(cols, 1.0)
    return flat, cols
