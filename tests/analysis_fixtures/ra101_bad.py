"""RA101 firing: every in-place mutation form of a Tensor buffer."""

import numpy as np


def corrupt(param, grad, idx):
    param.data += 0.1 * grad            # aug-assign into the buffer
    param.data[idx] = 0.0               # slice assignment
    np.add.at(param.grad, idx, 1.0)     # ufunc scatter
    np.multiply(param.data, 2.0, out=param.data)  # out= aliasing
