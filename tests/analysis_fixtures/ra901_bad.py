"""RA901 firing: raw BLAS / scatter calls that bypass the backend."""

import numpy as np


def extract(e_hat, capsules, coupling):
    logits = np.einsum("nd,kd->nk", e_hat, capsules)   # raw einsum
    pooled = np.matmul(coupling.T, e_hat)              # raw GEMM
    score = np.dot(pooled[0], capsules[0])             # raw dot
    return logits, pooled, score


def accumulate(table, idx, rows):
    np.add.at(table.grad, idx, rows)                   # raw buffer scatter
