"""RA402 silent: the exception set is named, the failure handled."""


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None
