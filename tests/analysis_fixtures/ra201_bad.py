"""RA201 firing: draws from the legacy global numpy RNG."""

import numpy as np


def sample_negatives(num_items, count):
    np.random.seed(0)
    return np.random.randint(0, num_items, size=count)
