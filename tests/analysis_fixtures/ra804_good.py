"""RA804 compliant: the contract-checked argument stays read-only."""

from repro.contracts import shape_contract


def center_inplace(mat):
    mat -= 0.5
    return mat


@shape_contract("(N, D) f -> (N, D) f")
def normalize(batch):
    return center_inplace(batch.copy())
