"""RA703 firing: run-varying inputs inside a fingerprint function."""

import time


def config_fingerprint(config):
    return f"{config}-{time.time()}-{id(config)}"
