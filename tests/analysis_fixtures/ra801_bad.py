"""RA801: frozen snapshots / buffer aliases passed to mutating helpers."""


def scale_rows(mat, factor):
    mat *= factor
    return mat


def apply_decay(snapshot_emb, factor):
    # forwards a snapshot-named parameter into an in-place mutator
    return scale_rows(snapshot_emb, factor)


def corrupt_teacher(model, factor):
    teacher = model.teacher_emb
    return scale_rows(teacher, factor)


def corrupt_capture(arr, factor):
    snap = capture(arr)
    return scale_rows(snap, factor)
