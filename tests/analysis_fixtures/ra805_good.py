"""RA805 compliant: mutual recursion with only statically-resolved
calls — the summary fixed point covers it, so no warning."""


def expand(node, payload):
    return shrink(node - 1, payload)


def shrink(node, payload):
    if node > 0:
        return expand(node, payload)
    return payload
