"""RA703 silent: fingerprints derive only from the hashed content."""

import hashlib


def config_fingerprint(config):
    blob = repr(sorted(config.items())).encode()
    return hashlib.sha256(blob).hexdigest()[:16]
