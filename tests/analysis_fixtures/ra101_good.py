"""RA101 silent: out-of-place math and mutation of detached copies."""

import numpy as np


def update(param, grad, idx):
    stepped = param.data - 0.1 * grad
    buffer = param.data.copy()
    buffer[idx] = 0.0
    np.add.at(buffer, idx, 1.0)
    return stepped, buffer
