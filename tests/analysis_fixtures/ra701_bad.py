"""RA701 firing: numeric accumulation over unordered set iteration."""


def total_weight(weights):
    total = 0.0
    for key in set(weights):         # set order varies across runs
        total += weights[key]
    return total
