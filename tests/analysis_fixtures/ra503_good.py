"""RA503 silent: call sites consistent with the callee's contract."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f, (N, D) f -> (N) f")
def row_dots(a, b):
    return (a * b).sum(axis=1)


@shape_contract("(B, D) f, (B, D) f -> () f")
def alignment(queries, keys):
    return row_dots(queries, keys).mean()
