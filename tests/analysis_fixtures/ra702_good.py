"""RA702 silent: listings are sorted before anything observes order."""

import os


def manifest(directory):
    return [name for name in sorted(os.listdir(directory))
            if name.endswith(".npz")]
