"""RA502 firing: broken @shape_contract specs."""

from repro.contracts import shape_contract


@shape_contract("(N, D f -> (N)")
def unbalanced(x):
    return x.sum(axis=1)


@shape_contract("(N, D) f, (K, D) f, (M) f -> (N) f")
def too_many_specs(items, interests):
    # contract declares three argument specs for two parameters
    return (items * interests).sum(axis=1)
