"""RA805: a call cycle forwards a parameter through a dynamic call."""

HANDLERS = {}


def expand(node, payload):
    handler = HANDLERS[node]
    handler(payload)
    return shrink(node, payload)


def shrink(node, payload):
    if node:
        return expand(node, payload)
    return payload
