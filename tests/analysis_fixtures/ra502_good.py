"""RA502 silent: well-formed specs matching the signatures."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f -> (N) f")
def row_sums(x):
    return x.sum(axis=1)


@shape_contract("(N, D) f, (N, D) f -> (N) f")
def row_dots(a, b):
    return (a * b).sum(axis=1)
