"""RA603 silent: stored state is detached before it escapes."""


class Recorder:
    def remember(self, tensor):
        self.kept = tensor.data.copy()
        self.rows = tensor.data[:2].copy()
