"""RA302 firing: exp of unshifted logits overflows for large inputs."""

import numpy as np


def softmax_loss(logits):
    weights = np.exp(logits)
    return weights / weights.sum()
