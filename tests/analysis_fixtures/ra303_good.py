"""RA303 silent: the denominator carries '+ eps'."""


def norm_penalty(vectors, eps=1e-12):
    total = (vectors * vectors).sum() + eps
    return vectors / total
