"""RA503 firing: a call site contradicting the callee's contract."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f, (N, D) f -> (N) f")
def row_dots(a, b):
    return (a * b).sum(axis=1)


@shape_contract("(B, D) f, (T, D) f -> () f")
def alignment(queries, keys):
    # row_dots requires both arguments to share their first dim,
    # but B and T are distinct here
    return row_dots(queries, keys).mean()
