"""RA702 firing: consuming directory listings in arrival order."""

import os


def manifest(directory):
    return [name for name in os.listdir(directory) if name.endswith(".npz")]
