"""RA701 silent: sort the set before the order can leak into math."""


def total_weight(weights):
    total = 0.0
    for key in sorted(set(weights)):
        total += weights[key]
    return total
