"""RA102 silent: an intentional constant is wrapped in Tensor(...)."""

from repro.autograd import Tensor


def distillation_loss(interests, teacher):
    drift = interests - Tensor(teacher.data)  # explicit constant teacher
    return (drift * drift).mean()
