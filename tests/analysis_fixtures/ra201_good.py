"""RA201 silent: a seeded Generator threaded through explicitly."""

import numpy as np


def sample_negatives(num_items, count, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_items, size=count)
