"""RA802: writing through a parameter view returned by a callee."""


def head_rows(mat, k):
    return mat[:k]


def bump_anchor_head(model):
    head = head_rows(model.anchor_emb, 4)
    head += 1.0
    return head
