"""RA603 firing: storing a live-buffer alias on an object attribute."""


class Recorder:
    def remember(self, tensor):
        self.kept = tensor.data          # alias outlives this frame
        self.rows = tensor.data[:2]      # so does a slice of it
