"""RA402 firing: bare except and a swallowing 'except Exception'."""


def load(path):
    try:
        return open(path).read()
    except:
        return None


def load_quiet(path):
    try:
        return open(path).read()
    except Exception:
        pass
