"""RA803 compliant: the Generator is threaded through the call chain."""

import numpy as np


def jitter(values, rng):
    return values + rng.normal(size=len(values))


def perturb(values, rng):
    return jitter(values, rng)


def run_world(seed, values):
    rng = np.random.default_rng(seed)
    return perturb(values, rng)
