"""RA802 compliant: copy the returned view before writing."""


def head_rows(mat, k):
    return mat[:k]


def bump_anchor_head(model):
    head = head_rows(model.anchor_emb, 4).copy()
    head += 1.0
    return head
