"""RA103 firing: inference entry point recording a throwaway graph."""


def predict_scores(model, state, items):
    interests = model.compute_interests(state, items)
    return interests.data
