"""RA901 silent: the same math routed through the active backend."""

from repro import backend as _backend


def extract(e_hat, capsules, coupling):
    ein = _backend.active.einsum
    logits = ein("nd,kd->nk", e_hat, capsules)
    pooled = _backend.active.gemm(coupling.T, e_hat)
    score = float(pooled[0] @ capsules[0])  # the @ operator is fine
    return logits, pooled, score


def accumulate(table, idx, rows):
    _backend.active.scatter_add(table.grad, idx, rows)
