"""RA601 silent: mutate detached copies, read through views freely."""


def inspect(tensor, idx):
    row = tensor.data[0].copy()  # the copy breaks the alias
    row[:] = 0.0
    top = tensor.data[0]         # a view is fine as long as it is read-only
    return row, float(top.sum())
