"""RA102 firing: raw ``.data`` arithmetic inside a loss function."""


def distillation_loss(interests, teacher):
    drift = interests.data - teacher.data  # both sides leave the tape
    return (drift * drift).mean()
