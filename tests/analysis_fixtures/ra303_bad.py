"""RA303 firing: division by a bare reduction — 0/0 risk."""


def norm_penalty(vectors):
    total = (vectors * vectors).sum()
    return vectors / total
