"""RA103 silent: the same entry point under no_grad()."""

from repro.autograd import no_grad


def predict_scores(model, state, items):
    with no_grad():
        interests = model.compute_interests(state, items)
    return interests.data
