"""RA803: a seeded entrypoint reaches the global RNG three calls down."""

import random


def jitter(values):
    return [v + random.random() for v in values]


def perturb(values):
    return jitter(values)


def run_world(seed, values):
    # takes a seed, but the perturbation path ignores it entirely
    return perturb(values)
