"""RA202 silent: the seed comes from the experiment config."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
