"""RA501 silent: the same geometry with the transposes in place."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    return items @ interests.T


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def scaled_affinity(items, interests):
    scores = items @ interests.T
    return scores / (scores.max(axis=1, keepdims=True) + 1e-12)
