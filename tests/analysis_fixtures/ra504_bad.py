"""RA504 firing: a dtype downcast contradicting the declared class."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f -> (N, D) f64")
def normalize(x):
    scaled = x / 255.0
    return scaled.astype("float32")
