"""RA301 silent: the argument carries an epsilon guard."""

import numpy as np


def nll_loss(probs, eps=1e-9):
    return -np.log(probs + eps).mean()
