"""RA501 firing: in-body shape contradictions under a @shape_contract."""

from repro.contracts import shape_contract


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def affinity(items, interests):
    # forgot the transpose: (N, D) @ (K, D) forces D == K
    return items @ interests


@shape_contract("(N, D) f, (K, D) f -> (N, K) f")
def scores_then_add(items, interests):
    scores = items @ interests.T
    # (N, K) + (N, D): K and D are distinct contract symbols
    return scores + items
