"""RA302 silent: the stable-softmax max-shift idiom."""

import numpy as np


def softmax_loss(logits, eps=1e-9):
    weights = np.exp(logits - logits.max())
    return weights / (weights.sum() + eps)
