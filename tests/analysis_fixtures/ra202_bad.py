"""RA202 firing: entropy-seeded Generator — runs are irreproducible."""

import numpy as np


def make_rng():
    return np.random.default_rng()
