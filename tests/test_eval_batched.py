"""Vectorized evaluation: ranks, metrics, stacked scoring, evaluator.

The batched pipeline must be *bit-identical* to the historical per-item
evaluator in its default configuration: same pessimistic tie-breaking,
same exclude semantics, same ``1/log2(rank+2)`` floats.  Property tests
drive every vectorized function against its scalar counterpart on tied
and excluded inputs; the stacked-GEMM scoring mode is held to float
tolerance only, as documented.
"""

import numpy as np
import pytest

from repro.eval import evaluate_span
from repro.eval.metrics import (
    hit_at_k,
    metrics_from_ranks,
    ndcg_at_k,
    rank_of_target,
    ranks_of_targets,
    ranks_of_user_targets,
)
from repro.experiments import make_strategy
from repro.incremental import TrainConfig
from repro.incremental.strategy import IncrementalStrategy
from repro.models.aggregator import score_items, score_items_batch


def tied_scores(rng, n):
    """Scores with heavy ties: quantized draws exercise the >= breaking."""
    return rng.integers(0, max(2, n // 4), size=n).astype(np.float64)


class TestRanksOfTargets:
    @pytest.mark.parametrize("n", [1, 7, 50])
    def test_matches_scalar_rank(self, rng, n):
        scores = tied_scores(rng, n)
        targets = rng.integers(0, n, size=3 * n)
        got = ranks_of_targets(scores, targets)
        want = [rank_of_target(scores, int(t)) for t in targets]
        assert got.tolist() == want

    def test_exclude_matches_scalar(self, rng):
        scores = tied_scores(rng, 40)
        exclude = rng.choice(40, size=10, replace=False).tolist()
        targets = list(range(40))  # includes excluded items as targets
        got = ranks_of_targets(scores, targets, exclude=exclude)
        want = [rank_of_target(scores, t, exclude=exclude) for t in targets]
        assert got.tolist() == want

    def test_empty_targets(self, rng):
        out = ranks_of_targets(tied_scores(rng, 10), [])
        assert out.shape == (0,) and out.dtype == np.int64


class TestRanksOfUserTargets:
    def test_matches_scalar_rank_per_case(self, rng):
        num_users, n = 9, 30
        matrix = np.stack([tied_scores(rng, n) for _ in range(num_users)])
        case_users = rng.integers(0, num_users, size=120)
        case_items = rng.integers(0, n, size=120)
        got = ranks_of_user_targets(matrix, case_users, case_items)
        want = [rank_of_target(matrix[u], int(i))
                for u, i in zip(case_users, case_items)]
        assert got.tolist() == want

    def test_chunking_boundary(self, rng, monkeypatch):
        import repro.eval.metrics as metrics

        monkeypatch.setattr(metrics, "_RANK_CHUNK_ELEMENTS", 7)
        matrix = np.stack([tied_scores(rng, 13) for _ in range(4)])
        case_users = rng.integers(0, 4, size=25)
        case_items = rng.integers(0, 13, size=25)
        got = ranks_of_user_targets(matrix, case_users, case_items)
        want = [rank_of_target(matrix[u], int(i))
                for u, i in zip(case_users, case_items)]
        assert got.tolist() == want

    def test_empty_cases(self, rng):
        matrix = np.stack([tied_scores(rng, 5)])
        out = ranks_of_user_targets(matrix, np.zeros(0, np.int64),
                                    np.zeros(0, np.int64))
        assert out.shape == (0,)


class TestMetricsFromRanks:
    def test_bit_equal_to_scalar_metrics(self):
        ranks = np.arange(0, 60, dtype=np.int64)
        hits, ndcgs = metrics_from_ranks(ranks, k=20)
        for rank, hit, ndcg in zip(ranks, hits, ndcgs):
            assert hit == hit_at_k(int(rank), 20)
            assert ndcg == ndcg_at_k(int(rank), 20)


class TestScoreItemsBatch:
    def make_interests(self, rng, d, ks):
        return [rng.normal(size=(k, d)) if k else np.zeros((0, d))
                for k in ks]

    def test_exact_mode_is_bitwise_identical(self, rng):
        emb = rng.normal(size=(60, 8))
        interests = self.make_interests(rng, 8, [0, 1, 2, 3, 3, 5, 2])
        out = score_items_batch(interests, emb)
        for u, iv in enumerate(interests):
            assert np.array_equal(out[u], score_items(iv, emb))

    def test_stacked_mode_within_tolerance(self, rng):
        emb = rng.normal(size=(60, 8))
        interests = self.make_interests(rng, 8, [0, 1, 2, 3, 3, 5, 2, 4, 4])
        fast = score_items_batch(interests, emb, exact=False)
        slow = score_items_batch(interests, emb)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_stacked_mode_chunking(self, rng, monkeypatch):
        import repro.models.aggregator as aggregator

        monkeypatch.setattr(aggregator, "_SCORE_CHUNK_COLS", 5)
        emb = rng.normal(size=(30, 6))
        interests = self.make_interests(rng, 6, [3, 3, 3, 3, 4, 4, 2])
        fast = score_items_batch(interests, emb, exact=False)
        slow = score_items_batch(interests, emb)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_empty_user_list(self, rng):
        emb = rng.normal(size=(10, 4))
        assert score_items_batch([], emb).shape == (0, 10)


@pytest.fixture(scope="module")
def trained(tiny_split):
    config = TrainConfig(epochs_pretrain=1, epochs_incremental=1,
                         num_negatives=4, seed=0)
    strategy = make_strategy("IMSR", "ComiRec-DR", tiny_split, config,
                             model_kwargs={"dim": 10, "num_interests": 2})
    strategy.pretrain()
    return strategy


class TestEvaluateSpanBatched:
    def legacy(self, strategy, span, k=20):
        """The historical evaluator: per-user scores, per-item ranks."""
        hits, ndcgs = [], []
        for user in span.user_ids():
            items = span.users[user].all_items
            if not items:
                continue
            scores = strategy.score_user(user)
            for item in items:
                rank = rank_of_target(scores, item)
                hits.append(hit_at_k(rank, k))
                ndcgs.append(ndcg_at_k(rank, k))
        return float(np.mean(hits)), float(np.mean(ndcgs)), len(hits)

    def test_batched_path_is_bit_identical_to_legacy(self, trained,
                                                     tiny_split):
        span = tiny_split.spans[1]
        hr, ndcg, n = self.legacy(trained, span)
        result = evaluate_span(trained.score_user, span, targets="all",
                               batch_score_fn=trained.score_users)
        assert result.hr == hr
        assert result.ndcg == ndcg
        assert result.num_cases == n

    def test_per_user_path_matches_batched_path(self, trained, tiny_split):
        span = tiny_split.spans[1]
        loop = evaluate_span(trained.score_user, span, targets="all",
                             keep_per_user=True)
        batched = evaluate_span(trained.score_user, span, targets="all",
                                keep_per_user=True,
                                batch_score_fn=trained.score_users)
        assert loop.hr == batched.hr
        assert loop.ndcg == batched.ndcg
        assert loop.per_user == batched.per_user

    def test_stacked_scoring_within_tolerance(self, trained, tiny_split):
        span = tiny_split.spans[1]
        exact = evaluate_span(trained.score_user, span, targets="all")
        fast = evaluate_span(
            trained.score_user, span, targets="all",
            batch_score_fn=lambda us: trained.score_users(us, exact=False))
        assert fast.num_cases == exact.num_cases
        assert fast.hr == pytest.approx(exact.hr, abs=1e-6)
        assert fast.ndcg == pytest.approx(exact.ndcg, abs=1e-6)

    def test_strict_protocol_also_identical(self, trained, tiny_split):
        span = tiny_split.spans[2]
        loop = evaluate_span(trained.score_user, span, targets="test")
        batched = evaluate_span(trained.score_user, span, targets="test",
                                batch_score_fn=trained.score_users)
        assert loop.hr == batched.hr
        assert loop.ndcg == batched.ndcg


class TestScoreUsersOverride:
    def test_score_user_override_routes_through_override(self, trained):
        class Custom(type(trained)):
            def score_user(self, user):
                return -super().score_user(user)

        custom = object.__new__(Custom)
        custom.__dict__.update(trained.__dict__)
        users = list(custom.states)[:5]
        got = custom.score_users(users)
        want = np.stack([custom.score_user(u) for u in users])
        assert np.array_equal(got, want)

    def test_base_strategy_uses_fast_path(self, trained):
        assert (type(trained).score_user is IncrementalStrategy.score_user)
        users = list(trained.states)[:5]
        got = trained.score_users(users)
        want = np.stack([trained.score_user(u) for u in users])
        assert np.array_equal(got, want)
