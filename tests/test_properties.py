"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor
from repro.autograd.ops import softmax, squash
from repro.autograd.tensor import _unbroadcast
from repro.eval.metrics import hit_at_k, ndcg_at_k, rank_of_target
from repro.incremental.imsr.nid import kl_from_uniform, puzzlement
from repro.incremental.imsr.pit import orthogonal_residual, projection_matrix
from repro.models.routing import squash_np

finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False,
                          allow_infinity=False, width=64)


def matrices(rows=st.integers(1, 6), cols=st.integers(1, 6)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite_floats)
    )


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_softmax_rows_are_distributions(x):
    out = softmax(Tensor(x), axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_squash_norm_strictly_below_one(x):
    norms = np.linalg.norm(squash(Tensor(x)).data, axis=-1)
    assert np.all(norms < 1.0)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_squash_np_matches_tensor_squash(x):
    assert np.allclose(squash_np(x), squash(Tensor(x)).data, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_unbroadcast_inverts_broadcast(x):
    # broadcasting x (r, c) to (5, r, c) and unbroadcasting sums over axis 0
    g = np.broadcast_to(x, (5,) + x.shape).copy()
    back = _unbroadcast(g, x.shape)
    assert np.allclose(back, 5 * x)


@settings(max_examples=40, deadline=None)
@given(matrices(rows=st.integers(1, 5), cols=st.integers(2, 8)),
       matrices(rows=st.integers(1, 5), cols=st.integers(2, 8)))
def test_projection_residual_orthogonality(existing, new):
    if existing.shape[1] != new.shape[1]:
        new = np.resize(new, (new.shape[0], existing.shape[1]))
    residual = orthogonal_residual(new, existing)
    # exact in real arithmetic; numerically the error scales with the
    # input magnitudes (the projector involves a pseudo-inverse)
    scale = max(1.0, float(np.abs(new).max() * np.abs(existing).max()))
    assert np.allclose(residual @ existing.T, 0.0, atol=1e-6 * scale)


@settings(max_examples=40, deadline=None)
@given(matrices(rows=st.integers(1, 5), cols=st.integers(2, 8)))
def test_projector_idempotent(existing):
    proj = projection_matrix(existing)
    assert np.allclose(proj @ proj, proj, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(matrices(rows=st.integers(1, 8), cols=st.integers(2, 6)),
       st.integers(1, 5))
def test_puzzlement_bounds(items, k):
    interests = np.resize(items, (k, items.shape[1]))
    scores = puzzlement(items, interests)
    assert np.all(scores >= 0.0)  # exp(-KL) may underflow to exactly 0
    assert np.all(scores <= 1.0)
    # KL >= 0 exactly; the numerical error of logsumexp scales with the
    # logit magnitudes (items/interests are bounded by 50 here)
    logit_scale = max(1.0, float(np.abs(items @ interests.T).max()))
    assert np.all(kl_from_uniform(items, interests) >= -1e-12 * logit_scale)


@settings(max_examples=60, deadline=None)
@given(arrays(np.float64, st.integers(2, 30), elements=finite_floats),
       st.integers(0, 29))
def test_rank_consistency(scores, idx):
    target = idx % len(scores)
    rank = rank_of_target(scores, target)
    assert 0 <= rank < len(scores)
    # exactly `rank` other items score >= target (pessimistic ties)
    better = sum(
        1 for j, s in enumerate(scores) if j != target and s >= scores[target]
    )
    assert rank == better


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100), st.integers(1, 50))
def test_metric_relationships(rank, k):
    hit = hit_at_k(rank, k)
    ndcg = ndcg_at_k(rank, k)
    assert 0.0 <= ndcg <= hit <= 1.0
    if rank == 0:
        assert ndcg == 1.0


@settings(max_examples=30, deadline=None)
@given(matrices(rows=st.integers(2, 6), cols=st.integers(2, 6)))
def test_autograd_sum_linearity(x):
    """d(sum(a*x))/dx == a everywhere, for random a."""
    t = Tensor(x, requires_grad=True)
    (t * 3.0).sum().backward()
    assert np.allclose(t.grad, 3.0)


@settings(max_examples=30, deadline=None)
@given(matrices(rows=st.integers(2, 5), cols=st.integers(2, 5)),
       matrices(rows=st.integers(2, 5), cols=st.integers(2, 5)))
def test_matmul_grad_shapes_always_match(a, b):
    """For any compatible pair, backward produces grads of input shape."""
    if a.shape[1] != b.shape[0]:
        b = np.resize(b, (a.shape[1], b.shape[1]))
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta @ tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
