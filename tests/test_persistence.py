"""Tests for checkpoint save/load round-trips and format-v2 integrity."""

import json

import numpy as np
import pytest

from repro.experiments import make_strategy, run_strategy
from repro.faults import FaultPlan, InjectedIOError, SimulatedCrash, active, flip_one_byte
from repro.incremental import TrainConfig
from repro.persistence import (
    CheckpointError,
    checkpoint_info,
    load_checkpoint,
    normalize_checkpoint_path,
    save_checkpoint,
    verify_checkpoint,
)


@pytest.fixture()
def fast_config():
    return TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                       num_negatives=4, seed=0)


def build(tiny_split, config, name="IMSR", model="ComiRec-DR"):
    return make_strategy(name, model, tiny_split, config,
                         model_kwargs={"dim": 10, "num_interests": 2},
                         strategy_kwargs={"c1": 0.2} if name == "IMSR" else {})


class TestRoundTrip:
    def test_params_and_states_restored(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)

        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)

        for (name, a), (_, b) in zip(strategy.model.named_parameters(),
                                     fresh.model.named_parameters()):
            assert np.allclose(a.data, b.data), name
        for user, state in strategy.states.items():
            restored = fresh.states[user]
            assert np.allclose(state.interests, restored.interests)
            assert np.allclose(state.prev_interests, restored.prev_interests)
            assert state.n_existing == restored.n_existing
            assert np.array_equal(state.created_span, restored.created_span)

    def test_variable_interest_counts_survive(self, tiny_split, fast_config,
                                              tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        # force heterogeneous interest counts across users
        users = sorted(strategy.states)
        strategy.model.expand_user(strategy.states[users[0]], 3, span=1)
        strategy.model.expand_user(strategy.states[users[1]], 1, span=1)
        counts = {u: s.num_interests for u, s in strategy.states.items()}
        assert len(set(counts.values())) > 1

        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        assert {u: s.num_interests for u, s in fresh.states.items()} == counts

    def test_scoring_identical_after_restore(self, tiny_split, fast_config,
                                             tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        for user in list(strategy.states)[:5]:
            assert np.allclose(strategy.score_user(user),
                               fresh.score_user(user))

    def test_sa_weights_restored(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config, model="ComiRec-SA")
        strategy.pretrain()
        path = tmp_path / "sa.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config, model="ComiRec-SA")
        load_checkpoint(fresh, path)
        for user, state in strategy.states.items():
            assert np.allclose(state.sa_weights.data,
                               fresh.states[user].sa_weights.data)

    def test_resume_training_after_restore(self, tiny_split, fast_config,
                                           tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        fresh.train_span(2)  # must not crash; states stay consistent
        for state in fresh.states.values():
            assert np.isfinite(state.interests).all()


class TestValidation:
    def test_family_mismatch_rejected(self, tiny_split, fast_config, tmp_path):
        dr = build(tiny_split, fast_config, model="ComiRec-DR")
        dr.pretrain()
        path = tmp_path / "dr.npz"
        save_checkpoint(dr, path)
        sa = build(tiny_split, fast_config, model="ComiRec-SA")
        with pytest.raises(ValueError, match="family"):
            load_checkpoint(sa, path)

    def test_shape_mismatch_rejected(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        save_checkpoint(strategy, tmp_path / "a.npz")
        other = make_strategy("IMSR", "ComiRec-DR", tiny_split, fast_config,
                              model_kwargs={"dim": 6, "num_interests": 2})
        with pytest.raises(ValueError, match="shape"):
            load_checkpoint(other, tmp_path / "a.npz")

    def test_checkpoint_info(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        path = tmp_path / "info.npz"
        save_checkpoint(strategy, path)
        meta = checkpoint_info(path)
        assert meta["strategy"] == "IMSR"
        assert meta["model_family"] == "dr"
        assert len(meta["users"]) == len(strategy.states)

    def test_strict_rejects_unknown_users(self, tiny_split, fast_config,
                                          tmp_path):
        strategy = build(tiny_split, fast_config)
        path = save_checkpoint(strategy, tmp_path / "full.npz")
        fresh = build(tiny_split, fast_config)
        dropped = sorted(fresh.states)[:2]
        snapshot = fresh.model.state_dict()
        for user in dropped:
            del fresh.states[user]
        with pytest.raises(CheckpointError, match="2 user"):
            load_checkpoint(fresh, path)
        # the failed strict load must not have touched anything
        for name, value in fresh.model.state_dict().items():
            assert np.array_equal(value, snapshot[name]), name

    def test_strict_false_skips_and_warns(self, tiny_split, fast_config,
                                          tmp_path, caplog):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        path = save_checkpoint(strategy, tmp_path / "full.npz")
        fresh = build(tiny_split, fast_config)
        dropped = sorted(fresh.states)[0]
        del fresh.states[dropped]
        with caplog.at_level("WARNING", logger="repro.persistence"):
            load_checkpoint(fresh, path, strict=False)
        assert any(str(dropped) in rec.getMessage()
                   for rec in caplog.records)
        # every user the strategy does know was still restored
        for user, state in fresh.states.items():
            assert np.allclose(state.interests,
                               strategy.states[user].interests)


class TestPathNormalization:
    def test_save_without_suffix_lands_at_npz(self, tiny_split, fast_config,
                                              tmp_path):
        strategy = build(tiny_split, fast_config)
        landed = save_checkpoint(strategy, tmp_path / "span3")
        assert landed == tmp_path / "span3.npz"
        assert landed.exists()

    def test_load_and_verify_accept_suffixless_path(self, tiny_split,
                                                    fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        save_checkpoint(strategy, tmp_path / "span3")
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, tmp_path / "span3")  # symmetric round trip
        assert verify_checkpoint(tmp_path / "span3")["version"] == 2

    def test_normalize_is_idempotent(self):
        assert normalize_checkpoint_path("a/b.npz").name == "b.npz"
        assert normalize_checkpoint_path("a/b").name == "b.npz"
        assert normalize_checkpoint_path("a/b.v2").name == "b.v2.npz"


class TestIntegrity:
    """Format v2: any flipped byte or truncation must be detected."""

    @pytest.fixture()
    def saved(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        path = save_checkpoint(strategy, tmp_path / "ckpt.npz")
        return strategy, path

    def test_verify_returns_manifest(self, saved):
        _, path = saved
        meta = verify_checkpoint(path)
        assert meta["version"] == 2
        assert set(meta["rng"]) == {"model", "sampler", "strategy"}
        assert all("sha256" in entry for entry in meta["arrays"].values())

    def test_any_flipped_byte_is_rejected(self, tiny_split, fast_config,
                                          saved):
        """Property test: flip one byte at structural offsets and a seeded
        sample of arbitrary offsets; verification and loading must always
        reject, and a failed load must leave the strategy unmutated."""
        strategy, path = saved
        size = path.stat().st_size
        rng = np.random.default_rng(42)
        offsets = {0, 3, size - 1, size - 45, size // 2}  # magic, trailer, body
        offsets.update(int(o) for o in rng.integers(size, size=40))
        fresh = build(tiny_split, fast_config)
        snapshot = fresh.model.state_dict()
        for offset in sorted(offsets):
            flip_one_byte(path, offset=offset)
            with pytest.raises(CheckpointError):
                verify_checkpoint(path)
            with pytest.raises(CheckpointError):
                load_checkpoint(fresh, path)
            for name, value in fresh.model.state_dict().items():
                assert np.array_equal(value, snapshot[name]), (offset, name)
            flip_one_byte(path, offset=offset)  # XOR twice restores
        verify_checkpoint(path)  # file is intact again

    @pytest.mark.parametrize("keep", ["1-byte", "half", "minus-trailer",
                                      "minus-1"])
    def test_truncation_is_rejected(self, saved, tmp_path, keep):
        _, path = saved
        data = path.read_bytes()
        cut = {"1-byte": 1, "half": len(data) // 2,
               "minus-trailer": len(data) - 90, "minus-1": len(data) - 1}[keep]
        torn = tmp_path / "torn.npz"
        torn.write_bytes(data[:cut])
        with pytest.raises(CheckpointError):
            verify_checkpoint(torn)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            verify_checkpoint(tmp_path / "nope.npz")

    def test_v2_without_trailer_is_rejected(self, saved, tmp_path):
        """Stripping the whole-file trailer must not downgrade a v2 file
        to unchecked reads."""
        _, path = saved
        stripped = tmp_path / "stripped.npz"
        stripped.write_bytes(path.read_bytes()[:-90])
        with pytest.raises(CheckpointError, match="trailer"):
            verify_checkpoint(stripped)

    def test_direct_np_load_still_works(self, saved):
        """The trailer lives after the zip EOCD, so plain ``np.load`` on
        the path keeps working for ad-hoc inspection."""
        _, path = saved
        with np.load(path, allow_pickle=False) as archive:
            assert "manifest" in archive.files


class TestExtraState:
    """Strategy state beyond the base contract (replay pools, Fisher
    estimates, private RNG streams) rides in the checkpoint."""

    def test_ader_pool_and_rng_round_trip(self, tiny_split, fast_config,
                                          tmp_path):
        strategy = build(tiny_split, fast_config, name="ADER")
        strategy.pretrain()
        strategy.train_span(1)
        path = save_checkpoint(strategy, tmp_path / "ader.npz")
        meta = verify_checkpoint(path)
        assert "pool" in meta["rng"]
        assert any(name.startswith("extra/") for name in meta["arrays"])

        fresh = build(tiny_split, fast_config, name="ADER")
        load_checkpoint(fresh, path)
        assert fresh.pool == strategy.pool
        assert (fresh._pool_rng.bit_generator.state
                == strategy._pool_rng.bit_generator.state)

    def test_load_rolls_back_pool_and_rng_of_mutated_strategy(
            self, tiny_split, fast_config, tmp_path):
        """The divergence guard restores checkpoints into a *dirty*
        strategy: pool contents and the pool RNG must roll back too."""
        strategy = build(tiny_split, fast_config, name="ADER")
        strategy.pretrain()
        path = save_checkpoint(strategy, tmp_path / "good.npz")
        saved_pool = {u: [list(s) for s in b]
                      for u, b in strategy.pool.items()}
        saved_rng = strategy._pool_rng.bit_generator.state

        strategy.train_span(1)  # grows the pool, advances the RNG
        assert strategy.pool != saved_pool

        load_checkpoint(strategy, path)
        assert {u: [list(s) for s in b]
                for u, b in strategy.pool.items()} == saved_pool
        assert strategy._pool_rng.bit_generator.state == saved_rng

    def test_ewc_fisher_and_anchors_round_trip(self, tiny_split, fast_config,
                                               tmp_path):
        strategy = build(tiny_split, fast_config, name="EWC")
        strategy.pretrain()
        assert strategy.fisher  # pretraining estimated the Fisher
        path = save_checkpoint(strategy, tmp_path / "ewc.npz")

        fresh = build(tiny_split, fast_config, name="EWC")
        assert not fresh.fisher
        load_checkpoint(fresh, path)
        assert set(fresh.fisher) == set(strategy.fisher)
        for name in strategy.fisher:
            assert np.array_equal(fresh.fisher[name], strategy.fisher[name])
        assert set(fresh.anchors) == set(strategy.anchors)
        for name in strategy.anchors:
            assert np.array_equal(fresh.anchors[name], strategy.anchors[name])

    def test_foreign_extra_state_rejected_before_mutation(
            self, tiny_split, fast_config, tmp_path):
        """A checkpoint whose extra state the target strategy cannot
        restore fails the load before any base state is touched."""
        ader = build(tiny_split, fast_config, name="ADER")
        ader.pretrain()
        path = save_checkpoint(ader, tmp_path / "ader.npz")

        ft = build(tiny_split, fast_config, name="FT")
        snapshot = ft.model.state_dict()
        with pytest.raises(CheckpointError, match="extra strategy state"):
            load_checkpoint(ft, path)
        for name, value in ft.model.state_dict().items():
            assert np.array_equal(value, snapshot[name]), name

    def test_v1_checkpoint_refused_for_pooled_strategy(
            self, tiny_split, fast_config, tmp_path):
        """A v1 archive carries no replay pool; silently resuming ADER
        from one would train a different algorithm, so it must raise."""
        strategy = build(tiny_split, fast_config, name="ADER")
        strategy.pretrain()
        path = tmp_path / "v1.npz"
        TestV1Compatibility().write_v1(strategy, path)
        fresh = build(tiny_split, fast_config, name="ADER")
        with pytest.raises(CheckpointError, match="replay pool"):
            load_checkpoint(fresh, path)


class TestV1Compatibility:
    def write_v1(self, strategy, path):
        """Re-create the pre-manifest archive layout byte-for-byte."""
        arrays = {}
        for name, param in strategy.model.named_parameters():
            arrays[f"param/{name}"] = param.data
        meta = {
            "version": 1,
            "strategy": strategy.name,
            "model_family": strategy.model.family,
            "users": sorted(strategy.states),
        }
        for user, state in strategy.states.items():
            arrays[f"user/{user}/interests"] = state.interests
            arrays[f"user/{user}/prev_interests"] = state.prev_interests
            arrays[f"user/{user}/created_span"] = state.created_span
            arrays[f"user/{user}/n_existing"] = np.array([state.n_existing])
            if state.sa_weights is not None:
                arrays[f"user/{user}/sa_weights"] = state.sa_weights.data
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(str(path), **arrays)

    def test_v1_archive_still_loads(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        path = tmp_path / "v1.npz"
        self.write_v1(strategy, path)

        fresh = build(tiny_split, fast_config)
        meta = load_checkpoint(fresh, path)
        assert meta["version"] == 1
        for (name, a), (_, b) in zip(strategy.model.named_parameters(),
                                     fresh.model.named_parameters()):
            assert np.allclose(a.data, b.data), name
        for user, state in strategy.states.items():
            assert np.allclose(state.interests,
                               fresh.states[user].interests)

    def test_v1_verify_reads_every_array(self, tiny_split, fast_config,
                                         tmp_path):
        strategy = build(tiny_split, fast_config)
        path = tmp_path / "v1.npz"
        self.write_v1(strategy, path)
        assert verify_checkpoint(path)["version"] == 1
        # a torn v1 file is still rejected (zip CRC / EOF checks)
        torn = tmp_path / "torn-v1.npz"
        torn.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError):
            verify_checkpoint(torn)


class TestIOFaults:
    """Atomic writes survive planned IO failures and torn writes."""

    def test_io_error_leaves_previous_checkpoint_intact(
            self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        path = save_checkpoint(strategy, tmp_path / "ckpt.npz")
        before = path.read_bytes()

        strategy.pretrain()  # change the state the next save would write
        with active(FaultPlan().io_error_on_write(0)):
            with pytest.raises(InjectedIOError):
                save_checkpoint(strategy, path)

        assert path.read_bytes() == before
        assert not sorted(tmp_path.glob("*.tmp"))  # no staging leftovers
        verify_checkpoint(path)

    def test_crash_during_write_leaves_previous_checkpoint_intact(
            self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        path = save_checkpoint(strategy, tmp_path / "ckpt.npz")
        before = path.read_bytes()

        strategy.pretrain()
        with active(FaultPlan().crash_during_write(0)):
            with pytest.raises(SimulatedCrash):
                save_checkpoint(strategy, path)  # dies before os.replace

        assert path.read_bytes() == before
        assert not sorted(tmp_path.glob("*.tmp"))  # no staging leftovers
        verify_checkpoint(path)

    def test_concurrent_writers_do_not_clobber_each_others_temp(
            self, tmp_path):
        """Staging names are unique per call, so a write never touches
        another writer's in-flight temp file for the same target."""
        from repro.persistence import atomic_write_bytes

        target = tmp_path / "ckpt.npz"
        # another process's staging file, under the old fixed sibling name
        other = tmp_path / "ckpt.npz.tmp"
        other.write_bytes(b"other writer's in-flight bytes")

        atomic_write_bytes(b"payload", target)
        assert target.read_bytes() == b"payload"
        assert other.read_bytes() == b"other writer's in-flight bytes"

    def test_round_trip_after_injected_failure(self, tiny_split, fast_config,
                                               tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        path = tmp_path / "ckpt.npz"
        with active(FaultPlan().io_error_on_write(0)):
            with pytest.raises(InjectedIOError):
                save_checkpoint(strategy, path)
        assert not path.exists()

        save_checkpoint(strategy, path)  # retry without the fault succeeds
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        for user in list(strategy.states)[:5]:
            assert np.allclose(strategy.score_user(user),
                               fresh.score_user(user))
