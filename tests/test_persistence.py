"""Tests for checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.experiments import make_strategy, run_strategy
from repro.incremental import TrainConfig
from repro.persistence import checkpoint_info, load_checkpoint, save_checkpoint


@pytest.fixture()
def fast_config():
    return TrainConfig(epochs_pretrain=2, epochs_incremental=1,
                       num_negatives=4, seed=0)


def build(tiny_split, config, name="IMSR", model="ComiRec-DR"):
    return make_strategy(name, model, tiny_split, config,
                         model_kwargs={"dim": 10, "num_interests": 2},
                         strategy_kwargs={"c1": 0.2} if name == "IMSR" else {})


class TestRoundTrip:
    def test_params_and_states_restored(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)

        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)

        for (name, a), (_, b) in zip(strategy.model.named_parameters(),
                                     fresh.model.named_parameters()):
            assert np.allclose(a.data, b.data), name
        for user, state in strategy.states.items():
            restored = fresh.states[user]
            assert np.allclose(state.interests, restored.interests)
            assert np.allclose(state.prev_interests, restored.prev_interests)
            assert state.n_existing == restored.n_existing
            assert np.array_equal(state.created_span, restored.created_span)

    def test_variable_interest_counts_survive(self, tiny_split, fast_config,
                                              tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        # force heterogeneous interest counts across users
        users = sorted(strategy.states)
        strategy.model.expand_user(strategy.states[users[0]], 3, span=1)
        strategy.model.expand_user(strategy.states[users[1]], 1, span=1)
        counts = {u: s.num_interests for u, s in strategy.states.items()}
        assert len(set(counts.values())) > 1

        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        assert {u: s.num_interests for u, s in fresh.states.items()} == counts

    def test_scoring_identical_after_restore(self, tiny_split, fast_config,
                                             tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        for user in list(strategy.states)[:5]:
            assert np.allclose(strategy.score_user(user),
                               fresh.score_user(user))

    def test_sa_weights_restored(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config, model="ComiRec-SA")
        strategy.pretrain()
        path = tmp_path / "sa.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config, model="ComiRec-SA")
        load_checkpoint(fresh, path)
        for user, state in strategy.states.items():
            assert np.allclose(state.sa_weights.data,
                               fresh.states[user].sa_weights.data)

    def test_resume_training_after_restore(self, tiny_split, fast_config,
                                           tmp_path):
        strategy = build(tiny_split, fast_config)
        strategy.pretrain()
        strategy.train_span(1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(strategy, path)
        fresh = build(tiny_split, fast_config)
        load_checkpoint(fresh, path)
        fresh.train_span(2)  # must not crash; states stay consistent
        for state in fresh.states.values():
            assert np.isfinite(state.interests).all()


class TestValidation:
    def test_family_mismatch_rejected(self, tiny_split, fast_config, tmp_path):
        dr = build(tiny_split, fast_config, model="ComiRec-DR")
        dr.pretrain()
        path = tmp_path / "dr.npz"
        save_checkpoint(dr, path)
        sa = build(tiny_split, fast_config, model="ComiRec-SA")
        with pytest.raises(ValueError, match="family"):
            load_checkpoint(sa, path)

    def test_shape_mismatch_rejected(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        save_checkpoint(strategy, tmp_path / "a.npz")
        other = make_strategy("IMSR", "ComiRec-DR", tiny_split, fast_config,
                              model_kwargs={"dim": 6, "num_interests": 2})
        with pytest.raises(ValueError, match="shape"):
            load_checkpoint(other, tmp_path / "a.npz")

    def test_checkpoint_info(self, tiny_split, fast_config, tmp_path):
        strategy = build(tiny_split, fast_config)
        path = tmp_path / "info.npz"
        save_checkpoint(strategy, path)
        meta = checkpoint_info(path)
        assert meta["strategy"] == "IMSR"
        assert meta["model_family"] == "dr"
        assert len(meta["users"]) == len(strategy.states)
