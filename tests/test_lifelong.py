"""Tests for the lifelong MSR baselines (MIMN, LimaRec)."""

import numpy as np
import pytest

from repro.lifelong import LimaRec, LimaRecModel, MIMN
from repro.lifelong.limarec import _phi_np
from repro.models import ComiRecDR


class TestMIMN:
    def make(self, tiny_split, train_config, **kwargs):
        model = ComiRecDR(tiny_split.num_items, dim=12, num_interests=3, seed=0)
        return MIMN(model, tiny_split, train_config, **kwargs)

    def test_memory_seeded_from_interests(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config, memory_slots=8)
        strategy.pretrain()
        for user, state in strategy.states.items():
            memory = strategy.memory[user]
            assert memory.shape == (8, 12)
            assert np.allclose(memory[:3], state.interests)

    def test_memory_truncated_when_slots_few(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config, memory_slots=2)
        strategy.pretrain()
        assert strategy.memory[0].shape == (2, 12)

    def test_parameters_frozen_after_pretrain(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        strategy.pretrain()
        params_before = strategy.model.state_dict()
        strategy.train_span(1)
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, params_before[name])

    def test_writes_move_memory(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        strategy.pretrain()
        span = tiny_split.spans[0]
        user = span.user_ids()[0]
        before = strategy.memory[user].copy()
        strategy.train_span(1)
        assert not np.allclose(before, strategy.memory[user])

    def test_write_is_convex_toward_item(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config, write_strength=1.0)
        strategy.pretrain()
        user = 0
        item = 5
        emb = strategy.model.item_emb.weight.data[item]
        strategy._write(user, item)
        memory = strategy.memory[user]
        # with strength 1 and soft addressing, each slot moved toward emb
        sims_to_item = memory @ emb
        assert sims_to_item.max() >= (emb @ emb) * 0.01

    def test_score_user_shape(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        strategy.pretrain()
        assert strategy.score_user(0).shape == (tiny_split.num_items,)

    def test_interest_counts_fixed(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config, memory_slots=6)
        strategy.pretrain()
        strategy.train_span(1)
        assert set(strategy.interest_counts().values()) == {6}


class TestLimaRec:
    def make(self, tiny_split, train_config):
        model = LimaRecModel(tiny_split.num_items, dim=12, num_interests=3,
                             key_dim=6, seed=0)
        return LimaRec(model, tiny_split, train_config)

    def test_requires_limarec_model(self, tiny_split, train_config):
        with pytest.raises(TypeError):
            LimaRec(ComiRecDR(tiny_split.num_items), tiny_split, train_config)

    def test_phi_positive(self, rng):
        assert (_phi_np(rng.normal(size=(100,)) * 10) > 0).all()

    def test_incremental_state_matches_batch(self, tiny_split, train_config):
        """Absorbing a sequence item-by-item must equal absorbing it at
        once — the linear-attention invariant LimaRec relies on."""
        strategy = self.make(tiny_split, train_config)
        user = 0
        items = [1, 5, 9, 3, 7]
        strategy._init_state(user)
        strategy._absorb(user, items)
        s_once = strategy.state_s[user].copy()
        z_once = strategy.state_z[user].copy()

        strategy._init_state(user)
        for item in items:
            strategy._absorb(user, [item])
        assert np.allclose(strategy.state_s[user], s_once)
        assert np.allclose(strategy.state_z[user], z_once)

    def test_full_forward_matches_incremental_readout(self, tiny_split,
                                                      train_config):
        strategy = self.make(tiny_split, train_config)
        model: LimaRecModel = strategy.model
        items = [2, 8, 4, 6]
        state = strategy.states[0]
        batch = model.compute_interests(state, items).data

        strategy._init_state(0)
        strategy._absorb(0, items)
        scores = strategy.score_user(0)
        # reconstruct interests from the incremental readout and compare
        query_emb = model.item_emb.weight.data[items[-1]]
        interests = np.zeros((3, 12))
        for h in range(3):
            q = _phi_np(model.w_q.data[h] @ query_emb)
            interests[h] = (q @ strategy.state_s[0][h]) / (
                q @ strategy.state_z[0][h] + 1e-6)
        assert np.allclose(interests, batch, atol=1e-6)
        assert np.allclose(
            scores, (model.item_emb.weight.data @ interests.T).max(axis=1))

    def test_parameters_frozen_after_pretrain(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        strategy.pretrain()
        before = strategy.model.state_dict()
        strategy.train_span(1)
        for name, value in strategy.model.state_dict().items():
            assert np.allclose(value, before[name])

    def test_pretraining_improves_loss(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        model = strategy.model
        state = model.init_user_state(0)
        negatives = np.array([[1, 2, 3]])
        H = model.compute_interests(state, [4, 9, 2])
        before = model.loss_targets(H, [7], negatives).item()
        strategy.pretrain()
        H = model.compute_interests(state, [4, 9, 2])
        after = model.loss_targets(H, [7], negatives).item()
        assert np.isfinite(after)

    def test_span_updates_state_not_params(self, tiny_split, train_config):
        strategy = self.make(tiny_split, train_config)
        strategy.pretrain()
        user = tiny_split.spans[0].user_ids()[0]
        s_before = strategy.state_s[user].copy()
        strategy.train_span(1)
        assert not np.allclose(strategy.state_s[user], s_before)
