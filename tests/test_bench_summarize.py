"""Tests for the benchmark-output summarizer."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_summarize",
    Path(__file__).resolve().parent.parent / "benchmarks" / "summarize.py",
)
summarize = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(summarize)

SAMPLE = """\
===== Table III: performance comparison =====
some table rows
3/5 shape checks hold
.
===== Figure 4: trends =====
1/1 shape checks hold
"""


class TestParse:
    def test_sections_parsed(self):
        sections = summarize.parse_sections(SAMPLE)
        assert sections == [
            ("Table III: performance comparison", 3, 5),
            ("Figure 4: trends", 1, 1),
        ]

    def test_ignores_unmatched_tallies(self):
        text = "4/4 shape checks hold\n"
        assert summarize.parse_sections(text) == []

    def test_markdown_totals(self):
        md = summarize.to_markdown([("A", 1, 2), ("B", 2, 2)])
        assert "| A | 1/2 |" in md
        assert "**3/4**" in md

    def test_main_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "bench.txt"
        path.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_main_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("nothing here")
        assert summarize.main(["summarize.py", str(path)]) == 1

    def test_main_usage(self):
        assert summarize.main(["summarize.py"]) == 2


CLEAN_LINT = """\
{"version": 1, "tool": "repro.analysis",
 "summary": {"findings": 0, "parse_errors": 0, "files_scanned": 77,
             "by_rule": {}},
 "exit_code": 0}
"""

DIRTY_LINT = """\
{"version": 1, "tool": "repro.analysis",
 "summary": {"findings": 3, "parse_errors": 1, "files_scanned": 77,
             "by_rule": {"RA101": 2, "RA301": 1}},
 "exit_code": 1}
"""


class TestLintIngestion:
    def test_parse_clean_report(self):
        assert summarize.parse_lint(CLEAN_LINT) == (
            "static analysis", "clean (77 files; RA6xx 0, RA7xx 0, RA8xx 0)")

    def test_parse_dirty_report(self):
        title, cell = summarize.parse_lint(DIRTY_LINT)
        assert title == "static analysis"
        assert "4 finding(s)" in cell
        assert "RA101×2" in cell and "RA301×1" in cell

    def test_markdown_appends_lint_row(self):
        md = summarize.to_markdown([("A", 1, 1)],
                                   lint=("static analysis", "clean (77 files)"))
        assert md.splitlines()[-1] == "| static analysis | clean (77 files) |"

    def test_main_with_lint_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        lint = tmp_path / "lint.json"
        lint.write_text(CLEAN_LINT)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(lint)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "clean (77 files; RA6xx 0, RA7xx 0, RA8xx 0)" in out

    def test_main_with_missing_lint_file(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(tmp_path / "absent.json")]) == 2

    def test_main_lint_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench), "--lint"]) == 2

class TestContractCoverage:
    def write_pkg(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "models"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(
            "from repro.contracts import shape_contract\n"
            "\n"
            "@shape_contract('(N) f -> () f')\n"
            "def total(x):\n"
            "    return x.sum()\n"
            "\n"
            "def helper(x):\n"
            "    return x\n"
            "\n"
            "def _private(x):\n"
            "    return x\n"
        )
        return tmp_path / "src"

    def test_counts_public_and_annotated(self, tmp_path):
        src = self.write_pkg(tmp_path)
        coverage = summarize.contract_coverage(src)
        assert ("repro.models", 1, 2) in coverage

    def test_real_tree_coverage(self):
        src = Path(__file__).resolve().parent.parent / "src"
        coverage = dict(
            (pkg, (annotated, total))
            for pkg, annotated, total in summarize.contract_coverage(src))
        # the ISSUE floor: >=25 functions carry contracts repo-wide
        # (private helpers are excluded here, so allow a small margin)
        assert sum(a for a, _ in coverage.values()) >= 25
        for pkg in ("repro.autograd", "repro.models",
                    "repro.incremental", "repro.eval", "repro.nn"):
            annotated, total = coverage[pkg]
            assert annotated > 0, pkg
            assert total >= annotated

    def test_markdown_rows_and_overall(self):
        md = summarize.to_markdown(
            [("A", 1, 1)],
            coverage=[("repro.models", 3, 10), ("repro.nn", 2, 4)])
        assert "| contracts: repro.models | 3/10 annotated |" in md
        assert md.splitlines()[-1] == (
            "| **contracts overall** | **5/14 annotated** |")

    def test_main_with_contracts_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        src = self.write_pkg(tmp_path)
        assert summarize.main(["summarize.py", str(bench),
                               "--contracts", str(src)]) == 0
        out = capsys.readouterr().out
        assert "| contracts: repro.models | 1/2 annotated |" in out

    def test_main_rejects_bad_contracts_root(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--contracts", str(tmp_path / "nope")]) == 2

    def test_main_contracts_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--contracts"]) == 2


ROBUSTNESS = """\
{"version": 1, "tool": "repro.robustness",
 "checkpoint": {"size_bytes": 65536, "arrays": 34,
                "save_ms": 12.5, "verify_ms": 4.25, "load_ms": 6.0},
 "run": {"plain_s": 10.0, "journaled_s": 10.4,
         "journal_overhead_pct": 4.0,
         "resume_s": 0.5, "resume_speedup": 20.0, "resumed_spans": 3}}
"""


class TestRobustnessIngestion:
    def test_parse_report_rows(self):
        rows = dict(summarize.parse_robustness(ROBUSTNESS))
        assert rows["checkpoint save"] == "12.5 ms (64 KiB, 34 arrays)"
        assert rows["checkpoint verify"] == "4.2 ms"
        assert rows["checkpoint load"] == "6.0 ms"
        assert rows["journaled-run overhead"] == "+4.0% wall clock"
        assert rows["resume speedup"] == "20.0x (3 spans reused)"

    def test_parse_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a robustness report"):
            summarize.parse_robustness('{"tool": "something-else"}')

    def test_markdown_prefixes_rows(self):
        md = summarize.to_markdown(
            [("A", 1, 1)], robustness=[("checkpoint save", "1.0 ms")])
        assert md.splitlines()[-1] == "| robustness: checkpoint save | 1.0 ms |"

    def test_main_with_robustness_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        report = tmp_path / "robustness.json"
        report.write_text(ROBUSTNESS)
        assert summarize.main(["summarize.py", str(bench),
                               "--robustness", str(report)]) == 0
        out = capsys.readouterr().out
        assert "| robustness: resume speedup | 20.0x (3 spans reused) |" in out

    def test_main_with_missing_robustness_file(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(
            ["summarize.py", str(bench),
             "--robustness", str(tmp_path / "absent.json")]) == 2

    def test_main_robustness_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--robustness"]) == 2

    def test_end_to_end_with_real_probe(self, tmp_path, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "robustness_probe",
            Path(__file__).resolve().parent.parent / "benchmarks"
            / "robustness_probe.py")
        probe = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(probe)

        report = probe.measure(repeats=1, workdir=tmp_path)
        assert report["tool"] == "repro.robustness"
        assert report["checkpoint"]["size_bytes"] > 0
        assert report["run"]["resumed_spans"] == 3

        report_path = tmp_path / "robustness.json"
        report_path.write_text(summarize.json.dumps(report))
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--robustness", str(report_path)]) == 0
        assert "robustness: checkpoint save" in capsys.readouterr().out


PERF = """\
{"version": 1, "tool": "repro.perf", "users_per_batch": 8,
 "scales": {
   "small": {"world": {"users": 32, "items": 200, "spans": 3},
             "train": {"per_user_s": 0.03, "batched_s": 0.01, "speedup": 3.0},
             "extract": {"per_user_s": 0.004, "batched_s": 0.001,
                         "speedup": 4.0},
             "eval": {"per_user_s": 0.002, "batched_s": 0.0004,
                      "speedup": 5.0, "exact_s": 0.001, "exact_speedup": 2.0,
                      "hr": 0.4, "ndcg": 0.2}}}}
"""


PERF_WITH_BACKEND = PERF.replace(
    '"hr": 0.4, "ndcg": 0.2}', '"hr": 0.4, "ndcg": 0.2},\n'
    '             "backend": {"name": "fast", "train_s": 0.006,\n'
    '                         "train_speedup": 1.7, "extract_s": 0.0005,\n'
    '                         "extract_speedup": 2.0, "eval_s": 0.0003,\n'
    '                         "eval_speedup": 1.3, "hr": 0.41, "ndcg": 0.21,\n'
    '                         "hr_drift": 0.01, "ndcg_drift": 0.01}')


class TestPerfIngestion:
    def test_parse_report_rows(self):
        rows = dict(summarize.parse_perf(PERF))
        assert rows["small (32u/200i, B=8)"] == (
            "train x3.0  extract x4.0  eval x5.0")

    def test_reports_without_backend_section_have_no_backend_row(self):
        assert not [label for label, _ in summarize.parse_perf(PERF)
                    if "backend" in label]

    def test_parse_backend_rows(self):
        rows = dict(summarize.parse_perf(PERF_WITH_BACKEND))
        # the plain batched row is unchanged by the backend section
        assert rows["small (32u/200i, B=8)"] == (
            "train x3.0  extract x4.0  eval x5.0")
        assert rows["small [fast backend]"] == (
            "train x1.7  extract x2.0  eval x1.3  hr_drift 0.01")

    def test_parse_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a perf report"):
            summarize.parse_perf('{"tool": "something-else"}')

    def test_markdown_prefixes_rows(self):
        md = summarize.to_markdown(
            [("A", 1, 1)], perf=[("small", "train x3.0")])
        assert md.splitlines()[-1] == "| perf: small | train x3.0 |"

    def test_main_with_perf_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        report = tmp_path / "BENCH_perf.json"
        report.write_text(PERF)
        assert summarize.main(["summarize.py", str(bench),
                               "--perf", str(report)]) == 0
        out = capsys.readouterr().out
        assert "| perf: small (32u/200i, B=8) | " \
               "train x3.0  extract x4.0  eval x5.0 |" in out

    def test_main_with_missing_perf_file(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(
            ["summarize.py", str(bench),
             "--perf", str(tmp_path / "absent.json")]) == 2

    def test_main_perf_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench), "--perf"]) == 2


class TestLintIngestionEndToEnd:
    def test_end_to_end_with_real_analyzer_output(self, tmp_path, capsys):
        from repro.analysis import analyze_paths, render_json

        module = tmp_path / "m.py"
        module.write_text("x = 1\n")
        lint = tmp_path / "lint.json"
        lint.write_text(render_json(analyze_paths([str(module)])))
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(lint)]) == 0
        assert ("clean (1 files; RA6xx 0, RA7xx 0, RA8xx 0)"
                in capsys.readouterr().out)


SANITIZE_REPORT = """{
 "version": 1, "tool": "repro.sanitize",
 "capture_ns": 44.0, "flag_test_ns": 19.0,
 "capture_calls": 360, "graph_builds": 11946,
 "run_off_s": 0.22, "run_enforced_s": 0.29,
 "disabled_overhead_pct": 0.11, "enforced_overhead_pct": 28.9,
 "budget_pct": 2.0}
"""


class TestSanitizeIngestion:
    def test_parse_report_rows(self):
        rows = summarize.parse_sanitize(SANITIZE_REPORT)
        labels = [label for label, _ in rows]
        assert labels == ["disabled guards", "enforced run"]
        assert "0.110% of run (budget 2%)" in rows[0][1]
        assert "+28.9% wall clock" in rows[1][1]

    def test_wrong_tool_rejected(self):
        with pytest.raises(ValueError):
            summarize.parse_sanitize('{"tool": "repro.obs"}')

    def test_main_with_sanitize_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        report = tmp_path / "BENCH_sanitize.json"
        report.write_text(SANITIZE_REPORT)
        assert summarize.main(["summarize.py", str(bench),
                               "--sanitize", str(report)]) == 0
        out = capsys.readouterr().out
        assert "| sanitize: disabled guards |" in out
        assert "| sanitize: enforced run |" in out

    def test_main_sanitize_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(
            ["summarize.py", str(bench), "--sanitize"]) == 2


class TestRuleFamilyRollup:
    def test_families_grouped_by_hundreds(self):
        families = summarize._rule_family_counts(
            {"RA101": 2, "RA601": 1, "RA603": 4, "RA702": 3})
        assert families == {"RA1xx": 2, "RA6xx": 5, "RA7xx": 3}

    def test_dirty_report_keeps_tracked_families_visible(self):
        _, cell = summarize.parse_lint(DIRTY_LINT)
        assert "RA6xx 0, RA7xx 0, RA8xx 0" in cell
