"""Tests for the benchmark-output summarizer."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_summarize",
    Path(__file__).resolve().parent.parent / "benchmarks" / "summarize.py",
)
summarize = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(summarize)

SAMPLE = """\
===== Table III: performance comparison =====
some table rows
3/5 shape checks hold
.
===== Figure 4: trends =====
1/1 shape checks hold
"""


class TestParse:
    def test_sections_parsed(self):
        sections = summarize.parse_sections(SAMPLE)
        assert sections == [
            ("Table III: performance comparison", 3, 5),
            ("Figure 4: trends", 1, 1),
        ]

    def test_ignores_unmatched_tallies(self):
        text = "4/4 shape checks hold\n"
        assert summarize.parse_sections(text) == []

    def test_markdown_totals(self):
        md = summarize.to_markdown([("A", 1, 2), ("B", 2, 2)])
        assert "| A | 1/2 |" in md
        assert "**3/4**" in md

    def test_main_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "bench.txt"
        path.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_main_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("nothing here")
        assert summarize.main(["summarize.py", str(path)]) == 1

    def test_main_usage(self):
        assert summarize.main(["summarize.py"]) == 2


CLEAN_LINT = """\
{"version": 1, "tool": "repro.analysis",
 "summary": {"findings": 0, "parse_errors": 0, "files_scanned": 77,
             "by_rule": {}},
 "exit_code": 0}
"""

DIRTY_LINT = """\
{"version": 1, "tool": "repro.analysis",
 "summary": {"findings": 3, "parse_errors": 1, "files_scanned": 77,
             "by_rule": {"RA101": 2, "RA301": 1}},
 "exit_code": 1}
"""


class TestLintIngestion:
    def test_parse_clean_report(self):
        assert summarize.parse_lint(CLEAN_LINT) == (
            "static analysis", "clean (77 files)")

    def test_parse_dirty_report(self):
        title, cell = summarize.parse_lint(DIRTY_LINT)
        assert title == "static analysis"
        assert "4 finding(s)" in cell
        assert "RA101×2" in cell and "RA301×1" in cell

    def test_markdown_appends_lint_row(self):
        md = summarize.to_markdown([("A", 1, 1)],
                                   lint=("static analysis", "clean (77 files)"))
        assert md.splitlines()[-1] == "| static analysis | clean (77 files) |"

    def test_main_with_lint_flag(self, tmp_path, capsys):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        lint = tmp_path / "lint.json"
        lint.write_text(CLEAN_LINT)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(lint)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "clean (77 files)" in out

    def test_main_with_missing_lint_file(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(tmp_path / "absent.json")]) == 2

    def test_main_lint_flag_without_value(self, tmp_path):
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench), "--lint"]) == 2

    def test_end_to_end_with_real_analyzer_output(self, tmp_path, capsys):
        from repro.analysis import analyze_paths, render_json

        module = tmp_path / "m.py"
        module.write_text("x = 1\n")
        lint = tmp_path / "lint.json"
        lint.write_text(render_json(analyze_paths([str(module)])))
        bench = tmp_path / "bench.txt"
        bench.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(bench),
                               "--lint", str(lint)]) == 0
        assert "clean (1 files)" in capsys.readouterr().out
