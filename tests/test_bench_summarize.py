"""Tests for the benchmark-output summarizer."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_summarize",
    Path(__file__).resolve().parent.parent / "benchmarks" / "summarize.py",
)
summarize = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(summarize)

SAMPLE = """\
===== Table III: performance comparison =====
some table rows
3/5 shape checks hold
.
===== Figure 4: trends =====
1/1 shape checks hold
"""


class TestParse:
    def test_sections_parsed(self):
        sections = summarize.parse_sections(SAMPLE)
        assert sections == [
            ("Table III: performance comparison", 3, 5),
            ("Figure 4: trends", 1, 1),
        ]

    def test_ignores_unmatched_tallies(self):
        text = "4/4 shape checks hold\n"
        assert summarize.parse_sections(text) == []

    def test_markdown_totals(self):
        md = summarize.to_markdown([("A", 1, 2), ("B", 2, 2)])
        assert "| A | 1/2 |" in md
        assert "**3/4**" in md

    def test_main_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "bench.txt"
        path.write_text(SAMPLE)
        assert summarize.main(["summarize.py", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_main_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("nothing here")
        assert summarize.main(["summarize.py", str(path)]) == 1

    def test_main_usage(self):
        assert summarize.main(["summarize.py"]) == 2
