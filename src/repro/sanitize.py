"""Runtime write-guard sanitizer for captured numpy buffers.

The repo's bit-equivalence guarantees (crash/resume identity, per-user vs
micro-batched gradient identity, trace fingerprints) assume that arrays
captured at snapshot/checkpoint boundaries are never mutated through an
alias afterwards, and that autograd inputs stay frozen between forward
and backward.  Nothing in numpy enforces either property — an aliased
write corrupts results silently.

This module is the runtime half of the RA6xx aliasing rules
(``docs/ANALYSIS.md``).  Mirroring :mod:`repro.contracts`, it is opt-in
and free when off:

* ``REPRO_SANITIZE=1`` (environment) or :func:`enforce` /
  :func:`enforced` turn checking on;
* :func:`capture` marks an array as a capture boundary by setting
  ``writeable=False``, so any later aliased write raises ``ValueError``
  **at the faulting line** (a no-op passthrough when checking is off);
* :func:`buffer_stamp` fingerprints a buffer so ``Tensor.backward`` can
  detect mutation-since-forward and raise :class:`SanitizeViolation`.

Example
-------
>>> import numpy as np
>>> from repro import sanitize
>>> with sanitize.enforced():
...     snap = sanitize.capture(np.zeros(3))
...     snap[0] = 1.0            # doctest: +SKIP
ValueError: assignment destination is read-only
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "SanitizeViolation",
    "enforce",
    "checking_enabled",
    "enforced",
    "capture",
    "release",
    "is_frozen",
    "buffer_stamp",
]

_TRUTHY = ("1", "true", "yes", "on")
_enabled = os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY

#: arrays up to this many elements are stamped over their full contents;
#: larger buffers (embedding tables) use a head/tail checksum plus a
#: strided sample so per-op stamping stays O(1)-ish in table size
_FULL_STAMP_ELEMENTS = 65536


class SanitizeViolation(RuntimeError):
    """A guarded buffer was mutated behind the sanitizer's back."""


def enforce(on: bool = True) -> bool:
    """Globally enable (or disable) write-guard checking.

    Returns the previous setting so callers can restore it.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


def checking_enabled() -> bool:
    """Whether capture boundaries freeze arrays and backward verifies stamps."""
    return _enabled


@contextmanager
def enforced(on: bool = True) -> Iterator[None]:
    """Context manager: enforce within the block, restore the old setting after."""
    previous = enforce(on)
    try:
        yield
    finally:
        enforce(previous)


def capture(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` as captured: freeze it against in-place writes.

    Call sites hand in the array they are about to store in long-lived
    state (an interest snapshot, a checkpoint payload, a replay-pool
    encoding) and store the return value.  When checking is off this is
    an identity no-op; when on, the array's ``writeable`` flag is
    cleared, so any later write through it — or through a view of it —
    raises ``ValueError`` at the offending line.

    Capture freezes the object it is given; callers own the convention
    of passing a fresh ``.copy()`` when the source buffer must stay
    writable (live parameters, optimizer moments).
    """
    if not _enabled:
        return array
    if isinstance(array, np.ndarray):
        array.flags.writeable = False
    return array


def release(array: np.ndarray) -> np.ndarray:
    """Undo :func:`capture` on an array (test hooks, sanctioned rewrites).

    Arrays whose base buffer is itself read-only stay frozen — numpy
    refuses to re-enable writes through such views, and so do we.
    """
    if isinstance(array, np.ndarray):
        try:
            array.flags.writeable = True
        except ValueError:
            pass
    return array


def is_frozen(array: np.ndarray) -> bool:
    """Whether the array currently rejects in-place writes."""
    return isinstance(array, np.ndarray) and not array.flags.writeable


def buffer_stamp(array: np.ndarray) -> Tuple:
    """A cheap content fingerprint used to detect mutation-since-forward.

    Stable under identical contents; any in-place write an autograd
    consumer could observe changes it with high probability.  Small
    buffers are checksummed in full; large ones (embedding tables) by
    head/tail checksum plus a strided sample, keeping the per-op cost of
    enforcement bounded.
    """
    a = np.ascontiguousarray(array)
    if a.size <= _FULL_STAMP_ELEMENTS:
        return (a.shape, zlib.crc32(a.tobytes()))
    flat = a.reshape(-1)
    crc = zlib.crc32(flat[:4096].tobytes())
    crc = zlib.crc32(flat[-4096:].tobytes(), crc)
    stride = max(1, flat.size // 1024)
    return (a.shape, crc, float(flat[::stride].sum()))
