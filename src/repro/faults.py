"""Deterministic fault injection for crash-safety testing.

An incremental recommender is a long-lived stateful service; proving it
crash-safe requires *reproducible* failures, not ad-hoc monkeypatching.
This module defines a seeded fault model: a :class:`FaultPlan` lists
faults bound to named probe points that the production code fires at its
critical transitions (span boundaries, checkpoint writes, training
steps).  When no plan is active every probe is a near-free no-op, so the
probes stay in the real code paths permanently — the exercised code is
the shipped code.

Probe points fired by the substrate
-----------------------------------
``span-start``          before ``train_span(t)`` (info: ``span``)
``span-trained``        after ``train_span(t)`` returns (info: ``span``,
                        ``strategy``) — where state-poisoning faults act
``span-boundary``       after span ``t``'s checkpoint + journal entry
                        are committed (info: ``span``)
``io-write``            before an atomic write starts (info: ``path``,
                        ``kind``: ``checkpoint`` | ``journal``)
``io-replace``          after the temp file is durable, before
                        ``os.replace`` commits it (same info)
``train-step``          once per optimizer step (info: ``step``,
                        ``user``)

Probe points fired by the streaming pipeline (:mod:`repro.stream`)
------------------------------------------------------------------
``stream-event``          as each source event is pulled (info: ``seq``,
                          ``user``, ``item``, ``offset``) — where the
                          delivery faults (``duplicate``, ``malform``,
                          ``reorder``, ``flood``) act as modifiers
``stream-event-boundary`` after one event is fully processed (info:
                          ``seq``, ``offset``)
``stream-trained``        after training on one event (info: ``seq``,
                          ``strategy``) — where poisoning faults act
``stream-boundary``       after a commit interval's checkpoint + stream
                          journal landed (info: ``interval``,
                          ``offset``)

Example
-------
>>> plan = FaultPlan(seed=0).crash_at_span_boundary(2)
>>> with active(plan):
...     run_strategy(strategy, split, checkpoint_dir=ckdir)   # raises
Traceback (most recent call last):
SimulatedCrash: injected crash at span-boundary (span=2)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .contracts import shape_contract
from .obs import trace as obs

__all__ = [
    "FaultPlan",
    "Fault",
    "FaultInjected",
    "SimulatedCrash",
    "InjectedIOError",
    "active",
    "fire",
    "active_plans",
    "all_finite",
    "nan_poison",
    "flip_one_byte",
]


class FaultInjected(RuntimeError):
    """Base class for exceptions raised by an active fault plan."""


class SimulatedCrash(FaultInjected):
    """Stands in for a process kill: nothing after the raise executes."""


class InjectedIOError(OSError):
    """A planned IO failure (disk full, permission flap, torn device)."""


@dataclass
class Fault:
    """One planned failure, bound to a probe point.

    ``at`` selects the n-th firing of the point (0-based occurrence
    count); ``match`` filters on the probe's info dict (e.g.
    ``{"span": 2}``).  ``kind`` is one of ``crash``, ``io-error``,
    ``modifier`` (returns ``payload`` to the probe's caller), or
    ``call`` (invokes ``payload(**info)``).  Faults are one-shot unless
    ``once`` is False.
    """

    point: str
    kind: str
    at: Optional[int] = None
    match: Dict[str, Any] = field(default_factory=dict)
    payload: Union[None, Dict[str, Any], Callable[..., Any]] = None
    once: bool = True
    spent: bool = False

    def matches(self, occurrence: int, info: Dict[str, Any]) -> bool:
        if self.spent:
            return False
        if self.at is not None and occurrence != self.at:
            return False
        return all(info.get(k) == v for k, v in self.match.items())

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"point": self.point, "kind": self.kind}
        if self.at is not None:
            out["at"] = self.at
        if self.match:
            out["match"] = dict(self.match)
        if isinstance(self.payload, dict):
            out["payload"] = dict(self.payload)
        return out


class FaultPlan:
    """A seeded, deterministic list of faults plus its firing log.

    Builders return ``self`` so plans read as one expression::

        FaultPlan(seed=3).io_error_on_write(1).crash_at_span_boundary(2)
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.faults: List[Fault] = []
        #: occurrence counters per probe point
        self.counters: Dict[str, int] = {}
        #: every fault that actually fired: (point, info-without-objects)
        self.log: List[Tuple[str, Dict[str, Any]]] = []

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    def crash_at_span_boundary(self, span: int) -> "FaultPlan":
        """Die right after span ``span``'s checkpoint+journal committed."""
        self.faults.append(Fault("span-boundary", "crash", match={"span": span}))
        return self

    def crash_before_span(self, span: int) -> "FaultPlan":
        """Die at the boundary, before ``train_span(span)`` starts."""
        self.faults.append(Fault("span-start", "crash", match={"span": span}))
        return self

    def io_error_on_write(self, nth: int = 0) -> "FaultPlan":
        """Fail the ``nth`` atomic write before any bytes hit disk."""
        self.faults.append(Fault("io-write", "io-error", at=nth))
        return self

    def crash_during_write(self, nth: int = 0) -> "FaultPlan":
        """Die after the temp file is written but before the commit —
        the torn-write scenario atomic replacement must survive."""
        self.faults.append(Fault("io-replace", "crash", at=nth))
        return self

    def nan_loss_at_step(self, step: Optional[int] = None) -> "FaultPlan":
        """Poison the training loss at optimizer step ``step`` (every
        step when ``None``) — exercises the non-finite containment."""
        match = {} if step is None else {"step": step}
        self.faults.append(Fault("train-step", "modifier", match=match,
                                 payload={"poison_nan": True},
                                 once=step is not None))
        return self

    def poison_params_after_span(self, span: int) -> "FaultPlan":
        """Write a NaN into one (seeded) model parameter element right
        after ``train_span(span)`` — triggers the divergence guard."""
        self.faults.append(Fault("span-trained", "call", match={"span": span},
                                 payload=self._poison_one_param))
        return self

    def _poison_one_param(self, strategy=None, **info) -> None:
        if strategy is None:
            return
        params = [p for _, p in strategy.model.named_parameters()]
        param = params[int(self.rng.integers(len(params)))]
        flat = param.data.reshape(-1)
        # corrupting the live parameter is this fault's entire purpose
        flat[int(self.rng.integers(flat.size))] = np.nan  # repro: noqa[RA601]

    # ------------------------------------------------------------------ #
    # streaming fault kinds (consumed by repro.stream)
    # ------------------------------------------------------------------ #
    def duplicate_event(self, nth: int) -> "FaultPlan":
        """Redeliver the ``nth`` source event immediately after itself —
        at-least-once delivery; the dedup gate must quarantine the copy."""
        self.faults.append(Fault("stream-event", "modifier", at=nth,
                                 payload={"duplicate": True}))
        return self

    def malform_event(self, nth: int, fld: str = "item") -> "FaultPlan":
        """Corrupt one field of the ``nth`` source event (``user`` /
        ``item`` become -1, ``ts`` becomes NaN) — the validation gate
        must quarantine it with a structured reason."""
        self.faults.append(Fault("stream-event", "modifier", at=nth,
                                 payload={"malform": fld}))
        return self

    def reorder_event(self, nth: int, delay: int = 3) -> "FaultPlan":
        """Hold the ``nth`` source event back for ``delay`` later events,
        so it arrives behind the watermark — late-but-tolerable events
        train, hopelessly stale ones are quarantined."""
        self.faults.append(Fault("stream-event", "modifier", at=nth,
                                 payload={"reorder": int(delay)}))
        return self

    def io_error_burst(self, first: int = 0, length: int = 3) -> "FaultPlan":
        """Fail ``length`` consecutive atomic writes starting at the
        ``first`` occurrence — exercises seeded retry-with-backoff."""
        for k in range(length):
            self.faults.append(Fault("io-write", "io-error", at=first + k))
        return self

    def cold_start_flood(self, nth: int, count: int = 8) -> "FaultPlan":
        """Inject a burst of ``count`` never-seen user/item events after
        the ``nth`` source event — mid-stream cold start under pressure."""
        self.faults.append(Fault("stream-event", "modifier", at=nth,
                                 payload={"flood": int(count)}))
        return self

    def crash_at_stream_boundary(self, interval: int) -> "FaultPlan":
        """Die right after stream commit interval ``interval`` lands."""
        self.faults.append(Fault("stream-boundary", "crash",
                                 match={"interval": interval}))
        return self

    def crash_after_event(self, seq: int) -> "FaultPlan":
        """Die at the event boundary right after event ``seq`` was
        processed (scored/trained) but before the next one starts."""
        self.faults.append(Fault("stream-event-boundary", "crash",
                                 match={"seq": seq}))
        return self

    def poison_params_after_event(self, seq: int) -> "FaultPlan":
        """Write a NaN into one (seeded) model parameter element right
        after training on event ``seq`` — trips the degradation guard at
        the next commit boundary."""
        self.faults.append(Fault("stream-trained", "call",
                                 match={"seq": seq},
                                 payload=self._poison_one_param))
        return self

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #
    def fire(self, point: str, info: Dict[str, Any]) -> Dict[str, Any]:
        """Advance the point's occurrence counter and trigger matches."""
        occurrence = self.counters.get(point, 0)
        self.counters[point] = occurrence + 1
        mods: Dict[str, Any] = {}
        for fault in self.faults:
            if fault.point != point or not fault.matches(occurrence, info):
                continue
            if fault.once:
                fault.spent = True
            self.log.append((point, {
                k: v for k, v in info.items()
                if isinstance(v, (int, float, str, bool, type(None)))
            }))
            # telemetry before any raise, so injected crashes leave a
            # fault.fired record explaining the torn trace behind them
            obs.counter("faults.probe_fired")
            obs.event("fault.fired", point=point, fault_kind=fault.kind,
                      occurrence=occurrence, **self.log[-1][1])
            if fault.kind == "crash":
                raise SimulatedCrash(
                    f"injected crash at {point} "
                    f"({', '.join(f'{k}={v}' for k, v in sorted(self.log[-1][1].items()))})"
                )
            if fault.kind == "io-error":
                raise InjectedIOError(
                    f"injected IO error at {point} occurrence {occurrence}")
            if fault.kind == "modifier" and isinstance(fault.payload, dict):
                mods.update(fault.payload)
            elif fault.kind == "call" and callable(fault.payload):
                extra = fault.payload(**info)
                if isinstance(extra, dict):
                    mods.update(extra)
        return mods

    def describe(self) -> List[Dict[str, Any]]:
        """The plan as data — for journals, incident reports, and docs."""
        return [f.describe() for f in self.faults]


# ---------------------------------------------------------------------- #
# module-level activation + probe API
# ---------------------------------------------------------------------- #
_ACTIVE: List[FaultPlan] = []


def active_plans() -> List[FaultPlan]:
    """The currently activated plans (outermost first)."""
    return list(_ACTIVE)


@contextlib.contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block."""
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.remove(plan)


def fire(point: str, **info: Any) -> Dict[str, Any]:
    """Probe call placed in production code; no-op without active plans.

    Returns the merged modifier dict from every matching ``modifier`` /
    ``call`` fault; ``crash`` and ``io-error`` faults raise instead.
    """
    if not _ACTIVE:
        return {}
    mods: Dict[str, Any] = {}
    for plan in list(_ACTIVE):
        mods.update(plan.fire(point, info))
    return mods


# ---------------------------------------------------------------------- #
# array/file corruption helpers (used by the plan and the test suite)
# ---------------------------------------------------------------------- #
@shape_contract("(...S) f -> () b")
def all_finite(arr: np.ndarray) -> bool:
    """True when every element of a float array is finite."""
    return bool(np.isfinite(arr).all())


@shape_contract("(...S) f, _ -> (...S) f")
def nan_poison(arr: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Copy of ``arr`` with one seeded-random element replaced by NaN."""
    out = arr.astype(np.float64, copy=True)
    flat = out.reshape(-1)
    flat[int(rng.integers(flat.size))] = np.nan
    return out


def flip_one_byte(path, offset: Optional[int] = None,
                  rng: Optional[np.random.Generator] = None) -> int:
    """Flip one byte of the file at ``path`` in place; returns the offset.

    ``offset=None`` picks a seeded-random position via ``rng`` (a fresh
    ``default_rng(0)`` when omitted).  The byte is XORed with 0xFF, so a
    second flip at the same offset restores the original file.
    """
    with open(path, "rb") as fh:
        data = bytearray(fh.read())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    if offset is None:
        offset = int((rng or np.random.default_rng(0)).integers(len(data)))
    data[offset] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(data)
    return offset
