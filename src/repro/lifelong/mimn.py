"""MIMN (Pi et al., KDD 2019) — lifelong user modelling baseline.

MIMN maintains a Neural-Turing-Machine-style external memory per user and
incrementally reads/writes user interests from the online interaction
stream.  Crucially — and this is the paper's Table IV argument — it only
updates user *representations* after pretraining: the model parameters
(and the item embeddings) are frozen, so newly released items keep their
untrained embeddings and newly developed interests compete for a fixed
number of memory slots.

Our implementation pretrains a standard MSR base model (ComiRec-DR by
default), seeds each user's memory with their pretrained interests, and
then performs attention-addressed NTM writes (erase + add, Graves et al.)
for every new interaction.  Retrieval scores are max-over-slots, the same
retrieval rule as the MSR models, so Table IV compares like with like.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from ..data.schema import TemporalSplit
from ..incremental.strategy import IncrementalStrategy, TrainConfig
from ..models.base import MSRModel


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


class MIMN(IncrementalStrategy):
    """Frozen-parameter lifelong baseline with NTM memory updates."""

    name = "MIMN"

    def __init__(self, model: MSRModel, split: TemporalSplit, config: TrainConfig,
                 memory_slots: int = 8, write_strength: float = 0.35):
        super().__init__(model, split, config)
        self.memory_slots = memory_slots
        self.write_strength = write_strength
        #: user -> (m, d) memory matrix
        self.memory: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        elapsed = super().pretrain()
        # Seed each user's memory with their pretrained interests, padded
        # with small noise up to the slot count.
        pad_rng = np.random.default_rng(self.config.seed + 23)
        d = self.model.dim
        for user, state in self.states.items():
            interests = state.interests
            if interests.shape[0] >= self.memory_slots:
                memory = interests[: self.memory_slots].copy()
            else:
                pad = pad_rng.normal(
                    0.0, 0.01, size=(self.memory_slots - interests.shape[0], d)
                )
                memory = np.concatenate([interests, pad], axis=0)
            self.memory[user] = memory
        return elapsed

    def _write(self, user: int, item: int) -> None:
        """One NTM write: attention addressing, then erase + add."""
        memory = self.memory[user]
        emb = self.model.item_emb.weight.data[item]
        address = _softmax(memory @ emb)  # (m,)
        gate = self.write_strength * address[:, None]  # (m, 1)
        self.memory[user] = memory * (1.0 - gate) + gate * emb[None, :]

    # ------------------------------------------------------------------ #
    def train_span(self, t: int) -> float:
        """No gradient training — stream the span through memory writes."""
        span = self.split.spans[t - 1]
        start = time.perf_counter()
        for user in span.user_ids():
            if user not in self.memory:
                continue
            for item in span.users[user].all_items:
                self._write(user, item)
        elapsed = time.perf_counter() - start
        self.train_times[t] = elapsed
        return elapsed

    def score_user(self, user: int) -> np.ndarray:
        memory = self.memory.get(user)
        if memory is None:
            return super().score_user(user)
        return (self.model.item_emb.weight.data @ memory.T).max(axis=1)

    def interest_counts(self) -> Dict[int, int]:
        return {u: self.memory_slots for u in self.states}
