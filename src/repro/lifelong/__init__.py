"""Lifelong MSR baselines for the paper's Table IV."""

from .mimn import MIMN
from .limarec import LimaRec, LimaRecModel

__all__ = ["MIMN", "LimaRec", "LimaRecModel"]
