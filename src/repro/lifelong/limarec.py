"""LimaRec (Wu et al., 2021) — linear-attention lifelong baseline.

LimaRec identifies multiple interests with *linear* self-attention whose
per-user state can be updated incrementally in O(1) per interaction:
each head ``h`` keeps the running sums

    S_h = Σ_i φ(W_k e_i) (W_v e_i)ᵀ          (d_k × d)
    z_h = Σ_i φ(W_k e_i)                      (d_k,)

and reads an interest vector out with a query built from the user's most
recent item: ``interest_h = (φ(W_q q)ᵀ S_h) / (φ(W_q q)ᵀ z_h)``, with
``φ(x) = elu(x) + 1`` (we use softplus, same positivity guarantee).

As the paper notes, LimaRec incrementally updates user representations
but never updates model parameters after pretraining and keeps a fixed
number of interests — the two handicaps IMSR removes.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

import numpy as np

from ..autograd import Tensor, stack
from ..data.schema import TemporalSplit
from ..incremental.strategy import IncrementalStrategy, TrainConfig
from ..models.base import MSRModel, UserState
from ..nn import Parameter, init


def _phi_np(x: np.ndarray) -> np.ndarray:
    """Positive feature map (softplus)."""
    return np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0) + 1e-6


class LimaRecModel(MSRModel):
    """Multi-head linear self-attention interest extractor."""

    family = "sa"

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 key_dim: int = 16, seed: int = 0):
        super().__init__(num_items, dim=dim, num_interests=num_interests, seed=seed)
        self.key_dim = key_dim
        self.w_q = Parameter(init.xavier_uniform((num_interests, key_dim, dim), self.rng))
        self.w_k = Parameter(init.xavier_uniform((num_interests, key_dim, dim), self.rng))
        self.w_v = Parameter(init.xavier_uniform((num_interests, dim, dim), self.rng))

    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        """Full-sequence forward (used for pretraining only).

        Equivalent to the incremental readout when the state covers the
        same items — verified in the test suite.
        """
        if len(item_seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
        embs = self.embed_items(item_seq)  # (n, d)
        query_emb = embs[len(item_seq) - 1]  # most recent item as the query
        heads = []
        for h in range(self.K0):
            keys = _softplus_t(embs @ self._head(self.w_k, h).T)   # (n, d_k)
            values = embs @ self._head(self.w_v, h).T              # (n, d)
            query = _softplus_t(self._head(self.w_q, h) @ query_emb)  # (d_k,)
            s = keys.T @ values                                     # (d_k, d)
            z = keys.sum(axis=0)                                    # (d_k,)
            numer = query @ s                                       # (d,)
            denom = (query * z).sum() + 1e-6
            heads.append(numer / denom)
        return stack(heads, axis=0)  # (K, d)

    def _head(self, param: Parameter, head: int) -> Tensor:
        """Slice one attention head's projection matrix (in-graph)."""
        return param[head]


def _softplus_t(x: Tensor) -> Tensor:
    """Softplus feature map in-graph: log(1 + exp(x)) + eps."""
    return (x.exp() + 1.0).log() + 1e-6


class LimaRec(IncrementalStrategy):
    """Lifelong strategy around :class:`LimaRecModel`.

    Pretraining learns the projections; afterwards parameters freeze and
    each span only updates the per-user running sums (S, z).
    """

    name = "LimaRec"

    def __init__(self, model: LimaRecModel, split: TemporalSplit,
                 config: TrainConfig):
        if not isinstance(model, LimaRecModel):
            raise TypeError("LimaRec requires a LimaRecModel")
        super().__init__(model, split, config)
        #: user -> (K, d_k, d) running S and (K, d_k) running z
        self.state_s: Dict[int, np.ndarray] = {}
        self.state_z: Dict[int, np.ndarray] = {}
        self.last_item: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def pretrain(self) -> float:
        elapsed = super().pretrain()
        # Initialize incremental state from the pretraining sequences.
        for user in self.split.pretrain.user_ids():
            items = self.split.pretrain.users[user].all_items
            self._init_state(user)
            self._absorb(user, items)
        return elapsed

    def _init_state(self, user: int) -> None:
        model: LimaRecModel = self.model  # type: ignore[assignment]
        k, dk, d = model.K0, model.key_dim, model.dim
        self.state_s[user] = np.zeros((k, dk, d))
        self.state_z[user] = np.zeros((k, dk))

    def _absorb(self, user: int, items: Sequence[int]) -> None:
        """O(1)-per-interaction incremental state update."""
        if not items:
            return
        model: LimaRecModel = self.model  # type: ignore[assignment]
        embs = model.item_emb.weight.data[np.asarray(items, dtype=np.int64)]
        for h in range(model.K0):
            keys = _phi_np(embs @ model.w_k.data[h].T)      # (n, d_k)
            values = embs @ model.w_v.data[h].T             # (n, d)
            self.state_s[user][h] += keys.T @ values
            self.state_z[user][h] += keys.sum(axis=0)
        self.last_item[user] = int(items[-1])

    # ------------------------------------------------------------------ #
    def train_span(self, t: int) -> float:
        span = self.split.spans[t - 1]
        start = time.perf_counter()
        for user in span.user_ids():
            if user not in self.state_s:
                self._init_state(user)
            self._absorb(user, span.users[user].all_items)
        elapsed = time.perf_counter() - start
        self.train_times[t] = elapsed
        return elapsed

    def score_user(self, user: int) -> np.ndarray:
        if user not in self.state_s or user not in self.last_item:
            return super().score_user(user)
        model: LimaRecModel = self.model  # type: ignore[assignment]
        query_emb = model.item_emb.weight.data[self.last_item[user]]
        interests = np.zeros((model.K0, model.dim))
        for h in range(model.K0):
            query = _phi_np(model.w_q.data[h] @ query_emb)  # (d_k,)
            numer = query @ self.state_s[user][h]           # (d,)
            denom = float(query @ self.state_z[user][h]) + 1e-6
            interests[h] = numer / denom
        return (model.item_emb.weight.data @ interests.T).max(axis=1)
