"""Stream events, the validation gate, and the dead-letter quarantine.

A production recommender is fed raw ``(user, item, timestamp)`` events,
not pre-cut span batches — and raw streams carry garbage: negative ids,
NaN timestamps, at-least-once redeliveries, events arriving days late.
The validation gate classifies each event *before* it can touch model
state; rejects land in a persisted dead-letter file (the quarantine)
with a structured reason, so operators can audit exactly what was
dropped and why, and nothing malformed ever trains.

Quarantine reasons
------------------
``malformed-user`` / ``malformed-item``
    id is not a non-negative integer
``malformed-timestamp``
    timestamp is not a finite number
``duplicate``
    the ``(user, item, ts)`` key was seen within the dedup window
``stale``
    the event is older than ``watermark - max_lateness`` (hopelessly
    late; merely late events still train)
``unknown-item`` / ``unknown-user``
    id beyond the catalog while cold-start growth is disabled
``degraded-dropped``
    queued during a degradation spell the pipeline could not recover
    from within its attempt budget (emitted by the pipeline, not the
    gate)
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Set, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

__all__ = [
    "StreamEvent",
    "GateConfig",
    "validate_event",
    "events_from_split",
    "Quarantine",
    "read_quarantine",
]


@dataclass(frozen=True)
class StreamEvent:
    """One arriving interaction.

    ``seq`` is the delivery sequence number assigned by the source (the
    identity used by the exactly-once commit protocol); ``ts`` is the
    event time used for watermark/staleness decisions.
    """

    seq: int
    user: int
    item: int
    ts: float

    def key(self) -> Tuple:
        """Dedup identity: the interaction content, not the delivery."""
        return (self.user, self.item, self.ts)

    def to_json(self) -> dict:
        return {"seq": int(self.seq), "user": int(self.user),
                "item": int(self.item), "ts": float(self.ts)}

    @classmethod
    def from_json(cls, payload: dict) -> "StreamEvent":
        return cls(seq=int(payload["seq"]), user=int(payload["user"]),
                   item=int(payload["item"]), ts=float(payload["ts"]))


def _is_id(value) -> bool:
    """A well-formed id: a non-negative integer (bool is not an id)."""
    return (isinstance(value, (int, np.integer))
            and not isinstance(value, bool) and int(value) >= 0)


@dataclass
class GateConfig:
    """Validation-gate policy knobs (see :func:`validate_event`)."""

    max_lateness: float = 50.0
    allow_new_users: bool = True
    allow_new_items: bool = True


def validate_event(event: StreamEvent, *, watermark: float,
                   seen_keys: Set[Tuple], num_items: int,
                   known_users: Set[int],
                   gate: GateConfig) -> Optional[Tuple[str, str]]:
    """Classify one event; returns ``(reason, detail)`` or None to accept.

    Checks run cheapest-first and the first failure wins, so a
    quarantine record carries one unambiguous reason.
    """
    if not _is_id(event.user):
        return "malformed-user", f"user id {event.user!r} is not a non-negative integer"
    if not _is_id(event.item):
        return "malformed-item", f"item id {event.item!r} is not a non-negative integer"
    if not isinstance(event.ts, (int, float, np.floating, np.integer)) \
            or isinstance(event.ts, bool) or not math.isfinite(float(event.ts)):
        return "malformed-timestamp", f"timestamp {event.ts!r} is not finite"
    if event.key() in seen_keys:
        return "duplicate", f"key (user={event.user}, item={event.item}, ts={event.ts}) already seen"
    if float(event.ts) < watermark - gate.max_lateness:
        return "stale", (f"ts {event.ts} is {watermark - float(event.ts):.1f} "
                         f"behind the watermark {watermark} "
                         f"(max_lateness={gate.max_lateness})")
    if not gate.allow_new_items and int(event.item) >= num_items:
        return "unknown-item", f"item {event.item} >= catalog size {num_items}"
    if not gate.allow_new_users and int(event.user) not in known_users:
        return "unknown-user", f"user {event.user} never seen and growth disabled"
    return None


def events_from_split(split, seed: int = 0) -> List[StreamEvent]:
    """Derive a deterministic chronological event stream from a split.

    The incremental spans' per-user item sequences are interleaved with
    a seeded round-robin-ish shuffle: within each span users take turns
    in seeded random order while each user's own items stay in order —
    the stream a log-structured event bus would deliver.  Timestamps
    are ``span * 1000 + position``, so span boundaries are visible in
    event time and staleness tests have room to inject lateness.
    """
    rng = np.random.default_rng(seed)
    triples: List[Tuple[int, int, float]] = []
    for t, span in enumerate(split.spans, start=1):
        pending = [(user, list(span.users[user].all_items))
                   for user in span.user_ids()
                   if span.users[user].all_items]
        position = 0
        while pending:
            idx = int(rng.integers(len(pending)))
            user, items = pending[idx]
            triples.append((user, items.pop(0), t * 1000.0 + position))
            position += 1
            if not items:
                pending.pop(idx)
    return [StreamEvent(seq=i, user=u, item=it, ts=ts)
            for i, (u, it, ts) in enumerate(triples)]


# ---------------------------------------------------------------------- #
# dead-letter quarantine file
# ---------------------------------------------------------------------- #
class Quarantine:
    """Append-only JSONL dead-letter file for rejected events.

    Each record is one line::

        {"seq": 7, "user": 3, "item": -1, "ts": 2001.0,
         "reason": "malformed-item", "detail": "...", "offset": 5}

    ``offset`` is the source offset at rejection time.  On ``--resume``
    the pipeline replays from its last committed offset, so records
    past that offset are dropped first (they will be re-evaluated); a
    torn final line from a crash mid-append is discarded the same way
    the obs trace sink recovers its tail.
    """

    def __init__(self, path: PathLike, resume_offset: Optional[int] = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume_offset is not None and self.path.exists():
            kept = [rec for rec in read_quarantine(self.path)
                    if int(rec.get("offset", 0)) < resume_offset]
            blob = "".join(json.dumps(rec, sort_keys=True) + "\n"
                           for rec in kept).encode("utf-8")
            # local import: persistence imports nothing from repro.stream,
            # but keeping the dependency one-way at module load is tidier
            from ..persistence import atomic_write_bytes
            atomic_write_bytes(blob, self.path, kind="quarantine")
        self._fh = open(self.path, "ab")

    def add(self, event: StreamEvent, reason: str, detail: str,
            offset: int) -> dict:
        """Append one rejected event; flushed + fsynced immediately so a
        crash right after cannot lose the record."""
        record = dict(event.to_json())
        record["reason"] = reason
        record["detail"] = detail
        record["offset"] = int(offset)
        self._fh.write(json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Quarantine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_quarantine(path: PathLike) -> List[dict]:
    """Parse a quarantine file, tolerating a torn final line.

    A crash mid-append can leave a partial last line; like the obs trace
    reader, everything before the final newline is intact (appends are
    flushed line-at-a-time) and the torn tail is skipped.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: List[dict] = []
    data = path.read_bytes()
    for line in data.split(b"\n"):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue  # torn tail from a crash mid-append
    return records
