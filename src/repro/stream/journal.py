"""Offset journal: the exactly-once commit log of a streaming run.

Extends the PR 3 span journal down to the event boundary.  A stream
run directory holds one checkpoint per commit interval
(``interval-0000.npz``, ``interval-0001.npz``, …) plus
``stream-journal.json``.  Per interval the journal records the source
*offset* consumed, cumulative counters, the sliding-window metrics, and
a SHA-256 **chain** over every trained event's sequence number — the
exactly-once witness: two runs that trained the same events in the same
order have the same chain, and a double-trained or dropped event
changes it irreversibly.

Alongside the per-interval records the journal keeps the full stream
state (histories, dedup ring, watermark, pending queue, counters) for
the latest interval and the one before it, so ``--resume`` restores
the pipeline mid-stream without replaying the whole log; if the latest
checkpoint is corrupt the run falls back one interval, and past that
it restarts from scratch (explicitly — never silently half-restored).

Write ordering matches the span journal: the interval's checkpoint is
committed *before* the journal entry that references it, so a journal
entry always points at a complete checkpoint.  The journal file itself
carries a whole-file SHA-256 trailer, so *any* flipped byte or
truncation is detected on load (see ``tests/test_stream.py``'s
byte-flip property tests).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import trace as obs
from ..persistence import CheckpointError, atomic_write_bytes, verify_checkpoint

PathLike = Union[str, Path]

_STREAM_JOURNAL_VERSION = 1
STREAM_JOURNAL_NAME = "stream-journal.json"

#: whole-file integrity trailer: b"\n" + marker + 64 hex chars + b"\n"
_TRAILER_MARKER = b"repro-stream-journal-sha256:"
_TRAILER_LEN = 1 + len(_TRAILER_MARKER) + 64 + 1

__all__ = [
    "StreamJournal",
    "IntervalRecord",
    "StreamJournalError",
    "StreamJournalIOError",
    "STREAM_JOURNAL_NAME",
    "chain_extend",
]


class StreamJournalError(ValueError):
    """The stream journal is corrupt or does not match the current run."""


class StreamJournalIOError(StreamJournalError, OSError):
    """The stream journal could not be read/written due to an IO failure
    (transient — retryable), as opposed to corruption (terminal)."""


def chain_extend(chain: str, seq: int) -> str:
    """Extend the exactly-once hash chain with one trained event."""
    return hashlib.sha256(f"{chain}:{int(seq)}".encode("ascii")).hexdigest()


@dataclass
class IntervalRecord:
    """One committed interval: everything the rollup/resume needs."""

    interval: int
    offset: int                #: source events consumed at commit time
    trained: int               #: cumulative events trained
    scored: int                #: cumulative events scored
    quarantined: int           #: cumulative events quarantined
    dropped: int               #: cumulative backpressure drops
    chain: str                 #: exactly-once witness over trained seqs
    checkpoint: str
    mode: str = "healthy"      #: pipeline mode at commit
    window_recall: Optional[float] = None
    window_ndcg: Optional[float] = None

    def to_json(self) -> dict:
        out = {
            "interval": int(self.interval),
            "offset": int(self.offset),
            "trained": int(self.trained),
            "scored": int(self.scored),
            "quarantined": int(self.quarantined),
            "dropped": int(self.dropped),
            "chain": self.chain,
            "checkpoint": self.checkpoint,
            "mode": self.mode,
        }
        if self.window_recall is not None:
            out["window_recall"] = float(self.window_recall)
            out["window_ndcg"] = float(self.window_ndcg)
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "IntervalRecord":
        record = cls(
            interval=int(payload["interval"]),
            offset=int(payload["offset"]),
            trained=int(payload["trained"]),
            scored=int(payload["scored"]),
            quarantined=int(payload["quarantined"]),
            dropped=int(payload["dropped"]),
            chain=str(payload["chain"]),
            checkpoint=str(payload["checkpoint"]),
            mode=str(payload.get("mode", "healthy")),
        )
        if "window_recall" in payload:
            record.window_recall = float(payload["window_recall"])
            record.window_ndcg = float(payload["window_ndcg"])
        return record


class StreamJournal:
    """Atomic, append-per-interval offset journal for one run directory."""

    def __init__(self, directory: PathLike, fingerprint: str,
                 dataset: str = "", model: str = "", strategy: str = ""):
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.dataset = dataset
        self.model = model
        self.strategy = strategy
        self.intervals: Dict[int, IntervalRecord] = {}
        self.incidents: List[dict] = []
        #: full stream state at the latest committed interval (and the
        #: one before it, the corruption fallback) — see state_for()
        self.state: Optional[dict] = None
        self.prev_state: Optional[dict] = None

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self.directory / STREAM_JOURNAL_NAME

    def checkpoint_path(self, interval: int) -> Path:
        return self.directory / f"interval-{interval:04d}.npz"

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def write(self) -> None:
        payload = {
            "version": _STREAM_JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "dataset": self.dataset,
            "model": self.model,
            "strategy": self.strategy,
            "intervals": {str(i): r.to_json()
                          for i, r in sorted(self.intervals.items())},
            "incidents": self.incidents,
            "state": self.state,
            "prev_state": self.prev_state,
        }
        blob = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        trailer = (b"\n" + _TRAILER_MARKER
                   + hashlib.sha256(blob).hexdigest().encode("ascii") + b"\n")
        atomic_write_bytes(blob + trailer, self.path, kind="stream-journal")

    @classmethod
    def load(cls, directory: PathLike) -> "StreamJournal":
        path = Path(directory) / STREAM_JOURNAL_NAME
        if not path.exists():
            raise StreamJournalError(f"no stream journal at {path}")
        try:
            data = path.read_bytes()
        except OSError as err:
            raise StreamJournalIOError(
                f"stream journal {path} cannot be read: {err}") from err
        tail = data[-_TRAILER_LEN:]
        if not (len(data) > _TRAILER_LEN
                and tail.startswith(b"\n" + _TRAILER_MARKER)
                and tail.endswith(b"\n")):
            raise StreamJournalError(
                f"stream journal {path} integrity trailer is missing or "
                f"mangled — the file is corrupt or truncated")
        blob, digest = data[:-_TRAILER_LEN], tail[1 + len(_TRAILER_MARKER):-1]
        if hashlib.sha256(blob).hexdigest().encode("ascii") != digest:
            raise StreamJournalError(
                f"stream journal {path} fails its whole-file SHA-256 "
                f"check — the file is corrupt")
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            raise StreamJournalError(
                f"stream journal {path} is corrupt: {err}") from err
        if payload.get("version") != _STREAM_JOURNAL_VERSION:
            raise StreamJournalError(
                f"unsupported stream journal version "
                f"{payload.get('version')!r}")
        journal = cls(
            Path(directory),
            fingerprint=str(payload.get("fingerprint", "")),
            dataset=str(payload.get("dataset", "")),
            model=str(payload.get("model", "")),
            strategy=str(payload.get("strategy", "")),
        )
        for key, entry in payload.get("intervals", {}).items():
            record = IntervalRecord.from_json(entry)
            if record.interval != int(key):
                raise StreamJournalError(
                    f"stream journal interval key {key} disagrees with "
                    f"record {record.interval}")
            journal.intervals[record.interval] = record
        journal.incidents = list(payload.get("incidents", []))
        journal.state = payload.get("state")
        journal.prev_state = payload.get("prev_state")
        return journal

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_interval(self, record: IntervalRecord, state: dict) -> None:
        """Commit one interval: its record plus the full stream state.

        Called *after* the interval's checkpoint landed (checkpoint-
        before-journal ordering, same as the span journal).
        """
        self.intervals[record.interval] = record
        self.prev_state = self.state
        self.state = state
        self.write()
        obs.counter("stream.intervals_committed")
        obs.event("stream.committed", interval=record.interval,
                  offset=record.offset, trained=record.trained,
                  mode=record.mode, checkpoint=record.checkpoint)

    def record_incident(self, interval: int, kind: str, detail: object,
                        action: str) -> dict:
        incident = {"interval": int(interval), "kind": kind,
                    "detail": detail, "action": action}
        self.incidents.append(incident)
        self.write()
        obs.counter("stream.incidents")
        obs.event("stream.incident", interval=interval, incident=kind,
                  action=action)
        return incident

    # ------------------------------------------------------------------ #
    # resume support
    # ------------------------------------------------------------------ #
    def last_restorable_interval(self) -> Optional[int]:
        """Highest interval that is fully restorable: its journal prefix
        is contiguous from 0, its checkpoint passes full verification,
        and the journal still holds its stream-state blob.

        Only the latest two intervals carry state blobs, so a corrupt
        latest checkpoint falls back exactly one interval; anything
        worse restarts the stream from scratch (events are retrained,
        never double-counted — the chain restarts with them)."""
        last_contiguous = -1
        while last_contiguous + 1 in self.intervals:
            last_contiguous += 1
        for interval in range(last_contiguous, -1, -1):
            if self.state_for(interval) is None:
                return None  # older blobs are not retained
            try:
                verify_checkpoint(self.checkpoint_path(interval))
            except CheckpointError:
                continue
            return interval
        return None

    def state_for(self, interval: int) -> Optional[dict]:
        """The stream-state blob committed at ``interval``, if retained."""
        for blob in (self.state, self.prev_state):
            if blob is not None and int(blob.get("interval", -1)) == interval:
                return blob
        return None
