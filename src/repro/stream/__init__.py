"""repro.stream — resilient prequential (test-then-learn) streaming.

The pipeline consumes raw ``(user, item, ts)`` events one at a time,
scoring each before training on it, inside a robustness envelope:
validation gate + dead-letter quarantine, offset-journaled exactly-once
commits, seeded retry-with-backoff on transient IO, and a graceful-
degradation state machine that demotes to score-only serving on
anomalies and recovers once a clean interval commits.  See
``docs/STREAMING.md``.
"""

from .events import (
    GateConfig,
    Quarantine,
    StreamEvent,
    events_from_split,
    read_quarantine,
    validate_event,
)
from .journal import (
    STREAM_JOURNAL_NAME,
    IntervalRecord,
    StreamJournal,
    StreamJournalError,
    StreamJournalIOError,
    chain_extend,
)
from .pipeline import (
    MODE_DEGRADED,
    MODE_HEALTHY,
    QUARANTINE_NAME,
    StreamConfig,
    StreamResult,
    run_stream,
)

__all__ = [
    "StreamEvent",
    "GateConfig",
    "validate_event",
    "events_from_split",
    "Quarantine",
    "read_quarantine",
    "StreamJournal",
    "IntervalRecord",
    "StreamJournalError",
    "StreamJournalIOError",
    "STREAM_JOURNAL_NAME",
    "chain_extend",
    "StreamConfig",
    "StreamResult",
    "run_stream",
    "MODE_HEALTHY",
    "MODE_DEGRADED",
    "QUARANTINE_NAME",
]
