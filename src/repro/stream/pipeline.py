"""Fault-tolerant prequential (test-then-learn) streaming driver.

The pipeline consumes a chronological event stream and, per event:

1. **gate** — validate against the dedup ring / watermark / catalog;
   rejects land in the dead-letter quarantine with a structured reason
   (:mod:`repro.stream.events`);
2. **score** — rank the event's item under the user's *current* stored
   interests (test-then-learn: the score is an honest out-of-sample
   measurement, taken before the event can influence the model) and
   fold hit@k / NDCG@k into a sliding window;
3. **learn** — one incremental training step on the event (skipped in
   degraded mode: the event is queued in the bounded ingest buffer);
4. **commit** — every ``checkpoint_every`` source events the model
   checkpoint and the offset journal land atomically
   (checkpoint-before-journal ordering, seeded retry-with-backoff on
   transient IO errors), making crash-at-any-event-boundary +
   ``resume=True`` metric-identical and exactly-once: the SHA-256
   chain over trained event sequence numbers proves no event was lost
   or double-trained.

Degradation state machine (evaluated only at commit boundaries, so the
demote/recover decisions replay identically on resume)::

    HEALTHY --(non-finite params/interests)--> rollback + DEGRADED
    HEALTHY --(window recall < floor)--------> DEGRADED (no rollback)
    DEGRADED: score-only; serve stale interests; queue events in the
              bounded buffer (overflow -> backpressure drops)
    DEGRADED --(queued events retrain cleanly)--> HEALTHY  (recovered)
    DEGRADED --(attempt budget exhausted)-------> quarantine the queue
              as ``degraded-dropped`` and resume HEALTHY from the last
              clean commit

Mid-stream cold start: events may reference users and items the model
has never seen; user states are created and the item-embedding table /
negative sampler grow in place (optimizer moment rows follow — see
:meth:`repro.nn.optim.Adam._sync_grown_rows`), drawing from the
checkpointed model RNG so growth replays identically on resume.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import faults
from ..autograd import Tensor
from ..eval.metrics import metrics_from_ranks, ranks_of_targets
from ..incremental.strategy import IncrementalStrategy
from ..nn import Adam, SparseAdam, clip_grad_norm
from ..obs import prof as _prof
from ..obs import trace as obs
from ..obs.metrics import LATENCY_EDGES
from ..persistence import load_checkpoint, run_fingerprint, save_checkpoint
from ..sanitize import capture as _capture
from .events import (
    GateConfig,
    Quarantine,
    StreamEvent,
    events_from_split,
    validate_event,
)
from .journal import (
    IntervalRecord,
    StreamJournal,
    StreamJournalError,
    chain_extend,
)

PathLike = Union[str, Path]

MODE_HEALTHY = "healthy"
MODE_DEGRADED = "degraded"

QUARANTINE_NAME = "quarantine.jsonl"

__all__ = [
    "StreamConfig",
    "StreamResult",
    "run_stream",
    "MODE_HEALTHY",
    "MODE_DEGRADED",
    "QUARANTINE_NAME",
]


@dataclass
class StreamConfig:
    """Streaming pipeline policy knobs."""

    #: source events per commit interval (checkpoint + journal write)
    checkpoint_every: int = 32
    #: sliding-window length (events) for incremental recall/NDCG
    window: int = 64
    #: cutoff for the per-event hit/NDCG measurement
    k: int = 20
    #: per-user history tail used for interest extraction per step
    max_history: int = 50
    #: dedup ring size (distinct recent event keys remembered)
    dedup_window: int = 512
    #: events older than ``watermark - max_lateness`` are stale
    max_lateness: float = 50.0
    #: bounded ingest buffer capacity while degraded (backpressure)
    buffer_size: int = 256
    #: demote to score-only when window recall drops below this
    #: (0.0 disables the floor; the non-finite guard is always on)
    min_window_recall: float = 0.0
    #: scored events before the recall floor arms (and re-arms after a
    #: recovery) — a cold window must not trip the guard
    warmup: int = 64
    #: degraded-spell recovery attempts before the queue is dropped
    max_recovery_attempts: int = 3
    #: transient-IO retries per commit write (after the first try)
    max_retries: int = 4
    #: base backoff delay in seconds; attempt ``a`` sleeps
    #: ``base * 2^a * jitter`` with seeded jitter in [0.5, 1.0)
    backoff_base: float = 0.05
    backoff_seed: int = 0
    #: create user states / grow the item table for unseen ids; when
    #: off such events are quarantined (``unknown-user``/``unknown-item``)
    grow_users: bool = True
    grow_items: bool = True


@dataclass
class StreamResult:
    """Outcome of one streaming run (see also the per-interval records)."""

    dataset: str
    model: str
    strategy: str
    events: int                      #: source events consumed
    scored: int
    trained: int
    quarantined: Dict[str, int]      #: reason -> count
    dropped: int                     #: backpressure drops
    backoffs: int
    degraded_spells: int
    recoveries: int
    users_created: int
    items_grown: int
    window_recall: Optional[float]
    window_ndcg: Optional[float]
    chain: str                       #: exactly-once witness
    mode: str
    intervals: List[IntervalRecord] = field(default_factory=list)
    resumed_from: Optional[int] = None
    directory: Optional[Path] = None

    @property
    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    def summary(self) -> dict:
        """Flat JSON-friendly rollup (CLI output, benchmarks)."""
        return {
            "dataset": self.dataset,
            "model": self.model,
            "strategy": self.strategy,
            "events": self.events,
            "scored": self.scored,
            "trained": self.trained,
            "quarantined": dict(sorted(self.quarantined.items())),
            "quarantined_total": self.quarantined_total,
            "dropped": self.dropped,
            "backoffs": self.backoffs,
            "degraded_spells": self.degraded_spells,
            "recoveries": self.recoveries,
            "users_created": self.users_created,
            "items_grown": self.items_grown,
            "window_recall": self.window_recall,
            "window_ndcg": self.window_ndcg,
            "mode": self.mode,
            "intervals": len(self.intervals),
            "chain": self.chain[:16],
        }


class _Pipeline:
    """One streaming run's mutable state + the driver loop."""

    def __init__(self, strategy: IncrementalStrategy,
                 events: Sequence[StreamEvent], config: StreamConfig,
                 directory: Optional[Path], resume: bool,
                 dataset_name: str, model_name: str):
        self.strategy = strategy
        self.events = list(events)
        self.config = config
        self.directory = directory
        self.resume = resume
        self.dataset_name = dataset_name
        self.model_name = model_name
        self.gate = GateConfig(
            max_lateness=config.max_lateness,
            allow_new_users=config.grow_users,
            allow_new_items=config.grow_items,
        )

        self.journal: Optional[StreamJournal] = None
        self.quarantine: Optional[Quarantine] = None
        self.resumed_from: Optional[int] = None

        # ---- stream state (everything here round-trips the journal) ----
        self.offset = 0                 # source events consumed
        self.interval = 0               # next interval index to commit
        self.watermark = float("-inf")
        self.chain = ""
        self.mode = MODE_HEALTHY
        self.attempts = 0
        self.window: deque = deque(maxlen=config.window)
        self._dedup: "OrderedDict[Tuple, None]" = OrderedDict()
        self.histories: Dict[int, List[int]] = {}
        self.pending: List[dict] = []   # bounded ingest buffer (degraded)
        self.counters: Dict[str, int] = {
            "scored": 0, "trained": 0, "queued": 0, "dropped": 0,
            "backoffs": 0, "degraded_spells": 0, "recoveries": 0,
            "users_created": 0, "items_grown": 0, "flood_injected": 0,
            "skipped_no_history": 0, "nonfinite_skips": 0,
        }
        self.quarantined_by_reason: Dict[str, int] = {}
        self._floor_arm = config.warmup

        # ---- per-interval accumulators (reset at each commit) ----------
        self._committed_chain = ""
        self._committed_trained = 0
        self._interval_events: List[dict] = []
        self._last_commit_offset = 0
        self._records: List[IntervalRecord] = []
        self._opt: Optional[Adam] = None

        self._delayed: List[Tuple[int, StreamEvent]] = []  # reorder faults
        self._backoff_rng = np.random.default_rng(config.backoff_seed)

    # ------------------------------------------------------------------ #
    # journal state round-trip
    # ------------------------------------------------------------------ #
    def _state_blob(self) -> dict:
        return {
            "interval": int(self.interval),
            "offset": int(self.offset),
            "watermark": (None if self.watermark == float("-inf")
                          else float(self.watermark)),
            "chain": self.chain,
            "mode": self.mode,
            "attempts": int(self.attempts),
            "floor_arm": int(self._floor_arm),
            "num_items": int(self.strategy.model.num_items),
            "window": [[float(h), float(n)] for h, n in self.window],
            "dedup": [[int(u), int(it), float(ts)]
                      for (u, it, ts) in self._dedup],
            "histories": {str(u): [int(i) for i in h]
                          for u, h in sorted(self.histories.items())},
            "pending": list(self.pending),
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
            "quarantined": {k: int(v) for k, v in
                            sorted(self.quarantined_by_reason.items())},
        }

    def _restore_state(self, blob: dict) -> None:
        self.offset = int(blob["offset"])
        self.watermark = (float("-inf") if blob["watermark"] is None
                          else float(blob["watermark"]))
        self.chain = str(blob["chain"])
        self.mode = str(blob["mode"])
        self.attempts = int(blob["attempts"])
        self._floor_arm = int(blob["floor_arm"])
        self.window = deque(
            [(float(h), float(n)) for h, n in blob["window"]],
            maxlen=self.config.window)
        self._dedup = OrderedDict(
            ((int(u), int(it), float(ts)), None)
            for u, it, ts in blob["dedup"])
        self.histories = {int(u): [int(i) for i in h]
                          for u, h in blob["histories"].items()}
        self.pending = [dict(p) for p in blob["pending"]]
        self.counters.update({k: int(v)
                              for k, v in blob["counters"].items()})
        self.quarantined_by_reason = {
            k: int(v) for k, v in blob.get("quarantined", {}).items()}
        self._committed_chain = self.chain
        self._committed_trained = self.counters["trained"]

    # ------------------------------------------------------------------ #
    # preparation / resume
    # ------------------------------------------------------------------ #
    def _prepare(self) -> None:
        if self.directory is not None and self.resume:
            journal = StreamJournal.load(self.directory)
            fingerprint = run_fingerprint(self.strategy)
            if journal.fingerprint != fingerprint:
                raise StreamJournalError(
                    f"stream journal fingerprint {journal.fingerprint} "
                    f"does not match this strategy/config ({fingerprint})")
            restored = journal.last_restorable_interval()
            if restored is not None:
                self._restore_run(journal, restored)
                return
            obs.event("stream.restart", reason="no-restorable-interval")
        self._fresh_run()

    def _restore_run(self, journal: StreamJournal, restored: int) -> None:
        blob = journal.state_for(restored)
        model = self.strategy.model
        # pre-grow to the journaled catalog so the checkpoint's (grown)
        # embedding table restores shape-exact; rows are overwritten by
        # the load, so no RNG is consumed here
        model.grow_items(int(blob["num_items"]), rng=None)
        self.strategy.sampler.grow(model.num_items)
        load_checkpoint(self.strategy,
                        journal.checkpoint_path(restored),
                        create_missing=True)
        self._restore_state(blob)
        # drop journal entries past the restore point (a fallback from a
        # corrupt latest checkpoint): they will be re-committed
        for stale in [i for i in journal.intervals if i > restored]:
            del journal.intervals[stale]
        if journal.state is not blob:
            journal.state, journal.prev_state = blob, None
        self.journal = journal
        self._commit_with_retry(journal.write)
        self.interval = restored + 1
        self._last_commit_offset = self.offset
        self._records = [journal.intervals[i]
                         for i in sorted(journal.intervals)]
        self.resumed_from = restored
        self.quarantine = Quarantine(self.directory / QUARANTINE_NAME,
                                     resume_offset=self.offset)
        obs.event("stream.resumed", interval=restored, offset=self.offset,
                  mode=self.mode)

    def _fresh_run(self) -> None:
        if self.directory is not None:
            self.journal = StreamJournal(
                self.directory,
                fingerprint=run_fingerprint(self.strategy),
                dataset=self.dataset_name, model=self.model_name,
                strategy=self.strategy.name)
            # a fresh run in a reused directory starts a fresh quarantine
            self.quarantine = Quarantine(self.directory / QUARANTINE_NAME,
                                         resume_offset=0)
        with obs.span("stream.pretrain"):
            self.strategy.pretrain()
        self._boundary()  # interval 0: the pretrained baseline at offset 0

    # ------------------------------------------------------------------ #
    # driver loop
    # ------------------------------------------------------------------ #
    def run(self) -> StreamResult:
        self._prepare()
        total = len(self.events)
        with obs.span("stream.run", events=total, start_offset=self.offset):
            while self.offset < total:
                for late in self._due_delayed():
                    self._process(late)
                event = self.events[self.offset]
                self.offset += 1
                mods = faults.fire("stream-event", seq=event.seq,
                                   user=event.user, item=event.item,
                                   offset=self.offset - 1)
                event, followers = self._apply_delivery_mods(event, mods)
                if event is not None:
                    self._process(event)
                for injected in followers:
                    self._process(injected)
                if (self.offset - self._last_commit_offset
                        >= self.config.checkpoint_every):
                    self._boundary()
            for late in self._due_delayed(drain=True):
                self._process(late)
            if (self.offset > self._last_commit_offset
                    or self.mode == MODE_DEGRADED or self.pending):
                self._boundary()
        if self.quarantine is not None:
            self.quarantine.close()
        return self._result()

    def _due_delayed(self, drain: bool = False) -> List[StreamEvent]:
        """Reordered events whose hold-back has elapsed, in release order."""
        if not self._delayed:
            return []
        due = [(rel, evt) for rel, evt in self._delayed
               if drain or rel <= self.offset]
        self._delayed = [(rel, evt) for rel, evt in self._delayed
                         if not (drain or rel <= self.offset)]
        return [evt for _, evt in due]

    def _apply_delivery_mods(self, event: StreamEvent, mods: dict):
        """Apply delivery-fault modifiers from the ``stream-event`` probe.

        Returns ``(event_or_None, follower_events)`` — ``None`` when the
        event was held back (reorder).
        """
        followers: List[StreamEvent] = []
        if not mods:
            return event, followers
        malform = mods.get("malform")
        if malform == "user":
            event = StreamEvent(event.seq, -1, event.item, event.ts)
        elif malform == "item":
            event = StreamEvent(event.seq, event.user, -1, event.ts)
        elif malform == "ts":
            event = StreamEvent(event.seq, event.user, event.item,
                                float("nan"))
        if mods.get("duplicate"):
            followers.append(event)
        flood = int(mods.get("flood", 0))
        for burst_idx in range(flood):
            n = self.counters["flood_injected"]
            self.counters["flood_injected"] += 1
            followers.append(StreamEvent(
                seq=2_000_000 + n,
                user=1_000_000 + n,          # each flood event: a new user
                item=int(self.strategy.model.num_items) + burst_idx,  # …and a new item
                ts=(0.0 if self.watermark == float("-inf")
                    else self.watermark) + 1.0,
            ))
        delay = int(mods.get("reorder", 0))
        if delay > 0:
            self._delayed.append((self.offset + delay, event))
            return None, followers
        return event, followers

    # ------------------------------------------------------------------ #
    # per-event path: gate -> score -> learn
    # ------------------------------------------------------------------ #
    def _process(self, event: StreamEvent) -> None:
        rejection = validate_event(
            event, watermark=self.watermark, seen_keys=self._dedup,
            num_items=self.strategy.model.num_items,
            known_users=self.strategy.states.keys(), gate=self.gate)
        if rejection is not None:
            self._quarantine(event, *rejection)
        else:
            self._accept(event)
        faults.fire("stream-event-boundary", seq=event.seq,
                    offset=self.offset)

    def _quarantine(self, event: StreamEvent, reason: str,
                    detail: str) -> None:
        if self.quarantine is not None:
            self.quarantine.add(event, reason, detail,
                                offset=max(self.offset - 1, 0))
        self.quarantined_by_reason[reason] = (
            self.quarantined_by_reason.get(reason, 0) + 1)
        obs.counter("stream.quarantined_events")
        obs.event("stream.quarantined", seq=event.seq, reason=reason,
                  user=(int(event.user) if isinstance(event.user, (int, np.integer)) else None),
                  item=(int(event.item) if isinstance(event.item, (int, np.integer)) else None))

    def _accept(self, event: StreamEvent) -> None:
        user, item = int(event.user), int(event.item)
        self.watermark = max(self.watermark, float(event.ts))
        self._remember_key(event.key())
        self._ensure_user(user)
        self._ensure_item(item)

        score_start = time.perf_counter()
        with _prof.phase("score"):
            hit, ndcg = self._score(user, item)
        self.window.append((hit, ndcg))
        self.counters["scored"] += 1
        if obs.enabled():
            obs.counter("stream.scored_events")
            obs.observe("stream.score_seconds",
                        time.perf_counter() - score_start,
                        edges=LATENCY_EDGES)
            obs.observe("stream.event_ndcg", ndcg)
            recall = float(np.mean([h for h, _ in self.window]))
            obs.gauge("stream.window_recall", recall)

        history = list(self.histories.get(user, []))
        entry = {"seq": int(event.seq), "user": user, "item": item,
                 "ts": float(event.ts), "history": history}
        if self.mode == MODE_HEALTHY:
            learn_start = time.perf_counter()
            with _prof.phase("learn"):
                took_step = self._train_one(user, item, history)
            if took_step:
                if obs.enabled():
                    obs.observe("stream.learn_seconds",
                                time.perf_counter() - learn_start,
                                edges=LATENCY_EDGES)
                self.chain = chain_extend(self.chain, event.seq)
                self.counters["trained"] += 1
                self._interval_events.append(entry)
            faults.fire("stream-trained", seq=event.seq,
                        strategy=self.strategy)
        else:
            self.counters["queued"] += 1
            self._enqueue_pending(entry)

        tail = self.histories.setdefault(user, [])
        tail.append(item)
        if len(tail) > self.config.max_history:
            del tail[:len(tail) - self.config.max_history]

    def _remember_key(self, key: Tuple) -> None:
        self._dedup[key] = None
        while len(self._dedup) > self.config.dedup_window:
            self._dedup.popitem(last=False)

    def _ensure_user(self, user: int) -> None:
        if user in self.strategy.states:
            return
        self.strategy.states[user] = self.strategy.model.init_user_state(user)
        self.counters["users_created"] += 1
        obs.counter("stream.users_created")

    def _ensure_item(self, item: int) -> None:
        model = self.strategy.model
        if item < model.num_items:
            return
        added = model.grow_items(item + 1, rng=model.rng)
        self.strategy.sampler.grow(model.num_items)
        self.counters["items_grown"] += added
        obs.counter("stream.items_grown", added)

    def _score(self, user: int, item: int) -> Tuple[float, float]:
        """Prequential measurement: rank the item before learning it."""
        scores = self.strategy.score_user(user)
        ranks = ranks_of_targets(scores, [item])
        hits, ndcgs = metrics_from_ranks(ranks, self.config.k)
        return float(hits[0]), float(ndcgs[0])

    def _train_one(self, user: int, item: int,
                   history: Sequence[int]) -> bool:
        """One prequential training step; True when a step was taken."""
        if not history:
            self.counters["skipped_no_history"] += 1
            return False
        strategy = self.strategy
        state = strategy.states[user]
        opt = self._optimizer()
        if state.sa_weights is not None and not opt.has_param(state.sa_weights):
            opt.add_param(state.sa_weights)
        tail = list(history)[-self.config.max_history:]
        interests = strategy.model.compute_interests(state, tail)
        negatives = strategy.sampler.sample(item)[None, :]
        loss = strategy.model.loss_targets(interests, [item], negatives)
        mods = faults.fire("train-step", step=strategy._fault_step,
                           user=user)
        strategy._fault_step += 1
        if mods.get("poison_nan"):
            loss = loss * Tensor(float("nan"), requires_grad=False)
        if not np.isfinite(loss.data).all():
            # same containment rule as the span trainer: a non-finite
            # loss must not reach the parameters
            obs.counter("train.nonfinite_skips")
            self.counters["nonfinite_skips"] += 1
            return False
        opt.zero_grad()
        loss.backward()
        clip_grad_norm(opt.params, strategy.config.grad_clip)
        opt.step()
        strategy.model.item_emb.zero_padding_row()
        state.interests = _capture(interests.data.copy())
        return True

    def _optimizer(self) -> Adam:
        """The interval's optimizer (fresh per commit interval, so a
        resumed run rebuilds identical optimizer state from the
        boundary; moment rows auto-grow with the embedding table)."""
        if self._opt is None:
            params = list(self.strategy.model.parameters())
            if getattr(self.strategy.config, "sparse_adam", False):
                self._opt = SparseAdam(params, lr=self.strategy.config.lr)
            else:
                self._opt = Adam(params, lr=self.strategy.config.lr)
        return self._opt

    def _enqueue_pending(self, entry: dict) -> None:
        self.pending.append(entry)
        if len(self.pending) > self.config.buffer_size:
            dropped = self.pending.pop(0)
            self.counters["dropped"] += 1
            obs.counter("stream.backpressure_drops")
            obs.event("stream.backpressure", seq=dropped["seq"],
                      fill=len(self.pending))
        obs.gauge("stream.buffer_fill", len(self.pending))

    # ------------------------------------------------------------------ #
    # commit boundary: anomaly check / recovery, then checkpoint+journal
    # ------------------------------------------------------------------ #
    def _boundary(self) -> None:
        with obs.span("stream.interval", interval=self.interval,
                      offset=self.offset, mode=self.mode):
            if self.mode == MODE_HEALTHY:
                self._check_anomalies()
            else:
                self._attempt_recovery()
            self._commit()
        obs.sync()
        faults.fire("stream-boundary", interval=self.interval - 1,
                    offset=self.offset)

    def _window_recall(self) -> Optional[float]:
        if not self.window:
            return None
        return float(np.mean([h for h, _ in self.window]))

    def _window_ndcg(self) -> Optional[float]:
        if not self.window:
            return None
        return float(np.mean([n for _, n in self.window]))

    def _non_finite_sites(self, users: Sequence[int]) -> List[str]:
        sites = []
        for name, param in self.strategy.model.named_parameters():
            if not faults.all_finite(param.data):
                sites.append(f"param/{name}")
        for user in sorted(set(users)):
            state = self.strategy.states.get(user)
            if state is None:
                continue
            if not faults.all_finite(state.interests):
                sites.append(f"user/{user}/interests")
            if state.sa_weights is not None and \
                    not faults.all_finite(state.sa_weights.data):
                sites.append(f"user/{user}/sa_weights")
        return sites

    def _check_anomalies(self) -> None:
        sites = self._non_finite_sites(
            [e["user"] for e in self._interval_events])
        if sites:
            self._degrade("non-finite-state", detail=sites[:10],
                          rollback=True)
            return
        recall = self._window_recall()
        if (self.config.min_window_recall > 0.0 and recall is not None
                and self.counters["scored"] >= self._floor_arm
                and recall < self.config.min_window_recall):
            self._degrade(
                "window-recall-floor",
                detail={"window_recall": recall,
                        "floor": self.config.min_window_recall},
                rollback=False)

    def _degrade(self, reason: str, detail, rollback: bool) -> None:
        self.mode = MODE_DEGRADED
        self.attempts = 0
        self.counters["degraded_spells"] += 1
        obs.counter("stream.degradations")
        obs.event("stream.degraded", reason=reason, interval=self.interval,
                  rollback=rollback)
        self._record_incident(reason, detail,
                              "degrade+rollback" if rollback else "degrade")
        if rollback:
            self._restore_committed(requeue=True)

    def _restore_committed(self, requeue: bool) -> None:
        """Discard the interval's training effects: restore the last
        committed checkpoint (params, interests, RNG streams) and reset
        the exactly-once chain to its committed prefix.  With
        ``requeue`` the discarded events enter the ingest buffer to be
        retrained after recovery."""
        if self.journal is not None and self.interval > 0:
            load_checkpoint(
                self.strategy,
                self.journal.checkpoint_path(self.interval - 1),
                create_missing=True)
        self.chain = self._committed_chain
        self.counters["trained"] = self._committed_trained
        if requeue:
            for entry in self._interval_events:
                self._enqueue_pending(entry)
        self._interval_events = []
        self._opt = None

    def _attempt_recovery(self) -> None:
        self.attempts += 1
        obs.event("stream.recovery_attempt", attempt=self.attempts,
                  queued=len(self.pending), interval=self.interval)
        retrained = 0
        for entry in self.pending:
            if self._train_one(entry["user"], entry["item"],
                               entry["history"]):
                self.chain = chain_extend(self.chain, entry["seq"])
                self.counters["trained"] += 1
                retrained += 1
        sites = self._non_finite_sites([e["user"] for e in self.pending])
        if not sites:
            self.mode = MODE_HEALTHY
            self.counters["recoveries"] += 1
            self.attempts = 0
            self.pending = []
            self._floor_arm = self.counters["scored"] + self.config.warmup
            obs.counter("stream.recoveries")
            obs.event("stream.recovered", interval=self.interval,
                      retrained=retrained)
            self._record_incident(
                "recovered", {"retrained": retrained}, "promote")
            return
        # the retrain itself went non-finite: roll back again and keep
        # the queue for another attempt — until the budget runs out
        self._restore_committed(requeue=False)
        if self.attempts >= self.config.max_recovery_attempts:
            for entry in self.pending:
                self._quarantine(
                    StreamEvent(entry["seq"], entry["user"], entry["item"],
                                entry["ts"]),
                    "degraded-dropped",
                    f"recovery failed {self.attempts} times")
            dropped = len(self.pending)
            self.pending = []
            self.mode = MODE_HEALTHY  # committed state is clean again
            self.attempts = 0
            self._floor_arm = self.counters["scored"] + self.config.warmup
            obs.event("stream.recovered", interval=self.interval,
                      retrained=0, dropped=dropped)
            self._record_incident(
                "recovery-exhausted", {"dropped": dropped},
                "drop-queue+promote")

    def _commit(self) -> None:
        record = IntervalRecord(
            interval=self.interval,
            offset=self.offset,
            trained=self.counters["trained"],
            scored=self.counters["scored"],
            quarantined=sum(self.quarantined_by_reason.values()),
            dropped=self.counters["dropped"],
            chain=self.chain,
            checkpoint=(self.journal.checkpoint_path(self.interval).name
                        if self.journal is not None else ""),
            mode=self.mode,
            window_recall=self._window_recall(),
            window_ndcg=self._window_ndcg(),
        )
        if record.window_recall is not None and record.window_ndcg is None:
            record.window_ndcg = 0.0
        if self.journal is not None:
            path = self.journal.checkpoint_path(self.interval)
            self._commit_with_retry(
                lambda: save_checkpoint(self.strategy, path,
                                        span=self.interval))
            # journal mutation happens exactly once; only the (atomic,
            # idempotent) write retries — a retried record_interval()
            # would shift the state/prev_state pair twice
            self.journal.intervals[record.interval] = record
            self.journal.prev_state = self.journal.state
            self.journal.state = self._state_blob()
            self._commit_with_retry(self.journal.write)
            obs.counter("stream.intervals_committed")
            obs.event("stream.committed", interval=record.interval,
                      offset=record.offset, trained=record.trained,
                      mode=record.mode, checkpoint=record.checkpoint)
        self._records.append(record)
        self._committed_chain = self.chain
        self._committed_trained = self.counters["trained"]
        self._interval_events = []
        self._opt = None
        self._last_commit_offset = self.offset
        self.interval += 1

    def _record_incident(self, kind: str, detail, action: str) -> None:
        if self.journal is None:
            return
        self.journal.incidents.append({
            "interval": int(self.interval), "kind": kind,
            "detail": detail, "action": action})
        self._commit_with_retry(self.journal.write)

    def _commit_with_retry(self, write) -> None:
        """Run a commit write, retrying transient IO errors with seeded
        exponential backoff.  Corruption errors (``CheckpointError``,
        ``StreamJournalError`` — ``ValueError``s) and simulated crashes
        propagate: retrying cannot fix them."""
        for attempt in range(self.config.max_retries + 1):
            try:
                write()
                return
            except OSError as err:
                if attempt >= self.config.max_retries:
                    raise
                delay = (self.config.backoff_base * (2 ** attempt)
                         * (0.5 + 0.5 * float(self._backoff_rng.random())))
                self.counters["backoffs"] += 1
                obs.counter("stream.backoffs")
                obs.event("stream.backoff", attempt=attempt,
                          delay_s=round(delay, 6), error=str(err)[:200])
                time.sleep(delay)

    # ------------------------------------------------------------------ #
    def _result(self) -> StreamResult:
        return StreamResult(
            dataset=self.dataset_name,
            model=self.model_name,
            strategy=self.strategy.name,
            events=self.offset,
            scored=self.counters["scored"],
            trained=self.counters["trained"],
            quarantined=dict(sorted(self.quarantined_by_reason.items())),
            dropped=self.counters["dropped"],
            backoffs=self.counters["backoffs"],
            degraded_spells=self.counters["degraded_spells"],
            recoveries=self.counters["recoveries"],
            users_created=self.counters["users_created"],
            items_grown=self.counters["items_grown"],
            window_recall=self._window_recall(),
            window_ndcg=self._window_ndcg(),
            chain=self.chain,
            mode=self.mode,
            intervals=list(self._records),
            resumed_from=self.resumed_from,
            directory=self.directory,
        )


def run_stream(
    strategy: IncrementalStrategy,
    events: Optional[Sequence[StreamEvent]] = None,
    config: Optional[StreamConfig] = None,
    dataset_name: str = "",
    model_name: str = "",
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    trace_dir: Optional[PathLike] = None,
) -> StreamResult:
    """Run the prequential streaming pipeline over ``events``.

    ``strategy`` must be freshly constructed (pre-pretraining) — the
    pipeline pretrains on the strategy's split, then streams.  ``events``
    defaults to a deterministic chronological stream derived from the
    split's incremental spans (:func:`events_from_split`, seeded by the
    training config).  With ``checkpoint_dir`` the run is crash-safe:
    re-invoking with ``resume=True`` continues from the last committed
    interval, metric-identical to an uninterrupted run.  ``trace_dir``
    activates :mod:`repro.obs` tracing exactly as in
    :func:`repro.experiments.runner.run_strategy`.
    """
    stream_config = config or StreamConfig()
    if events is None:
        events = events_from_split(strategy.split,
                                   seed=strategy.config.seed)
    directory = Path(checkpoint_dir) if checkpoint_dir is not None else None
    owns_trace = trace_dir is not None and not obs.enabled()
    if owns_trace:
        run_id = "-".join(
            p for p in (dataset_name, model_name, strategy.name, "stream")
            if p)
        obs.start_tracing(trace_dir, run_id=run_id, resume=resume)
    try:
        pipeline = _Pipeline(strategy, events, stream_config, directory,
                             resume, dataset_name, model_name)
        return pipeline.run()
    finally:
        if owns_trace:
            obs.stop_tracing()
