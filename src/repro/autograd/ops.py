"""Functional operations built on :class:`repro.autograd.tensor.Tensor`.

These cover the specific operations the paper's models need: numerically
stable softmax / log-softmax (used by routing votes, attention, and the
sampled-softmax loss), the capsule *squash* nonlinearity (Sabour et al.,
2017), and small conveniences.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..contracts import shape_contract
from .tensor import Tensor

TensorLike = Union[Tensor, np.ndarray, float, list]


def _t(x: TensorLike) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


@shape_contract("(...S) f -> (...S) f")
def softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _t(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


@shape_contract("(...S) f -> (...S) f")
def log_softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _t(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def sigmoid(x: TensorLike) -> Tensor:
    return _t(x).sigmoid()


def tanh(x: TensorLike) -> Tensor:
    return _t(x).tanh()


def relu(x: TensorLike) -> Tensor:
    return _t(x).relu()


def exp(x: TensorLike) -> Tensor:
    return _t(x).exp()


def log(x: TensorLike) -> Tensor:
    return _t(x).log()


@shape_contract("(...S) f -> (...S) f")
def squash(x: TensorLike, axis: int = -1, eps: float = 1e-9) -> Tensor:
    """Capsule squash nonlinearity (Sabour et al., 2017).

    Keeps the direction of ``x`` while mapping its magnitude into [0, 1):
    ``squash(v) = (|v|^2 / (1 + |v|^2)) * v / |v|``.

    The paper applies this to high-level interest capsules (Eq. 4); interest
    *existence* is then read off the output's L2 norm, which PIT exploits
    (Eq. 17).
    """
    x = _t(x)
    sq_norm = (x * x).sum(axis=axis, keepdims=True)
    scale = sq_norm / (1.0 + sq_norm) / (sq_norm + eps) ** 0.5
    return x * scale


@shape_contract("(...S) f, (...S) f -> () f")
def binary_cross_entropy(pred: Tensor, target: Tensor, eps: float = 1e-9) -> Tensor:
    """Mean binary cross-entropy between probabilities ``pred`` and ``target``.

    Used by the EIR distillation loss (Eq. 10) where both arguments are
    sigmoid-softened logits, following Wang et al.'s practical formulation.
    """
    pred = pred.clip(eps, 1.0 - eps)
    loss = -(target * pred.log() + (1.0 - target) * (1.0 - pred).log())
    return loss.mean()


@shape_contract("(...S) f, (...S) f -> () f")
def cross_entropy_with_soft_targets(logits: Tensor, soft_targets: Tensor, axis: int = -1) -> Tensor:
    """Mean cross-entropy ``-sum(p_target * log_softmax(logits))``.

    This is the classic softmax distillation loss (Hinton et al., 2015),
    used by the IMSR(KD1/KD2/KD3) ablation variants.
    """
    logp = log_softmax(logits, axis=axis)
    per_example = -(soft_targets * logp).sum(axis=axis)
    return per_example.mean()


@shape_contract("(...S) f, (...S) f -> () f")
def mse(a: Tensor, b: Tensor) -> Tensor:
    """Mean squared error; backs the DIR (distance-based retainer) ablation."""
    diff = a - b
    return (diff * diff).mean()


@shape_contract("(N, D) f, (N, D) f -> (N) f")
def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot products of two (n, d) tensors -> (n,)."""
    return (a * b).sum(axis=-1)
