"""Reverse-mode autodiff substrate (replaces PyTorch in this reproduction)."""

from .tensor import (Tensor, concat, is_grad_enabled, no_grad, pad_rows,
                     stack, where)
from . import ops
from .grad_check import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "concat",
    "pad_rows",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "check_gradients",
    "numerical_gradient",
]
