"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper's models were written in PyTorch, which is unavailable here, so we
implement the same mathematics — a define-by-run compute graph with
vectorized, broadcasting-aware backpropagation — on top of numpy.

The public entry point is :class:`Tensor`.  Operations build a graph;
``Tensor.backward()`` runs reverse-mode differentiation through it.

Example
-------
>>> x = Tensor([[1.0, 2.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0]]
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import backend as _backend
from .. import sanitize as _sanitize
from ..obs import prof as _prof

ArrayLike = Union[float, int, list, tuple, np.ndarray, "Tensor"]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for backprop."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=_backend.active.compute_dtype)


class Tensor:
    """A numpy array plus an optional gradient and backward graph node.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array in the active backend's
        compute dtype (float64 on the paper-exact default backend,
        float32 under ``repro.backend`` ``"fast"``).
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fns", "_parents",
                 "_stamp", "__weakref__")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(_as_array(data),
                               dtype=_backend.active.compute_dtype)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        # list of (parent, fn) where fn maps d(out) -> d(parent)
        self._backward_fns: List[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = []
        self._parents: Tuple["Tensor", ...] = ()
        # sanitizer version stamp of self.data, taken when this tensor
        # first feeds a tracked op; verified and cleared by backward()
        self._stamp = None
        mem = _prof._MEM
        if mem is not None:
            mem.track(self)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None
        self._stamp = None

    # ------------------------------------------------------------------ #
    # graph building
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence[Tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
    ) -> "Tensor":
        """Create a graph node from op output + per-parent backward fns."""
        hooks = _prof._AUTOGRAD
        if hooks is not None:
            # sandwich timing: charge the wall time since the previous
            # attribution point to the op (caller) that built this node
            hooks.on_node(sys._getframe(1).f_code)
        track = _grad_enabled and any(p.requires_grad for p, _ in parents)
        out = Tensor(data, requires_grad=track)
        if track:
            out._backward_fns = [(p, fn) for p, fn in parents if p.requires_grad]
            out._parents = tuple(p for p, _ in out._backward_fns)
            if _sanitize._enabled:
                for p in out._parents:
                    if p._stamp is None:
                        p._stamp = _sanitize.buffer_stamp(p.data)
        return out

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs are the common case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = _as_array(grad).reshape(self.data.shape)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, it = stack[-1]
                advanced = False
                for parent in it:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)

        if _sanitize._enabled:
            for node in topo:
                if node._stamp is not None and \
                        node._stamp != _sanitize.buffer_stamp(node.data):
                    raise _sanitize.SanitizeViolation(
                        f"Tensor buffer (shape {node.data.shape}) was mutated "
                        f"in place between forward and backward; copy before "
                        f"mutating, or mutate under no_grad before the graph "
                        f"is built")
        for node in topo:
            node._stamp = None

        hooks = _prof._AUTOGRAD
        if hooks is not None:
            bwd_start = time.perf_counter()
            hooks.acc = 0.0

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._backward_fns:
                # leaf: accumulate
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, fn in node._backward_fns:
                if hooks is not None:
                    t0 = time.perf_counter()
                    contrib = fn(node_grad)
                    hooks.on_backward(fn, time.perf_counter() - t0)
                else:
                    contrib = fn(node_grad)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contrib
                else:
                    grads[key] = contrib
        # Any remaining grads belong to leaves reached without backward fns
        for node in topo:
            g = grads.get(id(node))
            if g is not None and not node._backward_fns:
                node.grad = g if node.grad is None else node.grad + g

        if hooks is not None:
            # topo sort + gradient accumulation: everything in this
            # backward() that the per-fn timings above did not cover
            hooks.prof._record_kernel(
                "bwd.graph_overhead",
                (time.perf_counter() - bwd_start) - hooks.acc)
            hooks.mark = time.perf_counter()

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        return Tensor._make(
            data,
            [
                (self, lambda g: _unbroadcast(g, self.shape)),
                (other, lambda g: _unbroadcast(g, other.shape)),
            ],
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, [(self, lambda g: -g)])

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        a, b = self, other
        return Tensor._make(
            data,
            [
                (a, lambda g: _unbroadcast(g * b.data, a.shape)),
                (b, lambda g: _unbroadcast(g * a.data, b.shape)),
            ],
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        a, b = self, other
        return Tensor._make(
            data,
            [
                (a, lambda g: _unbroadcast(g / b.data, a.shape)),
                (b, lambda g: _unbroadcast(-g * a.data / (b.data ** 2), b.shape)),
            ],
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        a = self
        return Tensor._make(
            data,
            [(a, lambda g: g * exponent * a.data ** (exponent - 1))],
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other
        data = a.data @ b.data

        def grad_a(g: np.ndarray) -> np.ndarray:
            if a.data.ndim == 1 and b.data.ndim == 1:
                return g * b.data  # scalar g
            if b.data.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                ga = np.multiply.outer(g, b.data) if g.ndim == 0 else g[..., None] * b.data
            elif a.data.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                ga = (b.data @ g[..., None])[..., 0]
            else:
                ga = g @ b.data.swapaxes(-1, -2)
            return _unbroadcast(ga, a.shape)

        def grad_b(g: np.ndarray) -> np.ndarray:
            if a.data.ndim == 1 and b.data.ndim == 1:
                return g * a.data
            if a.data.ndim == 1:  # (k,) @ (..., k, n) -> (..., n)
                gb = a.data[..., None] * g[..., None, :]
            elif b.data.ndim == 1:  # (..., m, k) @ (k,) -> (..., m)
                gb = a.data.swapaxes(-1, -2) @ g[..., None]
                gb = gb[..., 0]
            else:
                gb = a.data.swapaxes(-1, -2) @ g
            return _unbroadcast(gb, b.shape)

        return Tensor._make(data, [(a, grad_a), (b, grad_b)])

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) @ self

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._make(data, [(self, lambda g: g * data)])

    def log(self) -> "Tensor":
        a = self
        return Tensor._make(np.log(self.data), [(a, lambda g: g / a.data)])

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._make(data, [(self, lambda g: g * (1.0 - data ** 2))])

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(data, [(self, lambda g: g * data * (1.0 - data))])

    def relu(self) -> "Tensor":
        a = self
        data = np.maximum(self.data, 0.0)
        return Tensor._make(data, [(a, lambda g: g * (a.data > 0))])

    def abs(self) -> "Tensor":
        a = self
        return Tensor._make(np.abs(self.data), [(a, lambda g: g * np.sign(a.data))])

    def clip(self, low: float, high: float) -> "Tensor":
        a = self
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._make(data, [(a, lambda g: g * mask)])

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, a.shape).copy() if np.ndim(g) == 0 else np.full(a.shape, g)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, a.shape).copy()

        return Tensor._make(data, [(a, grad_fn)])

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (a.data == data).astype(a.data.dtype)
                mask /= mask.sum()
                return mask * g
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            data_expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (a.data == data_expanded).astype(a.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return mask * g_expanded

        return Tensor._make(data, [(a, grad_fn)])

    def norm(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm, numerically safe at zero via ``eps``."""
        return ((self * self).sum(axis=axis, keepdims=keepdims) + eps) ** 0.5

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = self.data.reshape(shape)
        return Tensor._make(data, [(a, lambda g: g.reshape(a.shape))])

    def transpose(self, *axes) -> "Tensor":
        a = self
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
            data = self.data.T
        else:
            if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
                axes = tuple(axes[0])
            axes_tuple = tuple(axes)
            data = self.data.transpose(axes_tuple)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axes_tuple is None:
                return g.T
            inverse = np.argsort(axes_tuple)
            return g.transpose(inverse)

        return Tensor._make(data, [(a, grad_fn)])

    def swapaxes(self, ax1: int, ax2: int) -> "Tensor":
        a = self
        data = self.data.swapaxes(ax1, ax2)
        return Tensor._make(data, [(a, lambda g: g.swapaxes(ax1, ax2))])

    def expand_dims(self, axis: int) -> "Tensor":
        a = self
        data = np.expand_dims(self.data, axis)
        return Tensor._make(data, [(a, lambda g: np.squeeze(g, axis=axis))])

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        a = self
        data = np.squeeze(self.data, axis=axis)
        return Tensor._make(data, [(a, lambda g: g.reshape(a.shape))])

    def __getitem__(self, index) -> "Tensor":
        a = self
        data = self.data[index]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros_like(a.data)
            np.add.at(out, index, g)
            return out

        return Tensor._make(data, [(a, grad_fn)])

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding-style): ``out[i] = self[indices[i]]``.

        Gradients are scatter-added back, so repeated indices accumulate.
        """
        indices = np.asarray(indices, dtype=np.int64)
        a = self
        data = self.data[indices]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            out = np.zeros_like(a.data)
            _backend.active.scatter_add(
                out, indices.reshape(-1),
                g.reshape(-1, *a.data.shape[1:]) if indices.ndim > 1 else g)
            return out

        return Tensor._make(data, [(a, grad_fn)])


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    parents = []
    offset = 0
    for t in tensors:
        width = t.data.shape[axis]
        lo, hi = offset, offset + width

        def make_fn(lo=lo, hi=hi):
            def grad_fn(g: np.ndarray) -> np.ndarray:
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(lo, hi)
                return g[tuple(slicer)]

            return grad_fn

        parents.append((t, make_fn()))
        offset = hi
    return Tensor._make(data, parents)


def pad_rows(packed: Tensor, lengths: Sequence[int],
             n_max: Optional[int] = None) -> Tensor:
    """Re-slice a packed ``(sum(lengths), ...)`` tensor into a
    zero-padded ``(B, n_max, ...)`` batch.

    Each packed row lands at exactly one padded slot, so the backward
    is pure slicing — no scatter, and no gradient accumulates anywhere
    (padded slots hold exact zeros forward and drop their gradient,
    matching a gather of an appended zero row bit for bit).
    """
    lengths = [int(n) for n in lengths]
    if sum(lengths) != packed.data.shape[0]:
        raise ValueError(
            f"pad_rows: lengths sum to {sum(lengths)} but packed has "
            f"{packed.data.shape[0]} rows")
    if n_max is None:
        n_max = max(lengths)
    a = packed
    data = np.zeros((len(lengths), n_max) + a.data.shape[1:],
                    dtype=a.data.dtype)
    offset = 0
    for b, n in enumerate(lengths):
        # slice assignment copies the packed rows; no alias survives
        data[b, :n] = a.data[offset:offset + n]  # repro: noqa[RA603]
        offset += n

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return np.concatenate([g[b, :n] for b, n in enumerate(lengths)],
                              axis=0)

    return Tensor._make(data, [(a, grad_fn)])


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for idx, t in enumerate(tensors):
        def make_fn(idx=idx):
            def grad_fn(g: np.ndarray) -> np.ndarray:
                return np.take(g, idx, axis=axis)

            return grad_fn

        parents.append((t, make_fn()))
    return Tensor._make(data, parents)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select with gradient support; ``condition`` is constant."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)
    return Tensor._make(
        data,
        [
            (a, lambda g: _unbroadcast(np.where(condition, g, 0.0), a.shape)),
            (b, lambda g: _unbroadcast(np.where(condition, 0.0, g), b.shape)),
        ],
    )
