"""Finite-difference gradient checking for the autograd engine.

Every backward rule in :mod:`repro.autograd.tensor` is validated in the test
suite against the central-difference approximation computed here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    Parameters
    ----------
    fn:
        A function of Tensors returning a scalar Tensor.
    inputs:
        The tensors to call ``fn`` with.
    wrt:
        Index into ``inputs`` of the tensor to differentiate against.
    """
    base = inputs[wrt].data
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    # perturbing the live buffer is the whole point of central differences;
    # every write is restored before the next probe
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps  # repro: noqa[RA601]
        plus = float(fn(*inputs).data)
        flat[i] = original - eps  # repro: noqa[RA601]
        minus = float(fn(*inputs).data)
        flat[i] = original  # repro: noqa[RA601]
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.backward()
    for idx, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        numeric = numerical_gradient(fn, inputs, idx, eps=eps)
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
