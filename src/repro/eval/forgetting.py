"""Catastrophic-forgetting analysis (the paper's RQ4 instrumented).

Continual-learning literature (Kemker et al., 2018; Lopez-Paz &
Ranzato, 2017) quantifies forgetting with the accuracy matrix
``R[i, j]`` — performance on task *j*'s test set after training through
task *i*.  Here tasks are time spans: after training span ``i`` we
re-test the model on every earlier span's test items.  From R we derive:

* **backward transfer (BWT)** — mean over j < i of ``R[last, j] − R[j, j]``;
  negative values are forgetting;
* **forgetting measure** — mean over j of ``max_i R[i, j] − R[last, j]``.

FT should show strongly negative BWT; IMSR (retention + expansion)
should forget markedly less — the mechanism behind Table III's gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..data.schema import TemporalSplit
from ..incremental.strategy import IncrementalStrategy
from .evaluator import evaluate_span


@dataclass
class ForgettingReport:
    """The span-accuracy matrix and the derived scalar measures."""

    #: R[i][j]: HR on span j+1's items after training span i (i, j >= 1)
    matrix: np.ndarray
    spans: List[int]

    @property
    def final_row(self) -> np.ndarray:
        return self.matrix[-1]

    def backward_transfer(self) -> float:
        """Mean change on earlier spans after all training (negative =
        forgetting).

        The anchor for span ``j`` is ``R[j+1, j]`` — the first row in
        which that span's own training data has been consumed; any later
        change is purely a retention effect (sequential data means
        ``R[j, j]`` would confound forgetting with not-yet-seen items).
        """
        n = len(self.spans)
        if n < 2:
            return 0.0
        deltas = [
            self.matrix[-1, j] - self.matrix[j + 1, j] for j in range(n - 1)
        ]
        return float(np.mean(deltas))

    def forgetting_measure(self) -> float:
        """Mean peak-to-final drop per span (0 = no forgetting)."""
        n = len(self.spans)
        if n < 2:
            return 0.0
        drops = [
            float(np.nanmax(self.matrix[:, j]) - self.matrix[-1, j])
            for j in range(n - 1)
        ]
        return float(np.mean(drops))

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for i, span_i in enumerate(self.spans):
            row: Dict[str, object] = {"trained_span": span_i}
            for j, span_j in enumerate(self.spans):
                row[f"eval s{span_j + 1}"] = (
                    float(self.matrix[i, j]) if j <= i else float("nan")
                )
            rows.append(row)
        return rows


def forgetting_analysis(
    strategy: IncrementalStrategy,
    split: TemporalSplit,
    spans: Optional[List[int]] = None,
    eval_targets: str = "test",
) -> ForgettingReport:
    """Run the strategy through its spans, re-testing all earlier spans.

    The strategy must be freshly constructed; this function calls
    ``pretrain()`` and ``train_span()`` itself.  Evaluation of span ``j``
    uses span ``j+1``'s held-out *test* items, matching the paper's
    forward-test protocol, so ``R[i, j]`` reads "after training span i,
    how well do we predict what users did right after span j".

    ``eval_targets`` defaults to the strict ``"test"`` protocol here —
    unlike the headline evaluation, retrospective rows would otherwise
    score items the model has since *trained on* (spans j+1..i), which
    masks forgetting with leakage.
    """
    strategy.pretrain()
    spans = spans or list(range(1, split.T))
    n = len(spans)
    matrix = np.full((n, n), np.nan)
    for i, span_i in enumerate(spans):
        strategy.train_span(span_i)
        for j, span_j in enumerate(spans[: i + 1]):
            result = evaluate_span(
                strategy.score_user, split.spans[span_j],
                targets=eval_targets,
                batch_score_fn=strategy.score_users,
            )
            matrix[i, j] = result.hr
    return ForgettingReport(matrix=matrix, spans=spans)


def compare_forgetting(
    reports: Dict[str, ForgettingReport],
) -> List[Dict[str, object]]:
    """Tabulate BWT / forgetting across strategies (rows for reporting)."""
    return [
        {
            "strategy": name,
            "final_avg_HR": float(np.nanmean(report.final_row)),
            "backward_transfer": report.backward_transfer(),
            "forgetting": report.forgetting_measure(),
        }
        for name, report in reports.items()
    ]
