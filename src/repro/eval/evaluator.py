"""Span-level evaluation following the paper's protocol.

After training on span ``t``, the model is tested on span ``t+1``: for
each user with a test item there, score the full catalog from the user's
stored interest vectors and compute HR@20 / NDCG@20.  Per-span results are
averaged over spans ``1..T-1`` for the headline numbers (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.schema import SpanDataset
from .metrics import metrics_at_k


@dataclass
class EvalResult:
    """Aggregated metrics for one evaluation pass."""

    hr: float
    ndcg: float
    num_cases: int
    per_user: Dict[int, tuple] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        return {"HR": self.hr, "NDCG": self.ndcg, "n": self.num_cases}


def evaluate_span(
    score_fn: Callable[[int], np.ndarray],
    span: SpanDataset,
    k: int = 20,
    item_filter: Optional[Callable[[int, int], bool]] = None,
    keep_per_user: bool = False,
    targets: str = "test",
) -> EvalResult:
    """Evaluate ``score_fn(user) -> catalog scores`` on a span's items.

    ``targets`` selects the test cases per user:

    * ``"test"`` — the paper's protocol: the span's single held-out test
      item per user;
    * ``"all"`` — every item the user interacts with in the span.  When
      the model was trained through the *previous* span, all of these are
      unseen, so this is a legitimate densification of the protocol; our
      synthetic worlds have hundreds of users rather than the paper's
      hundreds of thousands, and the extra cases per user recover the
      statistical power the paper gets from sheer user count (see
      DESIGN.md).

    ``item_filter(user, item) -> bool`` restricts which test cases count —
    used by the Fig. 7(a) case study to split existing vs. new items.
    Per-user metrics (``keep_per_user``) average that user's cases.
    """
    if targets not in ("test", "all"):
        raise ValueError(f"targets must be 'test' or 'all', got {targets!r}")
    hits: List[float] = []
    ndcgs: List[float] = []
    per_user: Dict[int, tuple] = {}
    for user in span.user_ids():
        data = span.users[user]
        if targets == "test":
            user_items = [data.test_item] if data.test_item is not None else []
        else:
            user_items = data.all_items
        if item_filter is not None:
            user_items = [i for i in user_items if item_filter(user, i)]
        if not user_items:
            continue
        scores = score_fn(user)
        user_hits: List[float] = []
        user_ndcgs: List[float] = []
        for item in user_items:
            hit, ndcg = metrics_at_k(scores, item, k=k)
            user_hits.append(hit)
            user_ndcgs.append(ndcg)
        hits.extend(user_hits)
        ndcgs.extend(user_ndcgs)
        if keep_per_user:
            per_user[user] = (float(np.mean(user_hits)), float(np.mean(user_ndcgs)))
    if not hits:
        return EvalResult(hr=0.0, ndcg=0.0, num_cases=0, per_user=per_user)
    return EvalResult(
        hr=float(np.mean(hits)),
        ndcg=float(np.mean(ndcgs)),
        num_cases=len(hits),
        per_user=per_user,
    )


def average_results(results: Sequence[EvalResult]) -> EvalResult:
    """Average several spans' results, weighting spans equally (paper)."""
    usable = [r for r in results if r.num_cases > 0]
    if not usable:
        return EvalResult(hr=0.0, ndcg=0.0, num_cases=0)
    return EvalResult(
        hr=float(np.mean([r.hr for r in usable])),
        ndcg=float(np.mean([r.ndcg for r in usable])),
        num_cases=sum(r.num_cases for r in usable),
    )
