"""Span-level evaluation following the paper's protocol.

After training on span ``t``, the model is tested on span ``t+1``: for
each user with a test item there, score the full catalog from the user's
stored interest vectors and compute HR@20 / NDCG@20.  Per-span results are
averaged over spans ``1..T-1`` for the headline numbers (Table III).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.schema import SpanDataset
from ..obs import prof as _prof
from ..obs import trace as obs
from .metrics import metrics_from_ranks, ranks_of_user_targets


@dataclass
class EvalResult:
    """Aggregated metrics for one evaluation pass."""

    hr: float
    ndcg: float
    num_cases: int
    per_user: Dict[int, tuple] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        return {"HR": self.hr, "NDCG": self.ndcg, "n": self.num_cases}


def _collect_cases(
    span: SpanDataset,
    targets: str,
    item_filter: Optional[Callable[[int, int], bool]],
) -> List[Tuple[int, List[int]]]:
    """(user, test items) pairs in span user order — the span's test set."""
    cases: List[Tuple[int, List[int]]] = []
    for user in span.user_ids():
        data = span.users[user]
        if targets == "test":
            user_items = [data.test_item] if data.test_item is not None else []
        else:
            user_items = data.all_items
        if item_filter is not None:
            user_items = [i for i in user_items if item_filter(user, i)]
        if user_items:
            cases.append((user, user_items))
    return cases


def evaluate_span(
    score_fn: Callable[[int], np.ndarray],
    span: SpanDataset,
    k: int = 20,
    item_filter: Optional[Callable[[int, int], bool]] = None,
    keep_per_user: bool = False,
    targets: str = "test",
    batch_score_fn: Optional[Callable[[Sequence[int]], np.ndarray]] = None,
) -> EvalResult:
    """Evaluate ``score_fn(user) -> catalog scores`` on a span's items.

    ``targets`` selects the test cases per user:

    * ``"test"`` — the paper's protocol: the span's single held-out test
      item per user;
    * ``"all"`` — every item the user interacts with in the span.  When
      the model was trained through the *previous* span, all of these are
      unseen, so this is a legitimate densification of the protocol; our
      synthetic worlds have hundreds of users rather than the paper's
      hundreds of thousands, and the extra cases per user recover the
      statistical power the paper gets from sheer user count (see
      DESIGN.md).

    ``item_filter(user, item) -> bool`` restricts which test cases count —
    used by the Fig. 7(a) case study to split existing vs. new items.
    Per-user metrics (``keep_per_user``) average that user's cases.

    ``batch_score_fn(users) -> (U, num_items)`` is the batched fast path
    (:meth:`IncrementalStrategy.score_users`): one call scores every user
    with test cases, instead of one ``score_fn`` call per user.  Either
    way, all cases' ranks and metrics are computed in one fused pass
    (:func:`ranks_of_user_targets` / :func:`metrics_from_ranks`); both
    paths are bit-identical to the historical per-item evaluator
    (``tests/test_eval_batched.py``).
    """
    if targets not in ("test", "all"):
        raise ValueError(f"targets must be 'test' or 'all', got {targets!r}")
    cases = _collect_cases(span, targets, item_filter)
    per_user: Dict[int, tuple] = {}
    if not cases:
        return EvalResult(hr=0.0, ndcg=0.0, num_cases=0, per_user=per_user)
    with _prof.op("eval.score"):
        if batch_score_fn is not None:
            score_matrix = np.asarray(batch_score_fn([u for u, _ in cases]))
        else:
            score_matrix = np.stack([score_fn(user) for user, _ in cases])
    with _prof.op("eval.rank"):
        counts = [len(items) for _, items in cases]
        case_rows = np.repeat(np.arange(len(cases)), counts)
        case_items = np.concatenate(
            [np.asarray(items, dtype=np.int64) for _, items in cases])
        rank_start = time.perf_counter()
        ranks = ranks_of_user_targets(score_matrix, case_rows, case_items)
        all_hits, all_ndcgs = metrics_from_ranks(ranks, k=k)
        obs.observe("eval.rank_compute_seconds",
                    time.perf_counter() - rank_start)
    obs.counter("eval.cases", len(case_items))
    if keep_per_user:
        offset = 0
        for (user, _), m in zip(cases, counts):
            per_user[user] = (
                float(np.mean(all_hits[offset:offset + m])),
                float(np.mean(all_ndcgs[offset:offset + m])),
            )
            offset += m
    return EvalResult(
        hr=float(np.mean(all_hits)),
        ndcg=float(np.mean(all_ndcgs)),
        num_cases=int(all_hits.shape[0]),
        per_user=per_user,
    )


def average_results(results: Sequence[EvalResult]) -> EvalResult:
    """Average several spans' results, weighting spans equally (paper)."""
    usable = [r for r in results if r.num_cases > 0]
    if not usable:
        return EvalResult(hr=0.0, ndcg=0.0, num_cases=0)
    return EvalResult(
        hr=float(np.mean([r.hr for r in usable])),
        ndcg=float(np.mean([r.ndcg for r in usable])),
        num_cases=sum(r.num_cases for r in usable),
    )
