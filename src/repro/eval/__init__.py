"""Evaluation: ranking metrics, span protocol, significance tests."""

from .metrics import (
    hit_at_k,
    metrics_at_k,
    metrics_from_ranks,
    ndcg_at_k,
    rank_of_target,
    ranks_of_targets,
    ranks_of_user_targets,
)
from .evaluator import EvalResult, average_results, evaluate_span
from .significance import paired_t_test, significantly_better
from .forgetting import ForgettingReport, compare_forgetting, forgetting_analysis

__all__ = [
    "hit_at_k",
    "ndcg_at_k",
    "rank_of_target",
    "ranks_of_targets",
    "ranks_of_user_targets",
    "metrics_at_k",
    "metrics_from_ranks",
    "EvalResult",
    "evaluate_span",
    "average_results",
    "paired_t_test",
    "significantly_better",
    "ForgettingReport",
    "forgetting_analysis",
    "compare_forgetting",
]
