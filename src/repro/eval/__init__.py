"""Evaluation: ranking metrics, span protocol, significance tests."""

from .metrics import hit_at_k, metrics_at_k, ndcg_at_k, rank_of_target
from .evaluator import EvalResult, average_results, evaluate_span
from .significance import paired_t_test, significantly_better
from .forgetting import ForgettingReport, compare_forgetting, forgetting_analysis

__all__ = [
    "hit_at_k",
    "ndcg_at_k",
    "rank_of_target",
    "metrics_at_k",
    "EvalResult",
    "evaluate_span",
    "average_results",
    "paired_t_test",
    "significantly_better",
    "ForgettingReport",
    "forgetting_analysis",
    "compare_forgetting",
]
