"""Ranking metrics: hit ratio and NDCG at a cutoff (paper: top-20)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..contracts import shape_contract


@shape_contract("(N) f, (), _ -> () i")
def rank_of_target(scores: np.ndarray, target: int,
                   exclude: Optional[Sequence[int]] = None) -> int:
    """0-based rank of ``target`` under descending ``scores``.

    ``exclude`` items (e.g. the user's training history) are pushed below
    everything else.  Ties are broken pessimistically (equal-scored items
    count as ranked above the target) so metrics never benefit from
    degenerate constant scores.
    """
    target_score = scores[target]
    mask = np.ones_like(scores, dtype=bool)
    if exclude is not None:
        mask[list(exclude)] = False
    mask[target] = False
    return int(np.count_nonzero(scores[mask] >= target_score))


@shape_contract("(), () -> () f")
def hit_at_k(rank: int, k: int = 20) -> float:
    """1.0 if the 0-based ``rank`` falls inside the top-``k`` else 0.0."""
    return 1.0 if rank < k else 0.0


@shape_contract("(), () -> () f")
def ndcg_at_k(rank: int, k: int = 20) -> float:
    """NDCG@k with a single relevant item: ``1 / log2(rank + 2)`` if hit."""
    if rank >= k:
        return 0.0
    return 1.0 / np.log2(rank + 2.0)


@shape_contract("(N) f, (), _, _ -> (), ()")
def metrics_at_k(scores: np.ndarray, target: int, k: int = 20,
                 exclude: Optional[Sequence[int]] = None) -> tuple:
    """Convenience: ``(hit@k, ndcg@k)`` for one test instance."""
    rank = rank_of_target(scores, target, exclude=exclude)
    return hit_at_k(rank, k), ndcg_at_k(rank, k)


#: cap on the (targets x catalog) comparison matrix a single vectorized
#: chunk may allocate (elements); keeps peak memory bounded when ranking
#: thousands of targets against a large catalog
_RANK_CHUNK_ELEMENTS = 4_000_000


@shape_contract("(N) f, (M) i, _ -> (M) i")
def ranks_of_targets(scores: np.ndarray, targets: Sequence[int],
                     exclude: Optional[Sequence[int]] = None) -> np.ndarray:
    """Vectorized :func:`rank_of_target` for many targets of one user.

    Returns the (M,) 0-based ranks of ``targets`` under descending
    ``scores``, agreeing *exactly* with per-item :func:`rank_of_target`
    — including the pessimistic tie-breaking (equal-scored items count
    as ranked above the target) and the ``exclude`` mask semantics
    (excluded items are pushed below everything; a target that is itself
    excluded is not double-subtracted).  Property-tested against the
    scalar implementation in ``tests/test_eval_batched.py``.
    """
    scores = np.asarray(scores)
    targets = np.asarray(targets, dtype=np.int64)
    if targets.size == 0:
        return np.zeros(0, dtype=np.int64)
    ex = None
    if exclude is not None:
        ex = np.unique(np.asarray(list(exclude), dtype=np.int64))
        if ex.size == 0:
            ex = None
    n = max(1, scores.shape[0])
    step = max(1, _RANK_CHUNK_ELEMENTS // n)
    ranks = np.empty(targets.shape[0], dtype=np.int64)
    for lo in range(0, targets.shape[0], step):
        chunk = targets[lo:lo + step]
        t = scores[chunk][:, None]                     # (m, 1)
        counts = (scores[None, :] >= t).sum(axis=1)    # everything >= target
        if ex is not None:
            counts -= (scores[ex][None, :] >= t).sum(axis=1)
            counts -= (~np.isin(chunk, ex)).astype(np.int64)  # self, if counted
        else:
            counts -= 1                                # the target itself
        ranks[lo:lo + step] = counts
    return ranks


@shape_contract("(U, N) f, (M) i, (M) i -> (M) i")
def ranks_of_user_targets(score_matrix: np.ndarray, case_users: np.ndarray,
                          case_items: np.ndarray) -> np.ndarray:
    """Ranks for a flat list of (user row, target item) test cases.

    ``score_matrix`` holds one catalog-score row per user;
    ``case_users[j]`` indexes the row and ``case_items[j]`` the target
    of case ``j``.  Each case's rank is exactly
    ``rank_of_target(score_matrix[case_users[j]], case_items[j])`` (no
    exclusions) — the same ``>=`` comparisons and integer count, fused
    across *all* users' cases in one chunked pass instead of a Python
    call per user.  This is the whole-span fast path behind
    :func:`repro.eval.evaluate_span`.
    """
    case_users = np.asarray(case_users, dtype=np.int64)
    case_items = np.asarray(case_items, dtype=np.int64)
    if case_users.size == 0:
        return np.zeros(0, dtype=np.int64)
    n = max(1, score_matrix.shape[1])
    step = max(1, _RANK_CHUNK_ELEMENTS // n)
    ranks = np.empty(case_users.shape[0], dtype=np.int64)
    for lo in range(0, case_users.shape[0], step):
        users = case_users[lo:lo + step]
        rows = score_matrix[users]                     # (m, N)
        t = rows[np.arange(users.shape[0]), case_items[lo:lo + step]]
        ranks[lo:lo + step] = (rows >= t[:, None]).sum(axis=1) - 1
    return ranks


@shape_contract("(M) i, _ -> (M) f, (M) f")
def metrics_from_ranks(ranks: np.ndarray, k: int = 20) -> tuple:
    """Vectorized ``(hits, ndcgs)`` for an array of 0-based ranks.

    Elementwise identical to :func:`hit_at_k` / :func:`ndcg_at_k` — the
    same ``1 / log2(rank + 2)`` expression, so the floats are bit-equal.
    """
    ranks = np.asarray(ranks)
    hit = ranks < k
    hits = hit.astype(np.float64)
    ndcgs = np.where(hit, 1.0 / np.log2(ranks + 2.0), 0.0)
    return hits, ndcgs
