"""Ranking metrics: hit ratio and NDCG at a cutoff (paper: top-20)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..contracts import shape_contract


@shape_contract("(N) f, (), _ -> () i")
def rank_of_target(scores: np.ndarray, target: int,
                   exclude: Optional[Sequence[int]] = None) -> int:
    """0-based rank of ``target`` under descending ``scores``.

    ``exclude`` items (e.g. the user's training history) are pushed below
    everything else.  Ties are broken pessimistically (equal-scored items
    count as ranked above the target) so metrics never benefit from
    degenerate constant scores.
    """
    target_score = scores[target]
    mask = np.ones_like(scores, dtype=bool)
    if exclude is not None:
        mask[list(exclude)] = False
    mask[target] = False
    return int(np.count_nonzero(scores[mask] >= target_score))


@shape_contract("(), () -> () f")
def hit_at_k(rank: int, k: int = 20) -> float:
    """1.0 if the 0-based ``rank`` falls inside the top-``k`` else 0.0."""
    return 1.0 if rank < k else 0.0


@shape_contract("(), () -> () f")
def ndcg_at_k(rank: int, k: int = 20) -> float:
    """NDCG@k with a single relevant item: ``1 / log2(rank + 2)`` if hit."""
    if rank >= k:
        return 0.0
    return 1.0 / np.log2(rank + 2.0)


@shape_contract("(N) f, (), _, _ -> (), ()")
def metrics_at_k(scores: np.ndarray, target: int, k: int = 20,
                 exclude: Optional[Sequence[int]] = None) -> tuple:
    """Convenience: ``(hit@k, ndcg@k)`` for one test instance."""
    rank = rank_of_target(scores, target, exclude=exclude)
    return hit_at_k(rank, k), ndcg_at_k(rank, k)
