"""Paired significance testing (the paper's two-tailed pairwise t-test)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-tailed paired t-test; returns ``(t_statistic, p_value)``.

    Inputs are per-case metric values (e.g. per-user hits) from two
    methods on the same cases.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("paired test requires equal-length samples")
    if a.size < 2:
        return 0.0, 1.0
    if np.allclose(a, b):
        return 0.0, 1.0
    t_stat, p_value = stats.ttest_rel(a, b)
    return float(t_stat), float(p_value)


def significantly_better(a: Sequence[float], b: Sequence[float],
                         alpha: float = 0.05) -> bool:
    """True when mean(a) > mean(b) with p < ``alpha``."""
    t_stat, p_value = paired_t_test(a, b)
    return bool(t_stat > 0 and p_value < alpha)
