"""Span journal: the crash-recovery log of an incremental run.

A run directory holds one checkpoint per completed span
(``span-000.npz`` for pretraining, ``span-001.npz`` … for incremental
spans) plus ``journal.json``, written atomically after each span
commits.  The journal records, per span: the training time, the
checkpoint filename, the span's :class:`~repro.eval.EvalResult`
(including per-user metrics), and interest-count statistics — enough to
reconstruct the :class:`~repro.experiments.runner.RunResult` prefix of
an interrupted run without recomputing anything.

Write ordering gives crash consistency: the span's checkpoint is
committed *before* the journal entry that references it, so a journal
entry always points at a complete checkpoint.  Conversely a checkpoint
without a journal entry is simply retrained on resume.

The journal also accumulates **incidents**: structured records of
divergence rollbacks (non-finite parameters or metrics detected after a
span) so operational failures are data, not log noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..eval import EvalResult
from ..obs import trace as obs
from ..persistence import atomic_write_bytes, verify_checkpoint, CheckpointError

PathLike = Union[str, Path]

_JOURNAL_VERSION = 1
JOURNAL_NAME = "journal.json"

__all__ = ["SpanJournal", "SpanRecord", "JournalError", "JournalIOError",
           "JOURNAL_NAME"]


class JournalError(ValueError):
    """The journal is malformed or does not match the current run."""


class JournalIOError(JournalError, OSError):
    """The journal could not be *read* due to an IO failure.

    Transient (a retry may succeed), unlike plain :class:`JournalError`
    corruption — the streaming pipeline's retry-with-backoff catches
    this (it is an ``OSError``) but treats corruption as terminal.
    """


@dataclass
class SpanRecord:
    """One completed span (0 = pretraining, which has no evaluation)."""

    span: int
    train_time: float
    checkpoint: str
    hr: Optional[float] = None
    ndcg: Optional[float] = None
    num_cases: Optional[int] = None
    per_user: Dict[int, tuple] = field(default_factory=dict)
    interest_mean: Optional[float] = None
    counts: Dict[int, int] = field(default_factory=dict)
    rolled_back: bool = False
    #: wall-clock of the span's snapshot re-extraction / evaluation, so a
    #: resumed run reports honest cumulative timings (0.0 in old journals)
    extract_time: float = 0.0
    eval_time: float = 0.0

    def eval_result(self) -> EvalResult:
        return EvalResult(
            hr=float(self.hr), ndcg=float(self.ndcg),
            num_cases=int(self.num_cases),
            per_user={int(u): tuple(v) for u, v in self.per_user.items()},
        )

    def to_json(self) -> dict:
        out = {
            "span": self.span,
            "train_time": self.train_time,
            "extract_time": self.extract_time,
            "eval_time": self.eval_time,
            "checkpoint": self.checkpoint,
            "rolled_back": self.rolled_back,
        }
        if self.hr is not None:
            out["eval"] = {
                "hr": self.hr, "ndcg": self.ndcg,
                "num_cases": self.num_cases,
                "per_user": {str(u): list(v)
                             for u, v in self.per_user.items()},
            }
            out["interest_mean"] = self.interest_mean
            out["counts"] = {str(u): c for u, c in self.counts.items()}
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "SpanRecord":
        record = cls(
            span=int(payload["span"]),
            train_time=float(payload["train_time"]),
            checkpoint=str(payload["checkpoint"]),
            rolled_back=bool(payload.get("rolled_back", False)),
            extract_time=float(payload.get("extract_time", 0.0)),
            eval_time=float(payload.get("eval_time", 0.0)),
        )
        ev = payload.get("eval")
        if ev is not None:
            record.hr = float(ev["hr"])
            record.ndcg = float(ev["ndcg"])
            record.num_cases = int(ev["num_cases"])
            record.per_user = {int(u): tuple(v)
                               for u, v in ev.get("per_user", {}).items()}
            record.interest_mean = payload.get("interest_mean")
            record.counts = {int(u): int(c)
                             for u, c in payload.get("counts", {}).items()}
        return record


class SpanJournal:
    """Atomic, append-per-span journal for one run directory."""

    def __init__(self, directory: PathLike, fingerprint: str,
                 dataset: str = "", model: str = "", strategy: str = ""):
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.dataset = dataset
        self.model = model
        self.strategy = strategy
        self.spans: Dict[int, SpanRecord] = {}
        self.incidents: List[dict] = []

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self.directory / JOURNAL_NAME

    def checkpoint_path(self, span: int) -> Path:
        return self.directory / f"span-{span:03d}.npz"

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def write(self) -> None:
        payload = {
            "version": _JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "dataset": self.dataset,
            "model": self.model,
            "strategy": self.strategy,
            "spans": {str(s): r.to_json() for s, r in sorted(self.spans.items())},
            "incidents": self.incidents,
        }
        blob = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        atomic_write_bytes(blob, self.path, kind="journal")

    @classmethod
    def load(cls, directory: PathLike) -> "SpanJournal":
        path = Path(directory) / JOURNAL_NAME
        if not path.exists():
            raise JournalError(f"no journal at {path}")
        try:
            text = path.read_text()
        except OSError as err:
            raise JournalIOError(
                f"journal {path} cannot be read: {err}") from err
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as err:
            raise JournalError(f"journal {path} is corrupt: {err}") from err
        if payload.get("version") != _JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal version {payload.get('version')!r}")
        journal = cls(
            Path(directory),
            fingerprint=str(payload.get("fingerprint", "")),
            dataset=str(payload.get("dataset", "")),
            model=str(payload.get("model", "")),
            strategy=str(payload.get("strategy", "")),
        )
        for key, entry in payload.get("spans", {}).items():
            record = SpanRecord.from_json(entry)
            if record.span != int(key):
                raise JournalError(
                    f"journal span key {key} disagrees with record "
                    f"{record.span}")
            journal.spans[record.span] = record
        journal.incidents = list(payload.get("incidents", []))
        return journal

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_span(self, span: int, train_time: float,
                    result: Optional[EvalResult] = None,
                    interest_mean: Optional[float] = None,
                    counts: Optional[Dict[int, int]] = None,
                    rolled_back: bool = False,
                    extract_time: float = 0.0,
                    eval_time: float = 0.0) -> SpanRecord:
        record = SpanRecord(
            span=span, train_time=float(train_time),
            checkpoint=self.checkpoint_path(span).name,
            rolled_back=rolled_back,
            extract_time=float(extract_time),
            eval_time=float(eval_time),
        )
        if result is not None:
            record.hr = result.hr
            record.ndcg = result.ndcg
            record.num_cases = result.num_cases
            record.per_user = dict(result.per_user)
            record.interest_mean = interest_mean
            record.counts = dict(counts or {})
        self.spans[span] = record
        self.write()
        obs.counter("journal.spans_committed")
        obs.event("journal.span_committed", span_id=span,
                  rolled_back=rolled_back, checkpoint=record.checkpoint)
        return record

    def record_incident(self, span: int, kind: str, detail: object,
                        action: str) -> dict:
        incident = {"span": span, "kind": kind, "detail": detail,
                    "action": action}
        self.incidents.append(incident)
        self.write()
        obs.counter("journal.incidents")
        obs.event("journal.incident", span_id=span, incident=kind,
                  action=action)
        return incident

    # ------------------------------------------------------------------ #
    # resume support
    # ------------------------------------------------------------------ #
    def last_restorable_span(self) -> Optional[int]:
        """Highest span whose journal prefix is contiguous from 0 and
        whose checkpoint passes full verification.

        A corrupt later checkpoint falls back to the newest earlier one
        that verifies; spans past the restore point are retrained."""
        last_contiguous = -1
        while last_contiguous + 1 in self.spans:
            last_contiguous += 1
        for span in range(last_contiguous, -1, -1):
            try:
                verify_checkpoint(self.checkpoint_path(span))
            except CheckpointError:
                continue
            return span
        return None
