"""Experiment runner: pretrain → spans → evaluation (paper protocol).

After training on span ``t`` the model is evaluated on span ``t+1``'s test
items; headline numbers average spans ``1..T-1`` (the pretrained model's
own test performance is excluded), exactly as Section V-A describes.

Crash safety
------------
Passing ``checkpoint_dir=`` makes the run journaled: after every span the
strategy state is checkpointed atomically and the span's metrics are
recorded in ``journal.json``.  ``resume=True`` restarts an interrupted
run from the last good span — completed spans are skipped and their
recorded metrics reused, and because checkpoints capture every RNG
stream, the resumed run is metric-identical to an uninterrupted one.  A
divergence guard detects non-finite parameters or metrics after a span,
rolls the strategy back to the last good checkpoint, and records a
structured incident instead of poisoning later spans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Type, Union

import numpy as np

from .. import backend as _backend
from .. import faults
from ..data.schema import TemporalSplit
from ..eval import EvalResult, average_results, evaluate_span
from ..incremental import STRATEGY_REGISTRY, IncrementalStrategy, TrainConfig
from ..models import make_model
from ..obs import prof as _prof
from ..obs import trace as obs
from ..obs.log import get_logger
from ..persistence import load_checkpoint, run_fingerprint, save_checkpoint
from .journal import JournalError, SpanJournal

logger = get_logger(__name__)


@dataclass
class RunResult:
    """Everything one (dataset, model, strategy) run produces."""

    dataset: str
    model: str
    strategy: str
    #: evaluation after each trained span t = 1..T-1 (tested on span t+1)
    per_span: List[EvalResult]
    #: spans-averaged headline metrics
    avg: EvalResult
    #: seconds per training call (0 = pretraining)
    train_times: Dict[int, float]
    #: mean per-user inference seconds
    inference_time: float
    #: mean interests per user after each trained span
    interest_counts: List[float]
    #: per-user (hit, ndcg) pairs per span, for significance testing
    per_user_metrics: List[Dict[int, tuple]] = field(default_factory=list)
    #: span -> per-user interest counts right after that span was trained
    counts_by_span: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: for seed-averaged runs (run_repeated): the individual seed results
    per_seed: List["RunResult"] = field(default_factory=list)
    #: spans whose metrics were reused from a resume journal
    resumed_spans: List[int] = field(default_factory=list)
    #: divergence-rollback incidents recorded during the run
    incidents: List[dict] = field(default_factory=list)
    #: per-span evaluation wall-clock (no key 0 — pretrain isn't evaluated)
    eval_times: Dict[int, float] = field(default_factory=dict)
    #: per-span snapshot-extraction wall-clock (0 = pretraining), the
    #: phase ``train_times`` never covered — together the three dicts
    #: give honest cumulative timings, resumed spans included
    extract_times: Dict[int, float] = field(default_factory=dict)
    #: op-level profiler report (``run_strategy(..., profile=True)``)
    profile: Optional[dict] = None

    @property
    def hr(self) -> float:
        return self.avg.hr

    @property
    def ndcg(self) -> float:
        return self.avg.ndcg


def default_config(**overrides) -> TrainConfig:
    """The reproduction's default training configuration."""
    return TrainConfig(**overrides)


def make_strategy(
    strategy_name: str,
    model_name: str,
    split: TemporalSplit,
    config: TrainConfig,
    model_kwargs: Optional[dict] = None,
    strategy_kwargs: Optional[dict] = None,
) -> IncrementalStrategy:
    """Instantiate a strategy with a fresh base model."""
    model_kwargs = dict(model_kwargs or {})
    strategy_kwargs = dict(strategy_kwargs or {})
    model_kwargs.setdefault("seed", config.seed)

    def factory():
        return make_model(model_name, num_items=split.num_items, **model_kwargs)

    cls: Type[IncrementalStrategy] = STRATEGY_REGISTRY[strategy_name]
    if strategy_name == "FR":
        strategy_kwargs.setdefault("model_factory", factory)
    return cls(factory(), split, config, **strategy_kwargs)


def _prepare_journal(strategy: IncrementalStrategy, checkpoint_dir,
                     resume: bool, dataset_name: str, model_name: str):
    """(journal, restored_span) for a checkpointed run; fresh runs get a
    new journal and ``restored_span=None``."""
    directory = Path(checkpoint_dir)
    fingerprint = run_fingerprint(strategy)
    if resume and (directory / "journal.json").exists():
        journal = SpanJournal.load(directory)
        if journal.fingerprint != fingerprint:
            raise JournalError(
                f"journal at {directory} was written by a different run "
                f"(fingerprint {journal.fingerprint} != {fingerprint}); "
                f"refusing to resume")
        restored = journal.last_restorable_span()
        if restored is None:
            # nothing restorable: retrain everything, and drop the
            # aborted run's stale spans/incidents from memory *and* disk
            # so they cannot leak into the new run's journal or result
            journal.spans.clear()
            journal.incidents.clear()
            journal.write()
        return journal, restored
    journal = SpanJournal(directory, fingerprint=fingerprint,
                          dataset=dataset_name, model=model_name,
                          strategy=strategy.name)
    journal.write()
    return journal, None


def _non_finite_sites(strategy: IncrementalStrategy) -> List[str]:
    """Names of model parameters / user states holding NaN or inf."""
    sites: List[str] = []
    for name, param in strategy.model.named_parameters():
        if not faults.all_finite(param.data):
            sites.append(f"param/{name}")
    for user, state in strategy.states.items():
        if not faults.all_finite(state.interests):
            sites.append(f"user/{user}/interests")
        if not faults.all_finite(state.prev_interests):
            # feeds the retention/distillation loss of the next spans
            sites.append(f"user/{user}/prev_interests")
        if state.sa_weights is not None and not faults.all_finite(
                state.sa_weights.data):
            sites.append(f"user/{user}/sa_weights")
    return sites


def _rollback(strategy: IncrementalStrategy, journal: SpanJournal,
              span: int, kind: str, detail: object) -> None:
    """Restore the last good checkpoint and record the incident."""
    good = journal.last_restorable_span()
    if good is None:
        raise RuntimeError(
            f"divergence at span {span} with no restorable checkpoint "
            f"in {journal.directory}")
    load_checkpoint(strategy, journal.checkpoint_path(good))
    obs.counter("divergence.rollbacks")
    obs.event("divergence.rollback", span_id=span, kind=kind,
              restored_span=good)
    logger.warning("divergence at span %d (%s): rolled back to span %d",
                   span, kind, good)
    journal.record_incident(
        span=span, kind=kind, detail=detail,
        action=f"rolled-back-to-span-{good}")


def run_strategy(
    strategy: IncrementalStrategy,
    split: TemporalSplit,
    dataset_name: str = "",
    model_name: str = "",
    eval_spans: Optional[List[int]] = None,
    keep_per_user: bool = True,
    eval_targets: str = "all",
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
    profile: bool = False,
) -> RunResult:
    """Execute the full incremental protocol for a prepared strategy.

    ``eval_targets="all"`` (default) scores every next-span item as a test
    case, densifying the paper's one-item-per-user protocol to offset our
    smaller synthetic user counts; pass ``"test"`` for the strict
    protocol.

    ``checkpoint_dir`` enables journaled checkpoints (one per span plus
    ``journal.json``) and the divergence guard; ``resume=True``
    additionally restores the last good span from that directory, reusing
    the recorded metrics of already-completed spans.  ``strategy`` must
    be freshly constructed (pre-pretraining) in both cases.

    ``trace_dir`` activates :mod:`repro.obs` tracing for the run: spans,
    decision events, and metrics land in ``trace_dir/trace.jsonl`` (see
    ``docs/OBSERVABILITY.md``).  If a tracer is already active the run
    joins it instead of opening a second sink; with ``resume=True`` the
    trace file is appended to (after torn-tail recovery), so one trace
    covers the interrupted run and its resumption.

    ``profile=True`` activates the op-level profiler
    (:mod:`repro.obs.prof`) for the run: kernel/backend-op timing and
    memory accounting land in the trace (when one is active) and in
    ``RunResult.profile``.  Profiling only reads clocks — the run stays
    bit-identical to an unprofiled one.
    """
    owns_trace = trace_dir is not None and not obs.enabled()
    if owns_trace:
        run_id = "-".join(
            p for p in (dataset_name, model_name, strategy.name) if p
        ) or "run"
        obs.start_tracing(trace_dir, run_id=run_id, resume=resume)
    owns_prof = profile and not _prof.enabled()
    if owns_prof:
        _prof.start_profiling()
    try:
        obs.gauge("backend.active", 1.0,
                  backend=_backend.active_backend_name())
        with obs.span("run", dataset=dataset_name, model=model_name,
                      strategy=strategy.name,
                      backend=_backend.active_backend_name()):
            result = _run_protocol(
                strategy, split, dataset_name, model_name, eval_spans,
                keep_per_user, eval_targets, checkpoint_dir, resume)
    finally:
        profiler = _prof.stop_profiling() if owns_prof else None
        if owns_trace:
            obs.stop_tracing()
    if profiler is not None:
        result.profile = profiler.report()
    return result


def _run_protocol(
    strategy: IncrementalStrategy,
    split: TemporalSplit,
    dataset_name: str,
    model_name: str,
    eval_spans: Optional[List[int]],
    keep_per_user: bool,
    eval_targets: str,
    checkpoint_dir: Optional[Union[str, Path]],
    resume: bool,
) -> RunResult:
    journal: Optional[SpanJournal] = None
    restored_span: Optional[int] = None
    if checkpoint_dir is not None:
        journal, restored_span = _prepare_journal(
            strategy, checkpoint_dir, resume, dataset_name, model_name)

    T = split.T
    spans_to_train = eval_spans or list(range(1, T))
    per_span: List[EvalResult] = []
    per_user: List[Dict[int, tuple]] = []
    interest_counts: List[float] = []
    counts_by_span: Dict[int, Dict[int, int]] = {}
    resumed_spans: List[int] = []
    eval_times: Dict[int, float] = {}

    if restored_span is None:
        with obs.span("pretrain"), _prof.phase("pretrain"):
            strategy.pretrain()
        if journal is not None:
            save_checkpoint(strategy, journal.checkpoint_path(0), span=0)
            journal.record_span(
                0, strategy.train_times.get(0, 0.0),
                extract_time=strategy.extract_times.get(0, 0.0))
            obs.sync()
            faults.fire("span-boundary", span=0)
    else:
        logger.info("resuming from span %d in %s", restored_span,
                    journal.directory)
        load_checkpoint(strategy, journal.checkpoint_path(restored_span))
        for record in journal.spans.values():
            if record.span <= restored_span:
                strategy.train_times[record.span] = record.train_time
                strategy.extract_times[record.span] = record.extract_time
                if record.span > 0:
                    eval_times[record.span] = record.eval_time

    for t in spans_to_train:
        if restored_span is not None and t <= restored_span:
            record = journal.spans.get(t)
            if record is None or record.hr is None:
                raise JournalError(
                    f"resume requested span {t} but the journal has no "
                    f"evaluated record for it")
            result = record.eval_result()
            per_span.append(result)
            per_user.append(result.per_user)
            counts_by_span[t] = dict(record.counts)
            interest_counts.append(float(record.interest_mean))
            resumed_spans.append(t)
            obs.event("span.resumed", span_id=t)
            continue

        faults.fire("span-start", span=t)
        strategy.set_current_span(t)
        with obs.span("train_span", span_id=t), _prof.phase("train"):
            strategy.train_span(t)
        faults.fire("span-trained", span=t, strategy=strategy)

        rolled_back = False
        if journal is not None:
            bad = _non_finite_sites(strategy)
            if bad:
                _rollback(strategy, journal, t, "non-finite-state", bad[:20])
                rolled_back = True

        eval_start = time.perf_counter()
        with obs.span("evaluate", span_id=t), _prof.phase("eval"):
            result = evaluate_span(
                strategy.score_user, split.spans[t],
                keep_per_user=keep_per_user, targets=eval_targets,
                batch_score_fn=strategy.score_users,
            )
        if journal is not None and not (
                np.isfinite(result.hr) and np.isfinite(result.ndcg)):
            _rollback(strategy, journal, t, "non-finite-metrics",
                      {"hr": repr(result.hr), "ndcg": repr(result.ndcg)})
            rolled_back = True
            with obs.span("evaluate", span_id=t, after_rollback=True), \
                    _prof.phase("eval"):
                result = evaluate_span(
                    strategy.score_user, split.spans[t],
                    keep_per_user=keep_per_user, targets=eval_targets,
                    batch_score_fn=strategy.score_users,
                )
            if not (np.isfinite(result.hr) and np.isfinite(result.ndcg)):
                # the restored state scores non-finite too: nothing left
                # to roll back to — record a fatal incident rather than
                # journal the span as a restorable 'good' state
                journal.record_incident(
                    span=t, kind="non-finite-metrics",
                    detail={"hr": repr(result.hr),
                            "ndcg": repr(result.ndcg)},
                    action="fatal")
                raise RuntimeError(
                    f"span {t} metrics are non-finite even after rolling "
                    f"back to the last good checkpoint; aborting the run "
                    f"(incident recorded in {journal.path})")

        eval_times[t] = time.perf_counter() - eval_start
        per_span.append(result)
        per_user.append(result.per_user)
        counts = strategy.interest_counts()
        counts_by_span[t] = dict(counts)
        interest_counts.append(float(np.mean(list(counts.values()))))

        if journal is not None:
            save_checkpoint(strategy, journal.checkpoint_path(t), span=t)
            journal.record_span(
                t, strategy.train_times.get(t, 0.0), result,
                interest_mean=interest_counts[-1], counts=counts,
                rolled_back=rolled_back,
                extract_time=strategy.extract_times.get(t, 0.0),
                eval_time=eval_times[t],
            )
            obs.sync()
            faults.fire("span-boundary", span=t)

    # mean per-user inference time on the last evaluated span, through
    # the batched scoring path the evaluator uses
    eval_users = split.spans[spans_to_train[-1]].user_ids()[:50]
    start = time.perf_counter()
    strategy.score_users(eval_users)
    inference_time = (time.perf_counter() - start) / max(1, len(eval_users))

    return RunResult(
        dataset=dataset_name,
        model=model_name,
        strategy=strategy.name,
        per_span=per_span,
        avg=average_results(per_span),
        train_times=dict(strategy.train_times),
        inference_time=inference_time,
        interest_counts=interest_counts,
        per_user_metrics=per_user,
        counts_by_span=counts_by_span,
        resumed_spans=resumed_spans,
        incidents=list(journal.incidents) if journal is not None else [],
        eval_times=eval_times,
        extract_times=dict(strategy.extract_times),
    )


def run(
    dataset_name: str,
    model_name: str,
    strategy_name: str,
    split: TemporalSplit,
    config: Optional[TrainConfig] = None,
    model_kwargs: Optional[dict] = None,
    strategy_kwargs: Optional[dict] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
) -> RunResult:
    """One-call convenience: build the strategy and run the protocol."""
    config = config or default_config()
    strategy = make_strategy(
        strategy_name, model_name, split, config,
        model_kwargs=model_kwargs, strategy_kwargs=strategy_kwargs,
    )
    return run_strategy(
        strategy, split, dataset_name=dataset_name, model_name=model_name,
        checkpoint_dir=checkpoint_dir, resume=resume, trace_dir=trace_dir,
    )


def run_repeated(
    dataset_name: str,
    model_name: str,
    strategy_name: str,
    split: TemporalSplit,
    config: Optional[TrainConfig] = None,
    repeats: int = 3,
    model_kwargs: Optional[dict] = None,
    strategy_kwargs: Optional[dict] = None,
) -> RunResult:
    """Average a run over ``repeats`` training seeds (same data split).

    The paper averages 10 repeated experiments per cell; this helper
    implements the same protocol (varying initialization / sampling
    randomness, not the data).  The returned result carries the
    seed-averaged metrics; per-seed results are in ``.per_seed``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    base = config or default_config()
    runs: List[RunResult] = []
    for offset in range(repeats):
        cfg = TrainConfig(**{**base.__dict__, "seed": base.seed + offset})
        runs.append(run(dataset_name, model_name, strategy_name, split,
                        config=cfg, model_kwargs=model_kwargs,
                        strategy_kwargs=strategy_kwargs))

    n_spans = len(runs[0].per_span)
    per_span = [
        average_results([r.per_span[i] for r in runs]) for i in range(n_spans)
    ]
    aggregated = RunResult(
        dataset=dataset_name,
        model=model_name,
        strategy=strategy_name,
        per_span=per_span,
        avg=average_results(per_span),
        train_times={
            k: float(np.mean([r.train_times[k] for r in runs]))
            for k in runs[0].train_times
        },
        eval_times={
            k: float(np.mean([r.eval_times[k] for r in runs]))
            for k in runs[0].eval_times
        },
        extract_times={
            k: float(np.mean([r.extract_times[k] for r in runs]))
            for k in runs[0].extract_times
        },
        inference_time=float(np.mean([r.inference_time for r in runs])),
        interest_counts=[
            float(np.mean([r.interest_counts[i] for r in runs]))
            for i in range(n_spans)
        ],
        per_user_metrics=runs[0].per_user_metrics,
        counts_by_span=runs[0].counts_by_span,
    )
    aggregated.per_seed = runs
    return aggregated
