"""Terminal plotting: ASCII line charts and heatmaps for the figures.

The paper's figures are curves and heatmaps; this environment has no
display, so the benchmark harness renders them as text.  The renderers
are deliberately dependency-free and deterministic so figure output can
be diffed across runs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named series as an ASCII chart with a shared y-axis.

    Each series gets a marker character; a legend is appended.  X values
    are the series indices (the paper's time spans).
    """
    names = list(series)
    if not names:
        return "(no series)"
    lengths = {len(series[n]) for n in names}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    n_points = lengths.pop()
    if n_points == 0:
        return "(empty series)"

    values = np.array([list(series[n]) for n in names], dtype=np.float64)
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for row_idx, name in enumerate(names):
        marker = _MARKERS[row_idx % len(_MARKERS)]
        for j in range(n_points):
            x = int(round(j * (width - 1) / max(1, n_points - 1)))
            frac = (values[row_idx, j] - lo) / (hi - lo)
            y = height - 1 - int(round(frac * (height - 1)))
            grid[y][x] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3f}"
    bottom_label = f"{lo:.3f}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{' ' * pad}  {legend}" + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a matrix as a shaded ASCII heatmap (darker = larger)."""
    shades = " .:-=+*#%@"
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        return "(empty heatmap)"
    lo, hi = float(matrix.min()), float(matrix.max())
    span = hi - lo if hi > lo else 1.0

    rows, cols = matrix.shape
    row_labels = list(row_labels) if row_labels else [str(i) for i in range(rows)]
    col_labels = list(col_labels) if col_labels else [str(j) for j in range(cols)]
    label_pad = max(len(l) for l in row_labels)

    lines = []
    if title:
        lines.append(title)
    header = " " * (label_pad + 1) + " ".join(c[:2].rjust(2) for c in col_labels)
    lines.append(header)
    for i in range(rows):
        cells = []
        for j in range(cols):
            level = int((matrix[i, j] - lo) / span * (len(shades) - 1))
            cells.append(shades[level] * 2)
        lines.append(f"{row_labels[i].rjust(label_pad)} " + " ".join(cells))
    lines.append(f"scale: '{shades[0]}'={lo:.3f} .. '{shades[-1]}'={hi:.3f}")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    title: str = "",
) -> str:
    """Render a labelled horizontal bar chart (for Fig. 2-style profiles)."""
    if not values:
        return "(no bars)"
    lo = min(min(values.values()), 0.0)
    hi = max(max(values.values()), 0.0)
    span = (hi - lo) or 1.0
    label_pad = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        filled = int(round((value - lo) / span * width))
        lines.append(f"{name.rjust(label_pad)} |{'#' * filled:<{width}}| {value:.3f}")
    return "\n".join(lines)
