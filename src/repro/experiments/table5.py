"""Table V — training time per span and average inference time (Taobao).

Expected shape (the paper's, hardware-independent):

* FR's per-span training time is the largest and grows across spans
  (its data accumulates); growth is steepest on ComiRec-SA (attention is
  quadratic in sequence length).
* ADER's time grows too (its exemplar pool accumulates).
* FT / SML / IMSR are roughly flat; IMSR costs only a few percent more
  than FT; SML adds its meta-selection overhead.
* IMSR's inference is slightly slower than FT's (more interests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data import load_dataset
from ..incremental import TrainConfig
from .reporting import format_table, shape_check
from .runner import RunResult, default_config, make_strategy, run_strategy

#: Paper Table V, seconds, ComiRec-DR block (t=1..5 plus avg inference).
PAPER_TABLE5_DR: Dict[str, List[float]] = {
    "FR": [5472, 5693, 5871, 5902, 6023],
    "FT": [928, 949, 932, 941, 946],
    "SML": [1052, 1098, 1079, 1073, 1081],
    "ADER": [990, 1199, 1499, 1591, 1891],
    "IMSR": [941, 962, 954, 994, 983],
}

STRATEGIES = ("FR", "FT", "SML", "ADER", "IMSR")


@dataclass
class Table5Result:
    runs: Dict[tuple, RunResult] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for (model, strategy), run_res in sorted(self.runs.items()):
            row: Dict[str, object] = {"model": model, "strategy": strategy}
            for t in sorted(k for k in run_res.train_times if k > 0):
                row[f"t={t}"] = run_res.train_times[t]
            row["inference(ms)"] = run_res.inference_time * 1000.0
            rows.append(row)
        return rows

    def format(self) -> str:
        return format_table(self.rows(), float_fmt="{:.3f}")

    def shape_checks(self, model: str = "ComiRec-DR") -> List[Dict[str, object]]:
        checks: List[Dict[str, object]] = []

        def span_times(strategy: str) -> List[float]:
            times = self.runs[(model, strategy)].train_times
            return [times[t] for t in sorted(k for k in times if k > 0)]

        fr, ft, imsr = span_times("FR"), span_times("FT"), span_times("IMSR")
        ader = span_times("ADER") if (model, "ADER") in self.runs else None
        checks.append(shape_check(
            "FR is slower than FT in every span",
            all(a > b for a, b in zip(fr, ft))))
        checks.append(shape_check(
            "FR training time grows from first to last span",
            fr[-1] > fr[0]))
        checks.append(shape_check(
            "IMSR stays within 2x of FT per span (paper: ~3.5% overhead)",
            all(a < 2.0 * b for a, b in zip(imsr, ft))))
        checks.append(shape_check(
            "IMSR per-span time is roughly flat (max/min < 2)",
            max(imsr) / max(min(imsr), 1e-9) < 2.0))
        if ader:
            checks.append(shape_check(
                "ADER training time grows from first to last span",
                ader[-1] > ader[0]))
        return checks


def run_table5(
    models: Sequence[str] = ("MIND", "ComiRec-DR", "ComiRec-SA"),
    strategies: Sequence[str] = STRATEGIES,
    dataset: str = "taobao",
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
) -> Table5Result:
    """Regenerate Table V on the Taobao preset."""
    config = config or default_config()
    result = Table5Result()
    _, split = load_dataset(dataset, scale=scale)
    for model in models:
        for strategy_name in strategies:
            strategy = make_strategy(strategy_name, model, split, config)
            result.runs[(model, strategy_name)] = run_strategy(
                strategy, split, dataset, model)
    return result
