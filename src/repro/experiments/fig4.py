"""Figure 4 — HR trends over time spans (ComiRec-DR, all strategies).

Paper shape: FT degrades fastest over spans; SML and ADER also drop;
IMSR stays close to FR (drops only slightly faster); the degradation of
the non-IMSR incremental methods is worst on Taobao.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import load_dataset
from ..incremental import TrainConfig
from .reporting import format_table, series_to_rows, shape_check
from .runner import RunResult, default_config, run_repeated

STRATEGIES = ("FR", "FT", "SML", "ADER", "IMSR")


def _slope(values: Sequence[float]) -> float:
    """Least-squares slope of a metric across spans (degradation rate)."""
    y = np.asarray(values, dtype=np.float64)
    x = np.arange(len(y), dtype=np.float64)
    if len(y) < 2:
        return 0.0
    return float(np.polyfit(x, y, 1)[0])


@dataclass
class Fig4Result:
    #: dataset -> strategy -> HR per evaluated span
    series: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    runs: Dict[tuple, RunResult] = field(default_factory=dict)

    def rows(self, dataset: str) -> List[Dict[str, object]]:
        return series_to_rows(self.series[dataset])

    def format(self) -> str:
        blocks = []
        for dataset in sorted(self.series):
            blocks.append(f"[{dataset}]")
            blocks.append(format_table(self.rows(dataset)))
        return "\n".join(blocks)

    def shape_checks(self) -> List[Dict[str, object]]:
        checks: List[Dict[str, object]] = []
        for dataset, series in sorted(self.series.items()):
            checks.append(shape_check(
                f"[{dataset}] FT performance declines over spans",
                _slope(series["FT"]) < 0))
            late = lambda v: float(np.mean(v[-2:]))
            checks.append(shape_check(
                f"[{dataset}] IMSR beats FT on the late spans",
                late(series["IMSR"]) > late(series["FT"]) - 1e-9))
            checks.append(shape_check(
                f"[{dataset}] IMSR average is within 15% of FR",
                np.mean(series["IMSR"]) >= 0.85 * np.mean(series["FR"])))
        return checks


def run_fig4(
    datasets: Sequence[str] = ("electronics", "clothing", "books", "taobao"),
    model: str = "ComiRec-DR",
    strategies: Sequence[str] = STRATEGIES,
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    repeats: int = 1,
) -> Fig4Result:
    """Regenerate the Figure 4 per-span trend curves.

    ``repeats`` averages each curve over several training seeds (the
    paper averages 10 repetitions).
    """
    config = config or default_config()
    result = Fig4Result()
    for dataset in datasets:
        _, split = load_dataset(dataset, scale=scale)
        result.series[dataset] = {}
        for strategy_name in strategies:
            run_res = run_repeated(dataset, model, strategy_name, split,
                                   config=config, repeats=repeats)
            result.runs[(dataset, strategy_name)] = run_res
            result.series[dataset][strategy_name] = [
                r.hr for r in run_res.per_span
            ]
    return result
