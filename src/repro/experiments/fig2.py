"""Figure 2 — the "skirt vs. LEGO" puzzlement case study.

The paper's motivating observation: an item from a topic the user already
follows ("LEGO", toys) has one dominant dot-product against the existing
interests, while an item from a *newly adopted* topic ("skirt", clothing)
scores near-uniformly against all of them — it is *puzzled*.  After NID
creates new interest capsules and the span is trained, the new-topic item
snaps to one of the newly created interests while the old-topic item's
winner is unchanged.

We reproduce this with ground truth from the synthetic world: for a user
whose active-topic set grew in span ``t`` (and whom NID flagged), we track
both items' dot-product profiles before and after the span's training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data import load_dataset
from ..incremental import TrainConfig
from ..incremental.imsr import IMSR, mean_puzzlement
from .reporting import format_table, shape_check
from .runner import default_config, make_strategy


@dataclass
class Fig2Result:
    """Dot-product profiles of the case-study items."""

    user: int
    span: int
    #: profiles: (label, before, after); "before" covers existing interests
    new_topic_item: int
    old_topic_item: int
    before_new: np.ndarray
    before_old: np.ndarray
    after_new: np.ndarray
    after_old: np.ndarray
    n_existing: int
    puzzlement_new_before: float
    puzzlement_old_before: float

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for k in range(len(self.after_new)):
            rows.append({
                "interest": k,
                "kind": "existing" if k < self.n_existing else "NEW",
                "new_item_before": float(self.before_new[k]) if k < len(self.before_new) else float("nan"),
                "new_item_after": float(self.after_new[k]),
                "old_item_before": float(self.before_old[k]) if k < len(self.before_old) else float("nan"),
                "old_item_after": float(self.after_old[k]),
            })
        return rows

    def format(self) -> str:
        return format_table(self.rows())

    def shape_checks(self) -> List[Dict[str, object]]:
        checks = []
        checks.append(shape_check(
            "new-topic item is more puzzled than old-topic item before training",
            self.puzzlement_new_before > self.puzzlement_old_before))
        winner_new = int(np.argmax(self.after_new))
        checks.append(shape_check(
            "after training, the new-topic item's best interest is a new capsule",
            winner_new >= self.n_existing))
        winner_old_after = int(np.argmax(self.after_old))
        checks.append(shape_check(
            "the old-topic item still belongs to an existing interest "
            "(the paper's 'LEGO keeps unchanged')",
            winner_old_after < self.n_existing))
        return checks


def run_fig2(
    dataset: str = "taobao",
    model: str = "ComiRec-DR",
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    span: int = 1,
) -> Fig2Result:
    """Regenerate the Figure 2 case study.

    Finds a user who (a) adopted a new ground-truth topic in ``span`` and
    (b) was flagged by NID, then profiles one item of the new topic and
    one item of an old topic against the user's interests.
    """
    config = config or default_config()
    world, split = load_dataset(dataset, scale=scale)
    strategy: IMSR = make_strategy("IMSR", model, split, config)  # type: ignore[assignment]
    strategy.pretrain()

    before: Dict[int, np.ndarray] = {
        u: s.interests.copy() for u, s in strategy.states.items()
    }
    strategy.train_span(span)

    candidates = _candidate_users(world, strategy, split, span)
    if not candidates:
        raise RuntimeError(
            "no user both adopted a topic and was expanded by NID; "
            "increase scale or lower c1"
        )
    # The paper presents the most illustrative case; rank candidates by
    # (a) whether the new-topic item lands on a new capsule after training
    # and (b) how much more puzzled the new-topic item was beforehand.
    emb = strategy.model.item_emb.weight.data

    def illustrativeness(candidate) -> tuple:
        user, new_item, old_item = candidate
        state = strategy.states[user]
        lands_on_new = int(
            np.argmax(state.interests @ emb[new_item]) >= state.n_existing
        )
        gap = (
            mean_puzzlement(emb[new_item][None, :], before[user])
            - mean_puzzlement(emb[old_item][None, :], before[user])
        )
        return (lands_on_new, gap)

    user, new_item, old_item = max(candidates, key=illustrativeness)
    state = strategy.states[user]
    emb = strategy.model.item_emb.weight.data

    before_interests = before[user]
    result = Fig2Result(
        user=user,
        span=span,
        new_topic_item=new_item,
        old_topic_item=old_item,
        before_new=before_interests @ emb[new_item],
        before_old=before_interests @ emb[old_item],
        after_new=state.interests @ emb[new_item],
        after_old=state.interests @ emb[old_item],
        n_existing=state.n_existing,
        puzzlement_new_before=mean_puzzlement(
            emb[new_item][None, :], before_interests),
        puzzlement_old_before=mean_puzzlement(
            emb[old_item][None, :], before_interests),
    )
    return result


def _candidate_users(world, strategy: IMSR, split, span: int) -> List[Tuple[int, int, int]]:
    """Users with a ground-truth new topic that NID expanded, plus one
    in-span item from the new topic and one from an old topic."""
    expanded = set(strategy.expansion_log.get(span, []))
    grew = world.new_topic_users(span)
    out: List[Tuple[int, int, int]] = []
    span_data = split.spans[span - 1]
    for user in sorted(expanded & grew):
        timeline = world.user_topic_timeline[user]
        new_topics = timeline[span] - timeline[span - 1]
        old_topics = timeline[span - 1]
        if user not in span_data:
            continue
        items = span_data.users[user].all_items
        new_item = old_item = None
        for item in items:
            topic = int(world.item_topics[item])
            if topic in new_topics and new_item is None:
                new_item = item
            elif topic in old_topics and old_item is None:
                old_item = item
        if new_item is not None and old_item is not None:
            state = strategy.states[user]
            if state.num_interests > state.n_existing:
                out.append((user, new_item, old_item))
    return out
