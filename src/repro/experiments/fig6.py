"""Figure 6 — hyperparameter sensitivity (c1, c2, K, δK).

Paper shape: moderate values of c1 and c2 perform best (too large c1
blocks new-interest creation; too small c2 never trims trivial
interests); δK = 3 beats δK = 1; and pre-allocating all interests at
pretraining time (K = 19/21, δK = 0) is far worse than adaptive
expansion.

Note on scales: our puzzlement is ``exp(−KL) ∈ (0, 1]`` (see
``repro.incremental.imsr.nid``), so the c1 grid lives on that scale
rather than the paper's 0.02–0.12; c2 likewise reflects our capsule
norms.  The swept *shapes* are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data import load_dataset
from ..incremental import TrainConfig
from .reporting import format_table, shape_check
from .runner import RunResult, default_config, run_repeated

C1_GRID = (0.10, 0.20, 0.30, 0.45, 0.60, 0.80)
C2_GRID = (0.02, 0.05, 0.10, 0.20, 0.40, 0.60)
#: (K, delta_K) settings; (19, 0) and (21, 0) pre-allocate everything
K_GRID: Tuple[Tuple[int, int], ...] = ((4, 1), (4, 3), (6, 1), (6, 3), (19, 0), (21, 0))


@dataclass
class Fig6Result:
    #: ("c1"|"c2"|"K", dataset, model) -> {setting: HR}
    sweeps: Dict[tuple, Dict[object, float]] = field(default_factory=dict)
    runs: Dict[tuple, RunResult] = field(default_factory=dict)

    def rows(self, sweep: tuple) -> List[Dict[str, object]]:
        return [
            {"setting": str(setting), "HR": hr}
            for setting, hr in self.sweeps[sweep].items()
        ]

    def format(self) -> str:
        blocks = []
        for sweep in sorted(self.sweeps, key=str):
            blocks.append(f"[{' / '.join(map(str, sweep))}]")
            blocks.append(format_table(self.rows(sweep)))
        return "\n".join(blocks)

    def shape_checks(self) -> List[Dict[str, object]]:
        checks: List[Dict[str, object]] = []
        for sweep, values in sorted(self.sweeps.items(), key=lambda kv: str(kv[0])):
            kind = sweep[0]
            label = f"[{' / '.join(map(str, sweep))}]"
            if kind in ("c1", "c2"):
                ordered = [values[k] for k in sorted(values)]
                interior_best = max(ordered[1:-1]) >= max(ordered[0], ordered[-1]) - 1e-9
                checks.append(shape_check(
                    f"{label} an interior {kind} value is (near-)optimal",
                    interior_best))
            elif kind == "K":
                adaptive = [hr for (k, dk), hr in values.items() if dk > 0]
                preallocated = [hr for (k, dk), hr in values.items() if dk == 0]
                if adaptive and preallocated:
                    checks.append(shape_check(
                        f"{label} adaptive expansion beats pre-allocation",
                        max(adaptive) > max(preallocated)))
                dk3 = [hr for (k, dk), hr in values.items() if dk == 3]
                dk1 = [hr for (k, dk), hr in values.items() if dk == 1]
                if dk3 and dk1:
                    checks.append(shape_check(
                        f"{label} best deltaK=3 >= best deltaK=1",
                        max(dk3) >= max(dk1) - 1e-9))
        return checks


def run_fig6(
    datasets: Sequence[str] = ("books", "taobao"),
    models: Sequence[str] = ("ComiRec-DR",),
    c1_grid: Sequence[float] = C1_GRID,
    c2_grid: Sequence[float] = C2_GRID,
    k_grid: Sequence[Tuple[int, int]] = K_GRID,
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    sweeps: Sequence[str] = ("c1", "c2", "K"),
    repeats: int = 1,
) -> Fig6Result:
    """Regenerate the Figure 6 sensitivity sweeps."""
    config = config or default_config()
    result = Fig6Result()
    for dataset in datasets:
        _, split = load_dataset(dataset, scale=scale)
        for model in models:
            if "c1" in sweeps:
                key = ("c1", dataset, model)
                result.sweeps[key] = {}
                for c1 in c1_grid:
                    run_res = _run_imsr(model, split, config, dataset,
                                        {"c1": c1}, repeats=repeats)
                    result.runs[key + (c1,)] = run_res
                    result.sweeps[key][c1] = run_res.avg.hr
            if "c2" in sweeps:
                key = ("c2", dataset, model)
                result.sweeps[key] = {}
                for c2 in c2_grid:
                    run_res = _run_imsr(model, split, config, dataset,
                                        {"c2": c2}, repeats=repeats)
                    result.runs[key + (c2,)] = run_res
                    result.sweeps[key][c2] = run_res.avg.hr
            if "K" in sweeps:
                key = ("K", dataset, model)
                result.sweeps[key] = {}
                for k, delta_k in k_grid:
                    run_res = _run_imsr(
                        model, split, config, dataset,
                        {"delta_k": delta_k, "use_nid": delta_k > 0,
                         "use_pit": delta_k > 0},
                        model_kwargs={"num_interests": k},
                        repeats=repeats,
                    )
                    result.runs[key + ((k, delta_k),)] = run_res
                    result.sweeps[key][(k, delta_k)] = run_res.avg.hr
    return result


def _run_imsr(model: str, split, config: TrainConfig, dataset: str,
              strategy_kwargs: dict,
              model_kwargs: Optional[dict] = None,
              repeats: int = 1) -> RunResult:
    return run_repeated(dataset, model, "IMSR", split, config=config,
                        repeats=repeats, model_kwargs=model_kwargs,
                        strategy_kwargs=strategy_kwargs)
