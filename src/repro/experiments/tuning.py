"""Hyperparameter grid search over strategy / training knobs.

The paper tunes the distillation coefficient in {1e-2..1e-6, 0}, the
learning rate in {0.1, 0.01, 0.005, 0.001} and the incremental epoch
count in {5..50} — this module provides that machinery: a cartesian grid
over (TrainConfig fields, strategy kwargs), scored by validation-span HR
so the test items never influence tuning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.schema import TemporalSplit
from ..eval.metrics import metrics_at_k
from ..incremental import TrainConfig
from .runner import make_strategy

#: TrainConfig field names accepted in a grid
_CONFIG_FIELDS = frozenset(TrainConfig.__dataclass_fields__)


@dataclass
class TrialResult:
    """One grid point's settings and validation score."""

    settings: Dict[str, object]
    val_hr: float


@dataclass
class GridSearchResult:
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("grid search produced no trials")
        return max(self.trials, key=lambda t: t.val_hr)

    def rows(self) -> List[Dict[str, object]]:
        return [
            {**trial.settings, "val_HR": trial.val_hr}
            for trial in sorted(self.trials, key=lambda t: -t.val_hr)
        ]


def validation_score(strategy, split: TemporalSplit,
                     spans: Sequence[int]) -> float:
    """Mean HR@20 on the given spans' *validation* items."""
    hits: List[float] = []
    for t in spans:
        span = split.spans[t - 1]
        for user in span.user_ids():
            data = span.users[user]
            if data.val_item is None:
                continue
            scores = strategy.score_user(user)
            hit, _ = metrics_at_k(scores, data.val_item, k=20)
            hits.append(hit)
    return float(np.mean(hits)) if hits else 0.0


def grid_search(
    grid: Mapping[str, Sequence[object]],
    split: TemporalSplit,
    base_config: Optional[TrainConfig] = None,
    strategy_name: str = "IMSR",
    model_name: str = "ComiRec-DR",
    model_kwargs: Optional[dict] = None,
    train_spans: Optional[Sequence[int]] = None,
) -> GridSearchResult:
    """Exhaustive grid search scored on validation items.

    ``grid`` maps names to candidate values; names that are TrainConfig
    fields (e.g. ``lr``, ``epochs_incremental``) configure training,
    anything else is passed as a strategy kwarg (e.g. ``kd_weight``,
    ``c1``).  For each grid point the strategy is pretrained, run through
    ``train_spans`` (default: the first two incremental spans), and
    scored on those spans' validation items.
    """
    if not grid:
        raise ValueError("empty grid")
    base_config = base_config or TrainConfig()
    train_spans = list(train_spans or range(1, min(3, split.T + 1)))
    names = list(grid)
    result = GridSearchResult()
    for combo in itertools.product(*(grid[name] for name in names)):
        settings = dict(zip(names, combo))
        config_overrides = {
            k: v for k, v in settings.items() if k in _CONFIG_FIELDS
        }
        strategy_kwargs = {
            k: v for k, v in settings.items() if k not in _CONFIG_FIELDS
        }
        config = replace(base_config, **config_overrides)
        strategy = make_strategy(
            strategy_name, model_name, split, config,
            model_kwargs=model_kwargs, strategy_kwargs=strategy_kwargs,
        )
        strategy.pretrain()
        for t in train_spans:
            strategy.train_span(t)
        result.trials.append(TrialResult(
            settings=settings,
            val_hr=validation_score(strategy, split, train_spans),
        ))
    return result
