"""Experiment harness: drivers for every table and figure in the paper."""

from .runner import RunResult, default_config, make_strategy, run, run_repeated, run_strategy
from .journal import (
    JOURNAL_NAME,
    JournalError,
    JournalIOError,
    SpanJournal,
    SpanRecord,
)
from .reporting import (
    format_table,
    relative_improvement,
    render_shape_checks,
    series_to_rows,
    shape_check,
)
from .registry import EXPERIMENTS, Experiment, get_experiment
from .plotting import ascii_bars, ascii_heatmap, ascii_line_chart
from .tuning import GridSearchResult, TrialResult, grid_search, validation_score
from .artifacts import export_result, load_artifact
from .table3 import PAPER_TABLE3, Table3Result, run_table3
from .table4 import PAPER_TABLE4, Table4Result, run_table4
from .table5 import PAPER_TABLE5_DR, Table5Result, run_table5
from .fig2 import Fig2Result, run_fig2
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4
from .fig5 import VARIANTS, Fig5Result, run_fig5
from .fig6 import C1_GRID, C2_GRID, K_GRID, Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7

__all__ = [
    "RunResult",
    "default_config",
    "make_strategy",
    "run",
    "run_repeated",
    "run_strategy",
    "JOURNAL_NAME",
    "JournalError",
    "JournalIOError",
    "SpanJournal",
    "SpanRecord",
    "format_table",
    "relative_improvement",
    "render_shape_checks",
    "series_to_rows",
    "shape_check",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "ascii_bars",
    "ascii_heatmap",
    "ascii_line_chart",
    "GridSearchResult",
    "TrialResult",
    "grid_search",
    "validation_score",
    "export_result",
    "load_artifact",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "PAPER_TABLE4",
    "Table4Result",
    "run_table4",
    "PAPER_TABLE5_DR",
    "Table5Result",
    "run_table5",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "VARIANTS",
    "Fig5Result",
    "run_fig5",
    "C1_GRID",
    "C2_GRID",
    "K_GRID",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
]
