"""Figure 3 — redundancy of new interests learned *without* trimming.

The paper motivates PIT with two pathologies of fixed-number expansion:
(1) some new interests are near-duplicates of existing ones (high Pearson
correlation between their item-affinity profiles) and (2) some learn
nothing (near-zero L2 norm).  We reproduce the diagnostic by running IMSR
with PIT disabled and reporting, for every user NID expanded, the max
correlation of each new interest against the existing ones and its norm —
then contrast with a PIT-enabled run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data import load_dataset
from ..incremental import TrainConfig
from ..incremental.imsr import IMSR, redundancy_report
from .reporting import format_table, shape_check
from .runner import default_config, make_strategy


@dataclass
class Fig3Result:
    #: per expanded user: max |Pearson| of each new interest vs existing
    correlations_untrimmed: List[float] = field(default_factory=list)
    norms_untrimmed: List[float] = field(default_factory=list)
    correlations_trimmed: List[float] = field(default_factory=list)
    norms_trimmed: List[float] = field(default_factory=list)
    #: how many new interests PIT actually removed
    trimmed_away: int = 0
    examples: List[Dict[str, object]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return self.examples

    def format(self) -> str:
        summary = [
            {"setting": "w/o PIT", "mean_max_corr": float(np.mean(self.correlations_untrimmed or [0])),
             "min_norm": float(np.min(self.norms_untrimmed or [0])),
             "n_new_interests": len(self.norms_untrimmed)},
            {"setting": "with PIT", "mean_max_corr": float(np.mean(self.correlations_trimmed or [0])),
             "min_norm": float(np.min(self.norms_trimmed or [0])),
             "n_new_interests": len(self.norms_trimmed)},
        ]
        return format_table(summary)

    def shape_checks(self) -> List[Dict[str, object]]:
        checks = []
        if self.correlations_untrimmed:
            checks.append(shape_check(
                "without PIT, some new interest strongly correlates with an "
                "existing one (max |r| > 0.6)",
                max(self.correlations_untrimmed) > 0.6))
        if self.correlations_untrimmed and self.correlations_trimmed:
            checks.append(shape_check(
                "PIT lowers the mean max-correlation of surviving new interests",
                np.mean(self.correlations_trimmed)
                < np.mean(self.correlations_untrimmed) + 1e-9))
        checks.append(shape_check(
            "PIT trims at least one trivial interest", self.trimmed_away > 0))
        return checks


def run_fig3(
    dataset: str = "taobao",
    model: str = "ComiRec-DR",
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    spans: int = 2,
) -> Fig3Result:
    """Regenerate the Figure 3 redundancy diagnostics."""
    config = config or default_config()
    result = Fig3Result()

    for use_pit in (False, True):
        world, split = load_dataset(dataset, scale=scale)
        strategy: IMSR = make_strategy(  # type: ignore[assignment]
            "IMSR", model, split, config,
            strategy_kwargs={"use_pit": use_pit},
        )
        strategy.pretrain()
        for t in range(1, spans + 1):
            strategy.train_span(t)
        if use_pit:
            result.trimmed_away = sum(
                sum(per_user.values()) for per_user in strategy.trim_log.values()
            )
        emb = strategy.model.item_emb.weight.data
        for t, users in sorted(strategy.expansion_log.items()):
            span_data = split.spans[t - 1]
            for user in users:
                state = strategy.states[user]
                if state.num_interests <= state.n_existing or user not in span_data:
                    continue
                items = span_data.users[user].all_items
                corr, norms = redundancy_report(
                    state.interests, state.n_existing, emb[items])
                max_corr = np.abs(corr).max(axis=1) if corr.size else np.array([])
                if use_pit:
                    result.correlations_trimmed.extend(max_corr.tolist())
                    result.norms_trimmed.extend(norms.tolist())
                else:
                    result.correlations_untrimmed.extend(max_corr.tolist())
                    result.norms_untrimmed.extend(norms.tolist())
                    if len(result.examples) < 8:
                        for j in range(len(norms)):
                            result.examples.append({
                                "user": user, "new_interest": j,
                                "max_corr_vs_existing": float(max_corr[j]),
                                "l2_norm": float(norms[j]),
                            })
    return result
