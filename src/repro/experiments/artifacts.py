"""JSON artifact export for experiment results.

Every driver result exposes ``rows()``/``format()``/``shape_checks()``;
this module serializes them to a JSON file so a benchmark run leaves a
machine-readable record next to the printed tables (EXPERIMENTS.md is
derived from these).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

PathLike = Union[str, Path]


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        v = float(value)
        return None if np.isnan(v) else v
    if isinstance(value, float) and np.isnan(value):
        return None
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def export_result(result, path: PathLike, experiment_id: str = "",
                  extra: Optional[dict] = None) -> dict:
    """Serialize a driver result's rows + shape checks to JSON.

    Works with any object exposing ``rows()`` and (optionally)
    ``shape_checks()``; returns the payload that was written.
    """
    payload = {"experiment": experiment_id}
    rows = getattr(result, "rows", None)
    if callable(rows):
        try:
            payload["rows"] = _jsonable(rows())
        except TypeError:
            pass  # some results' rows() require arguments; skip
    checks = getattr(result, "shape_checks", None)
    if callable(checks):
        check_rows = checks()
        payload["shape_checks"] = _jsonable(check_rows)
        payload["checks_passed"] = sum(
            1 for c in check_rows if c.get("holds") == "yes"
        )
        payload["checks_total"] = len(check_rows)
    if extra:
        payload.update(_jsonable(extra))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return payload


def load_artifact(path: PathLike) -> dict:
    """Read back an exported artifact."""
    return json.loads(Path(path).read_text())
