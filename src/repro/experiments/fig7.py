"""Figure 7 — three case studies (paper Section V-E).

(a) **Existing vs. new items**: split the last span's test cases by
    whether the user interacted with the test item in earlier spans.
    FR wins on existing items, FT wins on new items, IMSR balances both.
(b) **Interest-evolution trajectory**: per-span snapshots of one user's
    interest vectors, reduced to 2-D by PCA (standing in for t-SNE):
    retained interests stay near their previous positions (EIR), new
    interests appear in new places (NID + PIT).
(c) **Early interests still matter**: the heatmap of attention scores
    between interests (grouped by creation span) and the last span's
    target items; the paper finds >50% of users' best-attention interest
    was created in the first two spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data import load_dataset
from ..eval.evaluator import evaluate_span
from ..incremental import TrainConfig
from ..incremental.imsr import IMSR
from ..models.aggregator import attention_scores
from .reporting import format_table, shape_check
from .runner import default_config, make_strategy


@dataclass
class Fig7Result:
    #: (a) strategy -> {"existing": HR, "new": HR, "all": HR}
    item_type_hr: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: (b) user id and span -> (K_t, 2) PCA coordinates of interests
    trajectory_user: int = -1
    trajectory: Dict[int, np.ndarray] = field(default_factory=dict)
    #: per-span creation tags aligned with the trajectory rows
    trajectory_created: Dict[int, np.ndarray] = field(default_factory=dict)
    #: (c) fraction of users whose top-attention interest was created in
    #: spans <= 1 and <= 2, plus one user's heatmap
    early_interest_share: Dict[int, float] = field(default_factory=dict)
    heatmap: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    heatmap_created: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for strategy, groups in sorted(self.item_type_hr.items()):
            row: Dict[str, object] = {"strategy": strategy}
            row.update({k: float(v) for k, v in groups.items()})
            rows.append(row)
        return rows

    def format(self) -> str:
        parts = ["(a) HR by test-item type:", format_table(self.rows())]
        parts.append("(c) share of users whose best-attention interest was "
                     f"created by span 1 / 2: "
                     f"{self.early_interest_share.get(1, 0.0):.2f} / "
                     f"{self.early_interest_share.get(2, 0.0):.2f}")
        return "\n".join(parts)

    def shape_checks(self) -> List[Dict[str, object]]:
        checks = []
        a = self.item_type_hr
        if {"FR", "FT", "IMSR"} <= set(a):
            checks.append(shape_check(
                "FR beats FT on existing items",
                a["FR"]["existing"] > a["FT"]["existing"]))
            checks.append(shape_check(
                "FT is at least competitive with FR on new items",
                a["FT"]["new"] >= a["FR"]["new"] - 1e-9))
            checks.append(shape_check(
                "IMSR is within the FR-FT envelope or better on both item types",
                a["IMSR"]["existing"] >= min(a["FT"]["existing"], a["FR"]["existing"])
                and a["IMSR"]["new"] >= min(a["FT"]["new"], a["FR"]["new"])))
        if self.trajectory:
            checks.append(shape_check(
                "retained interests move less between spans than distinct "
                "interests sit apart (EIR visual)",
                _retention_drift_ratio(self) < 1.0))
        if self.early_interest_share:
            checks.append(shape_check(
                "early interests (span <= 2) win attention for a sizable "
                "share of users (> 30%)",
                self.early_interest_share.get(2, 0.0) > 0.30))
        return checks


def _retention_drift_ratio(result: Fig7Result) -> float:
    """Mean per-span movement of a retained interest, relative to the mean
    distance between *distinct* interests within a span.

    The paper's visual claim is that an interest's positions across spans
    cluster together while different interests sit apart; a ratio below 1
    means an interest stays closer to its former self than to its
    neighbours (lower = stickier = EIR works)."""
    moves: List[float] = []
    separations: List[float] = []
    spans = sorted(result.trajectory)
    for prev, cur in zip(spans, spans[1:]):
        a, b = result.trajectory[prev], result.trajectory[cur]
        shared = min(len(a), len(b))
        if shared == 0:
            continue
        moves.extend(np.linalg.norm(b[:shared] - a[:shared], axis=1).tolist())
        for i in range(len(b)):
            for j in range(i + 1, len(b)):
                separations.append(float(np.linalg.norm(b[i] - b[j])))
    if not moves or not separations or np.mean(separations) == 0:
        return 1.0
    return float(np.mean(moves) / np.mean(separations))  # repro: noqa[RA303] zero denominator handled by the early return above


def _pca_2d(points: np.ndarray, basis: Optional[np.ndarray] = None) -> np.ndarray:
    """Project (n, d) points to 2-D with PCA (a deterministic stand-in
    for the paper's t-SNE)."""
    if basis is None:
        centered = points - points.mean(axis=0, keepdims=True)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        basis = vt[:2].T
    return points @ basis


def run_fig7(
    dataset: str = "taobao",
    model: str = "ComiRec-DR",
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
) -> Fig7Result:
    """Regenerate the three Figure 7 case studies in one pass."""
    config = config or default_config()
    world, split = load_dataset(dataset, scale=scale)
    result = Fig7Result()
    T = split.T
    last_trained = T - 1  # we evaluate that training on span T

    # --- (a): run FR / FT / IMSR and split last-span eval by item type ---
    seen_items: Dict[int, set] = {u: set() for u in range(world.num_users)}
    for span in [split.pretrain] + split.spans[: last_trained]:
        for user in span.user_ids():
            seen_items.setdefault(user, set()).update(span.users[user].all_items)

    def existing_filter(user: int, item: int) -> bool:
        return item in seen_items.get(user, set())

    def new_filter(user: int, item: int) -> bool:
        return item not in seen_items.get(user, set())

    imsr_strategy: Optional[IMSR] = None
    imsr_snapshots: Dict[int, Dict[int, np.ndarray]] = {}
    for strategy_name in ("FR", "FT", "IMSR"):
        strategy = make_strategy(strategy_name, model, split, config)
        strategy.pretrain()
        for t in range(1, T):
            strategy.train_span(t)
            if strategy_name == "IMSR":
                imsr_snapshots[t] = {
                    u: s.interests.copy() for u, s in strategy.states.items()
                }
        eval_span = split.spans[last_trained]
        result.item_type_hr[strategy_name] = {
            "existing": evaluate_span(strategy.score_user, eval_span,
                                      item_filter=existing_filter,
                                      targets="all",
                                      batch_score_fn=strategy.score_users).hr,
            "new": evaluate_span(strategy.score_user, eval_span,
                                 item_filter=new_filter, targets="all",
                                 batch_score_fn=strategy.score_users).hr,
            "all": evaluate_span(strategy.score_user, eval_span,
                                 targets="all",
                                 batch_score_fn=strategy.score_users).hr,
        }
        if strategy_name == "IMSR":
            imsr_strategy = strategy  # type: ignore[assignment]

    # --- (b): interest trajectory of one expanded user -------------------
    assert imsr_strategy is not None
    expanded_users = sorted(
        {u for users in imsr_strategy.expansion_log.values() for u in users}
    )
    if expanded_users and imsr_snapshots:
        user = max(
            expanded_users,
            key=lambda u: imsr_strategy.states[u].num_interests,
        )
        result.trajectory_user = user
        all_points = np.concatenate(
            [snap[user] for snap in imsr_snapshots.values() if user in snap],
            axis=0,
        )
        centered = all_points - all_points.mean(axis=0, keepdims=True)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        basis = vt[:2].T
        for t, snap in imsr_snapshots.items():
            if user in snap:
                result.trajectory[t] = _pca_2d(snap[user], basis=basis)
                result.trajectory_created[t] = (
                    imsr_strategy.states[user].created_span[: len(snap[user])]
                )

    # --- (c): which creation span wins the attention for last targets ----
    emb = imsr_strategy.model.item_emb.weight.data
    eval_span = split.spans[last_trained]
    winners_by_span: Dict[int, int] = {}
    total = 0
    first_user_heatmap: Optional[np.ndarray] = None
    for user in eval_span.user_ids():
        data = eval_span.users[user]
        if data.test_item is None:
            continue
        state = imsr_strategy.states[user]
        att = attention_scores(state.interests, emb[data.test_item])
        winner_span = int(state.created_span[int(np.argmax(att))])
        winners_by_span[winner_span] = winners_by_span.get(winner_span, 0) + 1
        total += 1
        if first_user_heatmap is None and state.num_interests > state.n_existing:
            targets = [i for i in data.all_items][:8]
            first_user_heatmap = np.stack(
                [attention_scores(state.interests, emb[i]) for i in targets]
            )
            result.heatmap = first_user_heatmap
            result.heatmap_created = state.created_span.copy()
    if total:
        cumulative = 0
        for span_cutoff in (1, 2):
            cumulative = sum(
                count for created, count in winners_by_span.items()
                if created <= span_cutoff
            )
            result.early_interest_share[span_cutoff] = cumulative / total
    return result
