"""Plain-text table rendering and paper-vs-measured comparison helpers.

Every experiment driver returns structured results; these helpers render
them the way the paper's tables read, and annotate each row with the
paper's reported value so EXPERIMENTS.md can record shape agreement.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_fmt: str = "{:.4f}") -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, sep] + body)


def relative_improvement(value: float, baseline: float) -> float:
    """Percent relative improvement over a baseline (paper's RI column)."""
    if baseline == 0:
        return 0.0
    return 100.0 * (value - baseline) / baseline


def shape_check(description: str, holds: bool) -> Dict[str, object]:
    """A single row of the shape-agreement report."""
    return {"check": description, "holds": "yes" if holds else "NO"}


def render_shape_checks(checks: Sequence[Mapping[str, object]]) -> str:
    passed = sum(1 for c in checks if c["holds"] == "yes")
    table = format_table(checks, columns=["check", "holds"])
    return f"{table}\n{passed}/{len(checks)} shape checks hold"


def series_to_rows(series: Mapping[str, Sequence[float]],
                   x_label: str = "span",
                   x_values: Optional[Sequence[object]] = None) -> List[Dict[str, object]]:
    """Turn {name: [values per x]} into rows for :func:`format_table`."""
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    n = lengths.pop()
    xs = list(x_values) if x_values is not None else list(range(1, n + 1))
    rows = []
    for i in range(n):
        row: Dict[str, object] = {x_label: xs[i]}
        for name, values in series.items():
            row[name] = float(values[i])
        rows.append(row)
    return rows
