"""Experiment registry: every table and figure, with its driver.

This is the per-experiment index DESIGN.md references; benchmarks call
through here so the mapping table/figure → code lives in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .fig2 import run_fig2
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5


@dataclass(frozen=True)
class Experiment:
    """One table or figure from the paper's evaluation."""

    experiment_id: str
    description: str
    driver: Callable
    bench_module: str


EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in [
        Experiment(
            "table2", "dataset statistics (via repro.data.stats)",
            lambda **kw: None, "benchmarks/test_table2_dataset_stats.py"),
        Experiment(
            "table3", "HR/NDCG of FR/FT/SML/ADER/IMSR x 3 models x 4 datasets",
            run_table3, "benchmarks/test_table3_performance.py"),
        Experiment(
            "table4", "IMSR vs lifelong MSR (MIMN, LimaRec)",
            run_table4, "benchmarks/test_table4_lifelong.py"),
        Experiment(
            "table5", "training time per span + inference time (Taobao)",
            run_table5, "benchmarks/test_table5_speed.py"),
        Experiment(
            "fig2", "puzzlement case study (skirt vs LEGO analog)",
            run_fig2, "benchmarks/test_fig2_puzzlement_case.py"),
        Experiment(
            "fig3", "redundancy of untrimmed new interests",
            run_fig3, "benchmarks/test_fig3_redundancy.py"),
        Experiment(
            "fig4", "HR trends over spans, all strategies (ComiRec-DR)",
            run_fig4, "benchmarks/test_fig4_trends.py"),
        Experiment(
            "fig5", "ablation: EIR / NID&PIT / DIR / KD1-3",
            run_fig5, "benchmarks/test_fig5_ablation.py"),
        Experiment(
            "fig6", "sensitivity: c1, c2, (K, deltaK)",
            run_fig6, "benchmarks/test_fig6_sensitivity.py"),
        Experiment(
            "fig7", "case studies: item types, trajectories, early interests",
            run_fig7, "benchmarks/test_fig7_case_studies.py"),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]
