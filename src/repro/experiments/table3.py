"""Table III — main performance comparison.

HR@20 / NDCG@20 of five learning strategies (FR, FT, SML, ADER, IMSR) on
three base models (MIND, ComiRec-DR, ComiRec-SA) across the four dataset
presets, averaged over evaluation spans, plus the paper's RI column
(relative improvement of mean(HR, NDCG) over FT) and the IMSR-vs-best-
incremental significance test.

Paper shape to reproduce (not absolute numbers):
FT < SML/ADER < IMSR ≲ FR, with IMSR significantly better than the
second-best incremental method and the margin largest on Taobao.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data import load_dataset
from ..eval.significance import paired_t_test
from ..incremental import TrainConfig
from .reporting import format_table, relative_improvement, shape_check
from .runner import RunResult, default_config, run_repeated

#: Paper Table III (HR, NDCG), in percent.
PAPER_TABLE3: Dict[str, Dict[str, Dict[str, Tuple[float, float]]]] = {
    "electronics": {
        "MIND": {"FR": (16.03, 16.43), "FT": (14.75, 14.46), "SML": (15.41, 15.17),
                 "ADER": (15.64, 14.98), "IMSR": (15.81, 15.71)},
        "ComiRec-DR": {"FR": (17.00, 16.79), "FT": (15.41, 15.35), "SML": (16.16, 15.85),
                       "ADER": (16.12, 15.90), "IMSR": (16.80, 16.48)},
        "ComiRec-SA": {"FR": (17.15, 16.95), "FT": (15.31, 15.46), "SML": (15.96, 15.99),
                       "ADER": (16.32, 15.88), "IMSR": (16.97, 16.32)},
    },
    "clothing": {
        "MIND": {"FR": (16.23, 15.98), "FT": (14.45, 14.68), "SML": (15.27, 14.81),
                 "ADER": (15.62, 15.20), "IMSR": (15.81, 15.71)},
        "ComiRec-DR": {"FR": (16.91, 16.75), "FT": (15.36, 15.28), "SML": (16.08, 15.77),
                       "ADER": (16.02, 15.84), "IMSR": (16.74, 16.47)},
        "ComiRec-SA": {"FR": (16.74, 16.87), "FT": (15.49, 15.39), "SML": (15.90, 15.88),
                       "ADER": (16.14, 15.88), "IMSR": (16.94, 16.56)},
    },
    "books": {
        "MIND": {"FR": (13.82, 11.95), "FT": (12.34, 10.98), "SML": (13.12, 11.12),
                 "ADER": (12.92, 11.48), "IMSR": (13.99, 11.94)},
        "ComiRec-DR": {"FR": (14.79, 12.79), "FT": (13.30, 11.30), "SML": (13.92, 11.85),
                       "ADER": (13.73, 11.96), "IMSR": (14.46, 12.48)},
        "ComiRec-SA": {"FR": (14.86, 12.85), "FT": (13.46, 11.35), "SML": (13.78, 11.71),
                       "ADER": (13.55, 11.98), "IMSR": (14.38, 12.49)},
    },
    "taobao": {
        "MIND": {"FR": (43.29, 24.90), "FT": (42.09, 24.35), "SML": (42.88, 24.58),
                 "ADER": (42.90, 24.24), "IMSR": (43.94, 25.66)},
        "ComiRec-DR": {"FR": (44.29, 25.87), "FT": (42.62, 24.68), "SML": (43.28, 24.89),
                       "ADER": (43.44, 25.00), "IMSR": (44.48, 26.00)},
        "ComiRec-SA": {"FR": (44.31, 25.75), "FT": (42.44, 24.58), "SML": (43.17, 24.83),
                       "ADER": (43.43, 25.00), "IMSR": (44.58, 26.11)},
    },
}

STRATEGIES = ("FR", "FT", "SML", "ADER", "IMSR")
MODELS = ("MIND", "ComiRec-DR", "ComiRec-SA")
INCREMENTAL = ("FT", "SML", "ADER", "IMSR")


@dataclass
class Table3Cell:
    hr: float
    ndcg: float
    ri: float
    significant: Optional[bool] = None  # IMSR only: p<0.05 vs 2nd-best

    @property
    def mean(self) -> float:
        return 0.5 * (self.hr + self.ndcg)


@dataclass
class Table3Result:
    """All cells plus the runs behind them."""

    cells: Dict[Tuple[str, str, str], Table3Cell] = field(default_factory=dict)
    runs: Dict[Tuple[str, str, str], RunResult] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for (dataset, model, strategy), cell in sorted(self.cells.items()):
            paper_hr, paper_ndcg = PAPER_TABLE3[dataset][model][strategy]
            rows.append({
                "dataset": dataset, "model": model, "strategy": strategy,
                "HR": cell.hr, "NDCG": cell.ndcg, "RI%": cell.ri,
                "sig": "" if cell.significant is None else ("*" if cell.significant else "-"),
                "paper_HR": paper_hr / 100.0, "paper_NDCG": paper_ndcg / 100.0,
            })
        return rows

    def format(self) -> str:
        return format_table(self.rows())

    def shape_checks(self) -> List[Dict[str, object]]:
        """The paper's qualitative claims, evaluated on our numbers.

        Single/dual-seed runs carry noise the paper's 10-run averages do
        not, so per-combo claims are checked in aggregate: strict
        majorities per combo plus the pooled all-combo averages.
        """
        checks: List[Dict[str, object]] = []
        combos = sorted({(d, m) for (d, m, _) in self.cells})
        imsr_beats_ft = imsr_best_incr = ft_is_worst = 0
        pooled: Dict[str, List[float]] = {}
        for dataset, model in combos:
            get = lambda s: self.cells[(dataset, model, s)]
            for s in STRATEGIES:
                if (dataset, model, s) in self.cells:
                    pooled.setdefault(s, []).append(get(s).mean)
            if get("IMSR").mean > get("FT").mean:
                imsr_beats_ft += 1
            others = [get(s).mean for s in ("SML", "ADER") if (dataset, model, s) in self.cells]
            if others and get("IMSR").mean > max(others):
                imsr_best_incr += 1
            incr = [get(s).mean for s in INCREMENTAL if (dataset, model, s) in self.cells]
            if incr and min(incr) == get("FT").mean:
                ft_is_worst += 1
        n = len(combos)
        avg = {s: float(np.mean(v)) for s, v in pooled.items()}
        incr_avg = {s: avg[s] for s in INCREMENTAL if s in avg}
        checks.append(shape_check(
            f"IMSR beats FT in >= 75% of the {n} (dataset, model) combos",
            imsr_beats_ft >= 0.75 * n))
        checks.append(shape_check(
            "IMSR beats FT on the pooled all-combo average",
            avg.get("IMSR", 0.0) > avg.get("FT", 1.0)))
        checks.append(shape_check(
            "IMSR is the best incremental method on the pooled average",
            incr_avg and max(incr_avg, key=incr_avg.get) == "IMSR"))
        checks.append(shape_check(
            f"IMSR is the best incremental method in >= 50% of combos",
            imsr_best_incr >= 0.5 * n))
        checks.append(shape_check(
            "FT is the weakest incremental method on the pooled average",
            incr_avg and min(incr_avg, key=incr_avg.get) == "FT"))
        if "FR" in avg:
            checks.append(shape_check(
                "FR is the strongest strategy on the pooled average",
                max(avg, key=avg.get) == "FR" or avg["IMSR"] >= avg["FR"]))
        return checks


def imsr_significance(result: Table3Result, dataset: str, model: str) -> Optional[bool]:
    """Two-tailed paired t-test of IMSR vs the better of SML/ADER on
    per-user hit indicators pooled across evaluation spans."""
    runs = result.runs
    imsr = runs.get((dataset, model, "IMSR"))
    rivals = [runs[(dataset, model, s)] for s in ("SML", "ADER")
              if (dataset, model, s) in runs]
    if imsr is None or not rivals:
        return None
    rival = max(rivals, key=lambda r: r.avg.hr)
    a, b = [], []
    imsr_runs = imsr.per_seed or [imsr]
    rival_runs = rival.per_seed or [rival]
    for imsr_run, rival_run in zip(imsr_runs, rival_runs):
        for span_imsr, span_rival in zip(imsr_run.per_user_metrics,
                                         rival_run.per_user_metrics):
            common = sorted(set(span_imsr) & set(span_rival))
            a.extend(span_imsr[u][0] for u in common)
            b.extend(span_rival[u][0] for u in common)
    if len(a) < 2:
        return None
    t_stat, p_value = paired_t_test(a, b)
    return bool(t_stat > 0 and p_value < 0.05)


def run_table3(
    datasets: Sequence[str] = ("electronics", "clothing", "books", "taobao"),
    models: Sequence[str] = MODELS,
    strategies: Sequence[str] = STRATEGIES,
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    model_kwargs: Optional[dict] = None,
    repeats: int = 1,
) -> Table3Result:
    """Regenerate Table III.

    IMSR runs first per (dataset, model) so FR can mirror its per-span
    interest counts, as the paper specifies.  ``repeats`` averages every
    cell over training seeds (the paper averages 10 runs).
    """
    config = config or default_config()
    result = Table3Result()
    for dataset in datasets:
        _, split = load_dataset(dataset, scale=scale)
        for model in models:
            imsr_counts: Dict[int, Dict[int, int]] = {}
            ordered = sorted(strategies, key=lambda s: 0 if s == "IMSR" else 1)
            for strategy_name in ordered:
                kwargs: dict = {}
                if strategy_name == "FR" and imsr_counts:
                    kwargs["interest_counts"] = imsr_counts
                run_res = run_repeated(
                    dataset, model, strategy_name, split, config=config,
                    repeats=repeats, model_kwargs=model_kwargs,
                    strategy_kwargs=kwargs,
                )
                result.runs[(dataset, model, strategy_name)] = run_res
                if strategy_name == "IMSR":
                    imsr_counts.update(run_res.counts_by_span)
            ft = result.runs[(dataset, model, "FT")] if (dataset, model, "FT") in result.runs else None
            for strategy_name in strategies:
                run_res = result.runs[(dataset, model, strategy_name)]
                baseline = 0.5 * (ft.avg.hr + ft.avg.ndcg) if ft else 0.0
                cell = Table3Cell(
                    hr=run_res.avg.hr,
                    ndcg=run_res.avg.ndcg,
                    ri=relative_improvement(
                        0.5 * (run_res.avg.hr + run_res.avg.ndcg), baseline
                    ) if ft and strategy_name != "FT" else 0.0,
                )
                result.cells[(dataset, model, strategy_name)] = cell
            if (dataset, model, "IMSR") in result.cells:
                result.cells[(dataset, model, "IMSR")].significant = (
                    imsr_significance(result, dataset, model)
                )
    return result
