"""Table IV — IMSR vs lifelong MSR models (MIMN, LimaRec).

The paper reports average HR over 5 evaluation spans: the lifelong models
update user representations online but never retrain parameters (and keep
a fixed interest count), so IMSR should beat LimaRec which should beat
MIMN on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data import load_dataset
from ..incremental import TrainConfig
from ..lifelong import MIMN, LimaRec, LimaRecModel
from ..models import make_model
from .reporting import format_table, shape_check
from .runner import RunResult, default_config, make_strategy, run_strategy

#: Paper Table IV (HR %, averaged over 5 spans).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "electronics": {"MIMN": 14.11, "LimaRec": 15.31, "IMSR": 16.81},
    "clothing": {"MIMN": 14.37, "LimaRec": 15.02, "IMSR": 16.68},
    "books": {"MIMN": 11.87, "LimaRec": 13.07, "IMSR": 14.48},
    "taobao": {"MIMN": 41.02, "LimaRec": 42.33, "IMSR": 44.35},
}

METHODS = ("MIMN", "LimaRec", "IMSR")


@dataclass
class Table4Result:
    runs: Dict[tuple, RunResult] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        datasets = sorted({d for d, _ in self.runs})
        for dataset in datasets:
            row: Dict[str, object] = {"dataset": dataset}
            for method in METHODS:
                run_res = self.runs.get((dataset, method))
                row[method] = run_res.avg.hr if run_res else float("nan")
                row[f"paper_{method}"] = PAPER_TABLE4[dataset][method] / 100.0
            rows.append(row)
        return rows

    def format(self) -> str:
        return format_table(self.rows())

    def shape_checks(self) -> List[Dict[str, object]]:
        checks = []
        datasets = sorted({d for d, _ in self.runs})
        beats_lima = sum(
            1 for d in datasets
            if self.runs[(d, "IMSR")].avg.hr > self.runs[(d, "LimaRec")].avg.hr
        )
        lima_beats_mimn = sum(
            1 for d in datasets
            if self.runs[(d, "LimaRec")].avg.hr > self.runs[(d, "MIMN")].avg.hr
        )
        n = len(datasets)
        checks.append(shape_check(
            f"IMSR beats LimaRec on all {n} datasets", beats_lima == n))
        checks.append(shape_check(
            f"LimaRec beats MIMN on >= 75% of datasets",
            lima_beats_mimn >= 0.75 * n))
        return checks


def run_table4(
    datasets: Sequence[str] = ("electronics", "clothing", "books", "taobao"),
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
) -> Table4Result:
    """Regenerate Table IV (IMSR on a ComiRec-DR base, as in the paper)."""
    config = config or default_config()
    result = Table4Result()
    for dataset in datasets:
        _, split = load_dataset(dataset, scale=scale)

        mimn = MIMN(make_model("ComiRec-DR", split.num_items, seed=config.seed),
                    split, config)
        result.runs[(dataset, "MIMN")] = run_strategy(
            mimn, split, dataset, "ComiRec-DR")

        lima = LimaRec(LimaRecModel(split.num_items, seed=config.seed),
                       split, config)
        result.runs[(dataset, "LimaRec")] = run_strategy(
            lima, split, dataset, "LimaRec")

        imsr = make_strategy("IMSR", "ComiRec-DR", split, config)
        result.runs[(dataset, "IMSR")] = run_strategy(
            imsr, split, dataset, "ComiRec-DR")
    return result
