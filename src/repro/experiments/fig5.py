"""Figure 5 — ablation study on Books and Taobao (ComiRec-DR/SA).

Variants (paper Section V-C):

* **FT** — plain fine-tuning;
* **IMSR w/o NID&PIT** — retention only, fixed interest count;
* **IMSR w/o EIR** — expansion without retention (``kd_weight = 0``);
* **IMSR(DIR)** — Euclidean distance retainer instead of distillation;
* **IMSR(KD1/KD2/KD3)** — softmax distillation variants;
* **IMSR** — the full framework.

Paper shape: full IMSR is best; removing EIR hurts most on Books (can
fall below FT); removing NID&PIT hurts most on Taobao; DIR < any KD; the
KD variants are all close to EIR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import load_dataset
from ..incremental import TrainConfig
from .reporting import format_table, series_to_rows, shape_check
from .runner import RunResult, default_config, run_repeated

#: variant name -> strategy kwargs for IMSR (None = plain FT)
VARIANTS: Dict[str, Optional[dict]] = {
    "FT": None,
    "IMSR w/o NID&PIT": {"use_nid": False, "use_pit": False},
    "IMSR w/o EIR": {"kd_weight": 0.0},
    "IMSR(DIR)": {"retainer": "DIR"},
    "IMSR(KD1)": {"retainer": "KD1"},
    "IMSR(KD2)": {"retainer": "KD2"},
    "IMSR(KD3)": {"retainer": "KD3"},
    "IMSR": {},
}


@dataclass
class Fig5Result:
    #: (dataset, model) -> variant -> HR per span
    series: Dict[tuple, Dict[str, List[float]]] = field(default_factory=dict)
    runs: Dict[tuple, RunResult] = field(default_factory=dict)

    def averages(self) -> Dict[tuple, Dict[str, float]]:
        return {
            key: {v: float(np.mean(hrs)) for v, hrs in variants.items()}
            for key, variants in self.series.items()
        }

    def format(self) -> str:
        blocks = []
        for key in sorted(self.series):
            blocks.append(f"[{key[0]} / {key[1]}]")
            blocks.append(format_table(series_to_rows(self.series[key])))
        return "\n".join(blocks)

    def shape_checks(self) -> List[Dict[str, object]]:
        checks: List[Dict[str, object]] = []
        for key, avg in sorted(self.averages().items()):
            label = f"[{key[0]}/{key[1]}]"
            full = avg["IMSR"]
            checks.append(shape_check(
                f"{label} full IMSR beats FT", full > avg["FT"]))
            ablations = [v for n, v in avg.items() if n not in ("IMSR", "FT")]
            # the paper's gaps are ~0.5-1% HR over 10 averaged runs; allow
            # the same tolerance here
            checks.append(shape_check(
                f"{label} full IMSR is at least as good as every ablation "
                "(within 0.005 HR)",
                all(full >= a - 0.005 for a in ablations)))
            kd_variants = [avg[n] for n in ("IMSR(KD1)", "IMSR(KD2)", "IMSR(KD3)")
                           if n in avg]
            if kd_variants and "IMSR(DIR)" in avg:
                checks.append(shape_check(
                    f"{label} best KD variant beats DIR",
                    max(kd_variants) > avg["IMSR(DIR)"]))
        return checks


def run_fig5(
    datasets: Sequence[str] = ("books", "taobao"),
    models: Sequence[str] = ("ComiRec-DR", "ComiRec-SA"),
    variants: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    config: Optional[TrainConfig] = None,
    repeats: int = 1,
) -> Fig5Result:
    """Regenerate the Figure 5 ablation curves.

    ``repeats`` averages each variant over several training seeds; the
    paper's ablation gaps are small, so >= 3 is recommended for stable
    orderings.
    """
    config = config or default_config()
    chosen = list(variants) if variants else list(VARIANTS)
    result = Fig5Result()
    for dataset in datasets:
        _, split = load_dataset(dataset, scale=scale)
        for model in models:
            key = (dataset, model)
            result.series[key] = {}
            for variant in chosen:
                kwargs = VARIANTS[variant]
                if kwargs is None:
                    run_res = run_repeated(dataset, model, "FT", split,
                                           config=config, repeats=repeats)
                else:
                    run_res = run_repeated(dataset, model, "IMSR", split,
                                           config=config, repeats=repeats,
                                           strategy_kwargs=kwargs)
                result.runs[(dataset, model, variant)] = run_res
                result.series[key][variant] = [r.hr for r in run_res.per_span]
    return result
