"""Crash-safe checkpointing for incremental training state.

An incremental recommender is a *stateful production system*: between
time spans the operator must persist the model parameters, every user's
interest matrix (whose row count varies per user — the whole point of
IMSR), the creation tags, per-user attention weights, and whatever
*extra* state the strategy accumulates across spans (ADER's replay
pool, EWC's Fisher estimates — the strategy's ``extra_state()`` hook,
stored under ``extra/``).  This module serializes all of that to a
single ``.npz`` file and restores it into a freshly constructed
strategy.

Format v2 adds the guarantees a long-lived service needs:

* **atomic writes** — the archive is staged to a temp file, fsynced, and
  committed with ``os.replace``; a crash at any instant leaves either
  the old checkpoint or the new one, never a truncated hybrid;
* **a manifest** — per-array SHA-256 checksums plus run metadata (span
  index, strategy/model/config fingerprint, and the bit-generator state
  of every RNG the strategy owns, so a resumed run continues the exact
  random stream);
* **verification** — a whole-file SHA-256 trailer is appended after the
  zip archive (zip readers ignore bytes past the end-of-central-directory
  record, so ``np.load`` still opens the file directly), making *any*
  single flipped byte or truncation detectable; :func:`verify_checkpoint`
  additionally re-hashes every array against the manifest, and
  :func:`load_checkpoint` always verifies *before* mutating any state,
  so a corrupt file can never half-restore a strategy;
* **v1 compatibility** — archives written before the manifest existed
  still load (zip CRCs are their only integrity check).

Example
-------
>>> save_checkpoint(strategy, "span3")              # lands at span3.npz
>>> fresh = make_strategy("IMSR", "ComiRec-DR", split, config)
>>> load_checkpoint(fresh, "span3")                 # ready for span 4
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from . import faults
from .incremental.strategy import IncrementalStrategy
from .models.base import UserState
from .nn import Parameter
from .obs import trace as obs
from .sanitize import capture as _capture
from .obs.log import get_logger

PathLike = Union[str, Path]

logger = get_logger(__name__)

_FORMAT_VERSION = 2

#: whole-file integrity trailer: b"\n" + marker + 64 hex chars + b"\n",
#: appended after the zip end-of-central-directory record
_TRAILER_MARKER = b"repro-checkpoint-sha256:"
_TRAILER_LEN = 1 + len(_TRAILER_MARKER) + 64 + 1

__all__ = [
    "CheckpointError",
    "CheckpointIOError",
    "save_checkpoint",
    "load_checkpoint",
    "verify_checkpoint",
    "checkpoint_info",
    "run_fingerprint",
    "atomic_write_bytes",
    "normalize_checkpoint_path",
]


class CheckpointError(ValueError):
    """A checkpoint is corrupt, truncated, or incompatible."""


class CheckpointIOError(CheckpointError, OSError):
    """A checkpoint could not be *read* due to an IO failure.

    Distinct from plain :class:`CheckpointError` (corruption — retrying
    cannot help) so retry logic such as the streaming pipeline's
    seeded backoff (:mod:`repro.stream`) can tell a transient fault
    (``except CheckpointIOError`` / ``except OSError``) from a poisoned
    file it must fall back from.
    """


def normalize_checkpoint_path(path: PathLike) -> Path:
    """Canonical on-disk location for a checkpoint path.

    ``np.savez_compressed`` silently appends ``.npz`` when the suffix is
    missing; normalizing once in both directions keeps ``save``/``load``
    symmetric for suffix-less paths like ``"span3"``.
    """
    p = Path(path)
    if p.suffix != ".npz":
        p = p.with_name(p.name + ".npz")
    return p


def atomic_write_bytes(data: bytes, path: PathLike, kind: str = "file") -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + replace).

    The staging file gets a unique name (``tempfile.mkstemp`` in the
    target directory), so concurrent writers to the same path never
    clobber each other's in-flight temp file, and cleanup only ever
    unlinks the file this call created.

    Fires the ``io-write`` fault probe before staging and ``io-replace``
    after the temp file is durable but before the commit — the two
    instants a crash-safety test needs to hit.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    faults.fire("io-write", path=str(path), kind=kind)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        faults.fire("io-replace", path=str(path), kind=kind)
        os.replace(tmp, path)
        _fsync_directory(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()


def _fsync_directory(directory: Path) -> None:
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platform without directory fds — replace is still atomic
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # some filesystems reject directory fsync; not fatal
    finally:
        os.close(dir_fd)


def _array_digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def run_fingerprint(strategy: IncrementalStrategy) -> str:
    """Stable hash of everything that must match for a resume to be
    valid: strategy, model architecture, and the training config."""
    payload = {
        "strategy": strategy.name,
        "model_class": type(strategy.model).__name__,
        "model_family": strategy.model.family,
        "num_items": strategy.model.num_items,
        "dim": strategy.model.dim,
        "K0": strategy.model.K0,
        "config": {k: v for k, v in sorted(vars(strategy.config).items())},
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _collect_arrays(strategy: IncrementalStrategy) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name, param in strategy.model.named_parameters():
        arrays[f"param/{name}"] = param.data
    # sorted: the archive member order is part of the determinism
    # contract (same state -> byte-identical layout), not insertion luck.
    # Snapshot-style members are frozen at this capture boundary; live
    # trainables (param/, sa_weights) stay writable for the optimizer.
    for user, state in sorted(strategy.states.items()):
        arrays[f"user/{user}/interests"] = _capture(state.interests)
        arrays[f"user/{user}/prev_interests"] = _capture(state.prev_interests)
        arrays[f"user/{user}/created_span"] = _capture(state.created_span)
        arrays[f"user/{user}/n_existing"] = np.array([state.n_existing])
        # NID's once-per-span guard: replayed-but-inactive users carry it
        # across span boundaries, so a resume must restore it too
        arrays[f"user/{user}/expanded"] = np.array([state.expanded_this_span])
        if state.sa_weights is not None:
            arrays[f"user/{user}/sa_weights"] = state.sa_weights.data
    # strategy-specific state beyond the base contract: replay pools,
    # Fisher estimates, diagnostic logs (see IncrementalStrategy.extra_state)
    for name, arr in sorted(strategy.extra_state().items()):
        arrays[f"extra/{name}"] = _capture(np.asarray(arr))
    return arrays


def save_checkpoint(strategy: IncrementalStrategy, path: PathLike,
                    span: Optional[int] = None) -> Path:
    """Atomically serialize model parameters, user states, strategy
    extra state, and RNG streams; returns the normalized path the
    archive landed at."""
    path = normalize_checkpoint_path(path)
    arrays = _collect_arrays(strategy)

    manifest = {
        "version": _FORMAT_VERSION,
        "strategy": strategy.name,
        "model_family": strategy.model.family,
        "users": sorted(strategy.states),
        "span": span,
        "fingerprint": run_fingerprint(strategy),
        "rng": {
            name: gen.bit_generator.state
            for name, gen in strategy.random_generators().items()
        },
        "arrays": {
            name: {
                "sha256": _array_digest(arr),
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
            }
            for name, arr in arrays.items()
        },
    }
    payload = dict(arrays)
    payload["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with obs.span("checkpoint.save", file=path.name, span_id=span):
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        blob = buffer.getvalue()
        trailer = (b"\n" + _TRAILER_MARKER
                   + hashlib.sha256(blob).hexdigest().encode("ascii") + b"\n")
        atomic_write_bytes(blob + trailer, path, kind="checkpoint")
        obs.counter("checkpoint.saves")
        obs.gauge("checkpoint.bytes", len(blob) + len(trailer))
    return path


def _split_trailer(data: bytes):
    """(zip bytes, declared whole-file digest or None) for raw file bytes."""
    tail = data[-_TRAILER_LEN:]
    if (len(data) > _TRAILER_LEN and tail.startswith(b"\n" + _TRAILER_MARKER)
            and tail.endswith(b"\n")):
        digest = tail[1 + len(_TRAILER_MARKER):-1]
        try:
            digest_text = digest.decode("ascii")
            int(digest_text, 16)
        except (UnicodeDecodeError, ValueError):
            return data, None
        return data[:-_TRAILER_LEN], digest_text
    return data, None


# ---------------------------------------------------------------------- #
# reading / verification
# ---------------------------------------------------------------------- #
def _read_archive(path: Path, verify: bool = True):
    """Load (manifest, arrays) fully into memory, validating integrity.

    Returns the parsed manifest/meta dict and a ``{name: ndarray}`` map.
    Every array is read eagerly so zip CRC checks run here, and (for v2)
    every SHA-256 is compared against the manifest — all *before* any
    caller mutates strategy state.  Raises :class:`CheckpointError` on
    any corruption, truncation, or malformed metadata.
    """
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        data = path.read_bytes()
    except OSError as err:
        raise CheckpointIOError(
            f"checkpoint {path} cannot be read: {err}") from err
    blob, declared_digest = _split_trailer(data)
    if verify and declared_digest is not None:
        actual = hashlib.sha256(blob).hexdigest()
        if actual != declared_digest:
            raise CheckpointError(
                f"checkpoint {path} fails its whole-file SHA-256 check — "
                f"the file is corrupt or truncated")
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
            names = list(archive.files)
            if "manifest" in names:
                meta = json.loads(bytes(archive["manifest"].tobytes()).decode("utf-8"))
            elif "meta" in names:  # format v1
                meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
            else:
                raise CheckpointError(
                    f"checkpoint {path} has no manifest/meta entry")
            arrays = {
                name: archive[name]
                for name in names
                if name not in ("manifest", "meta")
            }
    except CheckpointError:
        raise
    except (OSError, ValueError, KeyError, EOFError, NotImplementedError,
            zipfile.BadZipFile, zlib.error) as exc:
        # the open-ended exception set zipfile/np.load raise on mangled
        # input; v2 files never get here corrupt (whole-file hash above)
        raise CheckpointError(
            f"checkpoint {path} is corrupt or truncated: {exc}") from exc

    version = meta.get("version")
    if version not in (1, _FORMAT_VERSION):
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {path}")
    if version == _FORMAT_VERSION and declared_digest is None:
        raise CheckpointError(
            f"checkpoint {path} declares format v2 but its whole-file "
            f"integrity trailer is missing or mangled")
    if verify and version == _FORMAT_VERSION:
        declared = meta.get("arrays", {})
        if set(declared) != set(arrays):
            missing = sorted(set(declared) - set(arrays))
            extra = sorted(set(arrays) - set(declared))
            raise CheckpointError(
                f"checkpoint {path} array set disagrees with its manifest "
                f"(missing={missing[:5]}, undeclared={extra[:5]})")
        for name, entry in declared.items():
            arr = arrays[name]
            if list(arr.shape) != entry["shape"] or str(arr.dtype) != entry["dtype"]:
                raise CheckpointError(
                    f"checkpoint {path} array {name!r} has shape/dtype "
                    f"{arr.shape}/{arr.dtype}, manifest says "
                    f"{tuple(entry['shape'])}/{entry['dtype']}")
            if _array_digest(arr) != entry["sha256"]:
                raise CheckpointError(
                    f"checkpoint {path} array {name!r} fails its SHA-256 "
                    f"check — the file was corrupted after writing")
    return meta, arrays


def verify_checkpoint(path: PathLike) -> Dict[str, object]:
    """Fully validate a checkpoint's integrity; returns its manifest.

    For format v2 every array is re-hashed against the manifest; any
    single flipped byte or truncation raises :class:`CheckpointError`.
    Format v1 archives only get the zip-level CRC check (every array is
    still read in full, so torn files are rejected).
    """
    path = normalize_checkpoint_path(path)
    meta, _ = _read_archive(path, verify=True)
    return meta


def load_checkpoint(strategy: IncrementalStrategy, path: PathLike,
                    strict: bool = True,
                    create_missing: bool = False) -> Dict[str, object]:
    """Restore a checkpoint into ``strategy`` in place.

    The strategy must be built on the same model architecture and data
    split (same parameter shapes); user interest matrices may have any
    row count — they are restored verbatim.  Integrity and compatibility
    are fully validated *before* the first mutation, so a failed load
    leaves the strategy exactly as it was.

    ``strict`` (default) raises when the checkpoint contains users the
    strategy does not know; pass ``strict=False`` to skip them with a
    logged warning instead (e.g. loading into a truncated split), or
    ``create_missing=True`` to build their :class:`UserState` directly
    from the checkpoint arrays — the streaming resume path, where users
    were created mid-stream and exist in no split.

    Row-sparse model parameters (embedding tables) may hold *more* rows
    than the checkpoint: the checkpointed rows restore as a prefix and
    the extra rows are left untouched.  That is the mid-stream cold-start
    rollback case — rows grown after the checkpoint was written keep
    their current values (they are cold items; nothing older references
    them).  Any other shape mismatch still raises.

    Returns the checkpoint manifest.
    """
    path = normalize_checkpoint_path(path)
    with obs.span("checkpoint.load", file=path.name):
        meta, arrays = _read_archive(path, verify=True)
        obs.counter("checkpoint.loads")

    if meta.get("model_family") != strategy.model.family:
        raise CheckpointError(
            f"checkpoint is for a {meta.get('model_family')!r}-family "
            f"model, strategy has {strategy.model.family!r}")

    params = dict(strategy.model.named_parameters())
    ckpt_params = {k[len("param/"):]: v for k, v in arrays.items()
                   if k.startswith("param/")}
    missing = sorted(set(params) - set(ckpt_params))
    if missing:
        raise CheckpointError(
            f"checkpoint lacks model parameter(s) {missing[:5]}")
    for name, arr in ckpt_params.items():
        if name not in params:
            raise KeyError(f"checkpoint parameter {name!r} not in model")
        target = params[name].data
        if target.shape != arr.shape:
            row_grown = (getattr(params[name], "row_sparse", False)
                         and arr.ndim == target.ndim and target.ndim >= 1
                         and arr.shape[1:] == target.shape[1:]
                         and arr.shape[0] <= target.shape[0])
            if not row_grown:
                raise CheckpointError(
                    f"shape mismatch for parameter {name!r}: "
                    f"{params[name].data.shape} vs {arr.shape}")

    users = [int(u) for u in meta["users"]]
    unknown = [u for u in users if u not in strategy.states]
    if unknown and not create_missing:
        if strict:
            raise CheckpointError(
                f"checkpoint contains {len(unknown)} user(s) absent from "
                f"the strategy (first few: {unknown[:5]}); pass "
                f"strict=False to skip them")
        logger.warning(
            "load_checkpoint: skipping %d checkpoint user(s) absent from "
            "the strategy: %s%s", len(unknown), unknown[:10],
            "..." if len(unknown) > 10 else "")

    # -------- all validation passed: apply ---------------------------- #
    # extra strategy state first: a strategy that rejects it (unknown
    # keys, or a v1 archive missing a replay pool) must fail before any
    # base state is mutated
    extra = {k[len("extra/"):]: arrays[k]
             for k in arrays if k.startswith("extra/")}
    try:
        strategy.load_extra_state(extra)
    except CheckpointError:
        raise
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} extra strategy state cannot be restored "
            f"into {type(strategy).__name__}: {exc}") from exc

    for name, arr in ckpt_params.items():
        target = params[name].data
        if target.shape != arr.shape:
            target[:arr.shape[0]] = arr  # repro: noqa[RA601] restore-in-place is the point; row-grown prefix validated above
        else:
            target[...] = arr  # repro: noqa[RA601] restore-in-place is the point; no tape is live during load

    for user in users:
        state = strategy.states.get(user)
        if state is None:
            if not create_missing:
                continue  # counted above; strict mode already raised
            state = UserState(
                user=user,
                interests=np.zeros((0, strategy.model.dim)),
                prev_interests=np.zeros((0, strategy.model.dim)),
                created_span=np.zeros(0, dtype=np.int64),
                n_existing=0,
            )
            strategy.states[user] = state
        state.interests = _capture(arrays[f"user/{user}/interests"].copy())
        state.prev_interests = _capture(
            arrays[f"user/{user}/prev_interests"].copy())
        state.created_span = _capture(arrays[f"user/{user}/created_span"].copy())
        state.n_existing = int(arrays[f"user/{user}/n_existing"][0])
        expanded_key = f"user/{user}/expanded"
        if expanded_key in arrays:  # absent from older archives
            state.expanded_this_span = bool(arrays[expanded_key][0])
        sa_key = f"user/{user}/sa_weights"
        if sa_key in arrays:
            state.sa_weights = Parameter(arrays[sa_key].copy())

    for name, rng_state in meta.get("rng", {}).items():
        gen = strategy.random_generators().get(name)
        if gen is not None:
            gen.bit_generator.state = rng_state

    return meta


def checkpoint_info(path: PathLike, verify: bool = False) -> Dict[str, object]:
    """Read a checkpoint's metadata; with ``verify``, re-hash every
    array against the manifest first."""
    path = normalize_checkpoint_path(path)
    meta, arrays = _read_archive(path, verify=verify)
    meta["num_arrays"] = len(arrays) + 1  # + the manifest entry itself
    return meta
