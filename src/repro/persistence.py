"""Checkpointing for incremental training state.

An incremental recommender is a *stateful production system*: between
time spans the operator must persist the model parameters, every user's
interest matrix (whose row count varies per user — the whole point of
IMSR), the creation tags, and per-user attention weights.  This module
serializes all of that to a single ``.npz`` file and restores it into a
freshly constructed strategy.

Example
-------
>>> save_checkpoint(strategy, "span3.npz")          # after train_span(3)
>>> fresh = make_strategy("IMSR", "ComiRec-DR", split, config)
>>> load_checkpoint(fresh, "span3.npz")             # ready for span 4
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .incremental.strategy import IncrementalStrategy
from .nn import Parameter

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_checkpoint(strategy: IncrementalStrategy, path: PathLike) -> None:
    """Serialize a strategy's model parameters and all user states."""
    arrays: Dict[str, np.ndarray] = {}
    for name, param in strategy.model.named_parameters():
        arrays[f"param/{name}"] = param.data

    meta = {
        "version": _FORMAT_VERSION,
        "strategy": strategy.name,
        "model_family": strategy.model.family,
        "users": sorted(strategy.states),
    }
    for user, state in strategy.states.items():
        arrays[f"user/{user}/interests"] = state.interests
        arrays[f"user/{user}/prev_interests"] = state.prev_interests
        arrays[f"user/{user}/created_span"] = state.created_span
        arrays[f"user/{user}/n_existing"] = np.array([state.n_existing])
        if state.sa_weights is not None:
            arrays[f"user/{user}/sa_weights"] = state.sa_weights.data
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(str(path), **arrays)


def load_checkpoint(strategy: IncrementalStrategy, path: PathLike) -> None:
    """Restore a checkpoint into ``strategy`` in place.

    The strategy must be built on the same model architecture and data
    split (same parameter shapes and user ids); user interest matrices
    may have any row count — they are restored verbatim.
    """
    with np.load(str(path), allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {meta.get('version')!r}"
            )
        if meta.get("model_family") != strategy.model.family:
            raise ValueError(
                f"checkpoint is for a {meta.get('model_family')!r}-family "
                f"model, strategy has {strategy.model.family!r}"
            )

        params = dict(strategy.model.named_parameters())
        for key in archive.files:
            if not key.startswith("param/"):
                continue
            name = key[len("param/"):]
            if name not in params:
                raise KeyError(f"checkpoint parameter {name!r} not in model")
            if params[name].data.shape != archive[key].shape:
                raise ValueError(
                    f"shape mismatch for parameter {name!r}: "
                    f"{params[name].data.shape} vs {archive[key].shape}"
                )
            params[name].data[...] = archive[key]

        for user in meta["users"]:
            state = strategy.states.get(int(user))
            if state is None:
                continue
            state.interests = archive[f"user/{user}/interests"].copy()
            state.prev_interests = archive[f"user/{user}/prev_interests"].copy()
            state.created_span = archive[f"user/{user}/created_span"].copy()
            state.n_existing = int(archive[f"user/{user}/n_existing"][0])
            sa_key = f"user/{user}/sa_weights"
            if sa_key in archive.files:
                state.sa_weights = Parameter(archive[sa_key].copy())


def checkpoint_info(path: PathLike) -> Dict[str, object]:
    """Read a checkpoint's metadata without loading arrays."""
    with np.load(str(path), allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        meta["num_arrays"] = len(archive.files)
    return meta
