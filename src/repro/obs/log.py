"""Structured logging for the incremental-training stack.

Every module that used to ``print(...)`` its diagnostics (resume notices,
divergence incidents, skipped-user warnings) routes them through a
``logging`` logger obtained here instead, so operators can filter,
capture, or silence them like any production log stream.  The loggers
all live under the ``repro`` namespace — ``configure_logging()`` attaches
one stream handler to that root, and ``get_logger(__name__)`` inside the
package yields the conventional per-module child loggers.

When a trace is active (:mod:`repro.obs.trace`), :class:`TraceLogHandler`
can additionally mirror log records into the trace file as ``log``
events, so incidents end up next to the decision telemetry they explain.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"

__all__ = ["ROOT_LOGGER", "get_logger", "configure_logging",
           "TraceLogHandler"]


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``name`` is typically ``__name__`` of the calling module (already
    ``repro.*`` inside the package); any other name is nested under the
    ``repro`` root so one handler/level controls the whole stack.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(level: int = logging.INFO,
                      stream=None,
                      fmt: str = _FORMAT) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: calling it again only adjusts the level, so libraries and
    the CLI can both call it without duplicating output.  ``stream``
    defaults to stderr — diagnostics must not corrupt stdout result
    tables.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    has_stream = any(isinstance(h, logging.StreamHandler)
                     and not isinstance(h, TraceLogHandler)
                     for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(fmt))
        root.addHandler(handler)
    return root


class TraceLogHandler(logging.Handler):
    """Mirror ``repro.*`` log records into the active trace as events.

    Installed by :func:`repro.obs.trace.start_tracing` and removed by
    ``stop_tracing``; a record emitted while no trace is active is
    silently dropped (the stream handler still sees it).
    """

    def emit(self, record: logging.LogRecord) -> None:
        from . import trace

        tracer = trace.current_tracer()
        if tracer is None:
            return
        try:
            tracer.event(
                "log",
                level=record.levelname,
                logger=record.name,
                message=record.getMessage(),
            )
        except (OSError, ValueError):  # never let telemetry kill the run
            self.handleError(record)


def attach_trace_handler() -> Optional[TraceLogHandler]:
    """Install one :class:`TraceLogHandler` on the ``repro`` root.

    Returns the handler (new or existing) so callers can detach it.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in root.handlers:
        if isinstance(handler, TraceLogHandler):
            return handler
    handler = TraceLogHandler()
    root.addHandler(handler)
    return handler


def detach_trace_handler() -> None:
    """Remove any :class:`TraceLogHandler` from the ``repro`` root."""
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if isinstance(handler, TraceLogHandler):
            root.removeHandler(handler)
