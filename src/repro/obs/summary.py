"""Read, fingerprint, and summarize JSONL traces.

The counterpart of :mod:`repro.obs.trace`: given a trace directory (or
the ``trace.jsonl`` file directly), :func:`read_trace` parses the event
stream tolerantly (a torn final line from a crash is skipped, not
fatal), :func:`trace_fingerprint` reproduces the tracer's deterministic
content hash, and :func:`summarize_trace` / :func:`render_summary` power
``repro trace summarize <dir>``.

Every question the acceptance criteria ask — which users NID expanded,
what PIT trimmed, every EIR distillation value, each fault-probe firing
and rollback incident — is answered from the parsed events alone; no
strategy state is needed.
"""

from __future__ import annotations

import hashlib
import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import merge_snapshots, quantile_from_snapshot
from .trace import TRACE_NAME, TraceError, fingerprint_view

PathLike = Union[str, Path]

__all__ = [
    "read_trace",
    "trace_fingerprint",
    "decision_events",
    "span_rollup",
    "stream_rollup",
    "backend_rollup",
    "prof_rollup",
    "summarize_trace",
    "render_summary",
    "render_prof_summary",
    "render_stream_summary",
    "diff_traces",
    "render_diff",
]

#: percentiles rendered for every histogram (p50/p95/p99)
PERCENTILES = (0.50, 0.95, 0.99)


def _trace_path(target: PathLike) -> Path:
    path = Path(target)
    if path.is_dir():
        path = path / TRACE_NAME
    return path


def read_trace(target: PathLike) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a trace file (or its directory) into ``(events, skipped)``.

    ``skipped`` counts unparseable lines — at most the torn final line of
    a crashed run under normal operation; more indicates corruption.
    """
    path = _trace_path(target)
    if not path.exists():
        raise TraceError(f"no trace at {path}")
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "rb") as fh:
        for raw in fh:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                skipped += 1
    return events, skipped


def trace_fingerprint(events: List[Dict[str, Any]]) -> str:
    """SHA-256 over the events with timing fields stripped.

    Matches :meth:`repro.obs.trace.Tracer.fingerprint` for the same
    event stream: the reserved keys ``wall``/``dur_s`` are removed, and
    within a ``metrics`` record every timing metric
    (:func:`repro.obs.metrics.is_timing_metric`) is dropped.
    """
    hasher = hashlib.sha256()
    for record in events:
        hasher.update(json.dumps(fingerprint_view(record),
                                 sort_keys=True).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def decision_events(events: List[Dict[str, Any]],
                    name: Optional[str] = None) -> List[Dict[str, Any]]:
    """Every ``event`` record, optionally filtered by event name."""
    return [e for e in events
            if e.get("kind") == "event"
            and (name is None or e.get("name") == name)]


def span_rollup(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per span-name aggregate: count, closed count, total duration."""
    rollup: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"count": 0, "closed": 0, "total_s": 0.0})
    for record in events:
        kind = record.get("kind")
        if kind == "span_start":
            rollup[record.get("name", "?")]["count"] += 1
        elif kind == "span_end":
            entry = rollup[record.get("name", "?")]
            entry["closed"] += 1
            entry["total_s"] += float(record.get("dur_s", 0.0))
    return dict(rollup)


def _field(record: Dict[str, Any], key: str, default=None):
    return record.get("fields", {}).get(key, default)


def stream_rollup(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Aggregate the streaming pipeline's decision events.

    Answers the operator's questions about a ``repro.stream`` run from
    the trace alone: how much was quarantined and why, how often commit
    IO backed off, when the pipeline degraded/recovered, and what the
    commit cadence looked like.  Returns None when the trace holds no
    stream events (e.g. a span-based run).
    """
    stream_events = [e for e in decision_events(events)
                     if str(e.get("name", "")).startswith("stream.")]
    if not stream_events:
        return None
    quarantined: Dict[str, int] = {}
    for record in decision_events(events, "stream.quarantined"):
        reason = str(_field(record, "reason"))
        quarantined[reason] = quarantined.get(reason, 0) + 1
    committed = decision_events(events, "stream.committed")
    return {
        "quarantined": dict(sorted(quarantined.items())),
        "quarantined_total": sum(quarantined.values()),
        "backoffs": len(decision_events(events, "stream.backoff")),
        "backpressure_drops": len(
            decision_events(events, "stream.backpressure")),
        "degradations": [
            {"interval": _field(e, "interval"),
             "reason": _field(e, "reason"),
             "rollback": _field(e, "rollback")}
            for e in decision_events(events, "stream.degraded")
        ],
        "recoveries": [
            {"interval": _field(e, "interval"),
             "retrained": _field(e, "retrained")}
            for e in decision_events(events, "stream.recovered")
        ],
        "intervals_committed": len(committed),
        "last_offset": (max(int(_field(e, "offset", 0)) for e in committed)
                        if committed else None),
        "resumes": [
            {"interval": _field(e, "interval"),
             "offset": _field(e, "offset")}
            for e in decision_events(events, "stream.resumed")
        ],
    }


def backend_rollup(metrics: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Compute-backend telemetry from the final metrics snapshot.

    Collects the ``backend.active`` gauge and the buffer-pool counters
    (``backend.pool_hits`` / ``backend.pool_misses`` /
    ``backend.bytes_reused``) the fast backend flushes at optimizer-step
    boundaries, grouped by their ``backend=`` label.  Returns None when
    the trace carries no backend metrics (e.g. a default-backend run
    without the runner's gauge).
    """
    pools: Dict[str, Dict[str, float]] = {}
    active: Optional[str] = None
    for key, state in metrics.items():
        name, _, label_part = key.partition("{")
        if not name.startswith("backend."):
            continue
        labels: Dict[str, str] = {}
        for item in label_part.rstrip("}").split(","):
            k, sep, v = item.partition("=")
            if sep:
                labels[k] = v
        which = labels.get("backend", "?")
        if name == "backend.active":
            active = which
        elif name in ("backend.pool_hits", "backend.pool_misses",
                      "backend.bytes_reused"):
            field = name.split(".", 1)[1]
            pools.setdefault(which, {})[field] = float(state.get("value", 0.0))
    if active is None and not pools:
        return None
    rollup: Dict[str, Any] = {"active": active, "pools": {}}
    for which, counts in sorted(pools.items()):
        hits = counts.get("pool_hits", 0.0)
        misses = counts.get("pool_misses", 0.0)
        total = hits + misses
        rollup["pools"][which] = {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": (hits / total) if total else None,
            "bytes_reused": int(counts.get("bytes_reused", 0.0)),
        }
    return rollup


def prof_rollup(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Aggregate the profiler's op-level records, if the run was profiled.

    Collects the ``op_stats`` (backend ops by phase/shape bucket),
    ``kernel_stats`` (named kernels: sandwich forward ops, backward fns,
    explicit scopes), ``phase_stats`` walls, and the memory summary the
    profiler folded into the trace.  Returns None for unprofiled runs.
    """
    kernels = [r for r in events if r.get("kind") == "kernel_stats"]
    backend_ops = [r for r in events if r.get("kind") == "op_stats"]
    phases = {str(r.get("phase")): float(r.get("wall_s", 0.0) or 0.0)
              for r in events if r.get("kind") == "phase_stats"}
    mem = None
    for record in events:
        if record.get("kind") == "mem_summary":
            mem = {k: v for k, v in record.items() if k != "kind"}
    if not (kernels or backend_ops or phases or mem):
        return None
    kernel_s: Dict[str, float] = {}
    for record in kernels:
        phase = str(record.get("phase"))
        kernel_s[phase] = kernel_s.get(phase, 0.0) + \
            float(record.get("total_s", 0.0) or 0.0)
    attribution = {
        phase: {
            "wall_s": wall,
            "kernel_s": kernel_s.get(phase, 0.0),
            "frac": (kernel_s.get(phase, 0.0) / wall) if wall > 0 else 0.0,
        }
        for phase, wall in sorted(phases.items())
    }
    return {
        "attribution": attribution,
        "kernels": sorted(kernels,
                          key=lambda r: -float(r.get("total_s", 0.0) or 0.0)),
        "backend_ops": sorted(
            backend_ops,
            key=lambda r: -float(r.get("total_s", 0.0) or 0.0)),
        "memory": mem,
        "mem_samples": sum(1 for r in events
                           if r.get("kind") == "mem_sample"),
        "pool_samples": sum(1 for r in events
                            if r.get("kind") == "pool_sample"),
    }


def summarize_trace(target: PathLike) -> Dict[str, Any]:
    """Aggregate a trace into the structure the CLI renders.

    Sections: run identity, span rollup, decision telemetry (NID
    expansions / PIT trims per span, EIR distillation stats, fault-probe
    firings, journal incidents), log lines, profiler rollup, and the
    metric snapshot (resumed runs write one ``metrics`` record per
    segment; they are merged into run totals — counters sum, histograms
    with matching edges fold together).
    """
    events, skipped = read_trace(target)
    opens = [e for e in events if e.get("kind") == "trace_open"]
    metrics: Dict[str, Any] = {}
    for record in events:
        if record.get("kind") == "metrics":
            metrics = merge_snapshots(metrics, record.get("metrics", {}))

    expansions = decision_events(events, "nid.expansion")
    trims = decision_events(events, "pit.trim")
    eir = decision_events(events, "eir.distill")
    faults = decision_events(events, "fault.fired")
    incidents = decision_events(events, "journal.incident")
    committed = decision_events(events, "journal.span_committed")
    logs = decision_events(events, "log")

    by_span = lambda evs: {  # noqa: E731 - tiny local aggregation
        span: sorted(_field(e, "user") for e in evs
                     if _field(e, "span_id") == span)
        for span in sorted({_field(e, "span_id") for e in evs})
    }
    eir_values = [float(_field(e, "kd")) for e in eir
                  if _field(e, "kd") is not None]

    return {
        "path": str(_trace_path(target)),
        "events": len(events),
        "skipped_lines": skipped,
        "runs": [{"run_id": o.get("run_id"), "resumed": o.get("resumed")}
                 for o in opens],
        "fingerprint": trace_fingerprint(events),
        "spans": span_rollup(events),
        "nid_expansions": by_span(expansions),
        "pit_trims": {
            span: int(sum(_field(e, "removed", 0) for e in trims
                          if _field(e, "span_id") == span))
            for span in sorted({_field(e, "span_id") for e in trims})
        },
        "eir": {
            "count": len(eir_values),
            "mean": (sum(eir_values) / len(eir_values)) if eir_values else None,
            "max": max(eir_values) if eir_values else None,
        },
        "faults": [
            {"point": _field(e, "point"), "kind": _field(e, "fault_kind"),
             "occurrence": _field(e, "occurrence")}
            for e in faults
        ],
        "incidents": [
            {"span": _field(e, "span_id"), "kind": _field(e, "incident"),
             "action": _field(e, "action")}
            for e in incidents
        ],
        "spans_committed": sorted(
            _field(e, "span_id") for e in committed),
        "stream": stream_rollup(events),
        "backend": backend_rollup(metrics),
        "prof": prof_rollup(events),
        "log_lines": len(logs),
        "metrics": metrics,
    }


def _percentile_cell(state: Dict[str, Any]) -> str:
    """``p50=… p95=… p99=…`` for a histogram snapshot (empty if no data)."""
    cells = []
    for q in PERCENTILES:
        value = quantile_from_snapshot(state, q)
        if value is None:
            return ""
        cells.append(f"p{int(q * 100)}={value:.6g}")
    return " ".join(cells)


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`'s output."""
    lines: List[str] = []
    runs = summary.get("runs", [])
    resumes = sum(1 for r in runs if r.get("resumed"))
    lines.append(f"trace {summary['path']}")
    lines.append(
        f"  {summary['events']} events, {summary['skipped_lines']} torn "
        f"line(s) skipped, {len(runs)} run segment(s)"
        + (f" ({resumes} resumed)" if resumes else ""))
    lines.append(f"  fingerprint {summary['fingerprint'][:16]}…")

    spans = summary.get("spans", {})
    if spans:
        lines.append("spans:")
        width = max(len(name) for name in spans)
        for name in sorted(spans):
            entry = spans[name]
            lines.append(
                f"  {name:<{width}}  n={int(entry['count']):<5d} "
                f"total={entry['total_s']:.3f}s")

    expansions = summary.get("nid_expansions", {})
    lines.append("decisions:")
    if expansions:
        for span, users in expansions.items():
            lines.append(
                f"  nid.expansion  span {span}: {len(users)} user(s) "
                f"{users}")
    else:
        lines.append("  nid.expansion  none")
    trims = summary.get("pit_trims", {})
    if trims:
        for span, removed in trims.items():
            lines.append(f"  pit.trim       span {span}: {removed} "
                         f"capsule(s) removed")
    else:
        lines.append("  pit.trim       none")
    eir = summary.get("eir", {})
    if eir.get("count"):
        lines.append(
            f"  eir.distill    {eir['count']} loss value(s), "
            f"mean={eir['mean']:.6f} max={eir['max']:.6f}")
    else:
        lines.append("  eir.distill    none")

    faults = summary.get("faults", [])
    if faults:
        for f in faults:
            lines.append(
                f"  fault.fired    {f['point']} ({f['kind']}, "
                f"occurrence {f['occurrence']})")
    incidents = summary.get("incidents", [])
    if incidents:
        for inc in incidents:
            lines.append(
                f"  incident       span {inc['span']}: {inc['kind']} -> "
                f"{inc['action']}")
    committed = summary.get("spans_committed", [])
    if committed:
        lines.append(f"  journal        spans committed: {committed}")
    if summary.get("log_lines"):
        lines.append(f"  log            {summary['log_lines']} line(s)")

    backend = summary.get("backend")
    if backend:
        lines.append("backend:")
        if backend.get("active"):
            lines.append(f"  active         {backend['active']}")
        for which, pool in backend.get("pools", {}).items():
            rate = ("n/a" if pool["hit_rate"] is None
                    else f"{pool['hit_rate'] * 100:.1f}%")
            lines.append(
                f"  pool[{which}]     hits={pool['hits']} "
                f"misses={pool['misses']} hit_rate={rate} "
                f"bytes_reused={pool['bytes_reused']}")

    prof = summary.get("prof")
    if prof:
        lines.append(render_prof_summary(prof))

    metrics = summary.get("metrics", {})
    if metrics:
        lines.append("metrics:")
        width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            state = metrics[name]
            if state.get("type") == "histogram":
                mean = (state["sum"] / state["count"]) if state["count"] else 0
                cell = (f"count={state['count']} mean={mean:.6g} "
                        f"min={state['min']:.6g} max={state['max']:.6g}")
                pct = _percentile_cell(state)
                if pct:
                    cell += " " + pct
            else:
                cell = f"value={state.get('value')}"
            lines.append(f"  {name:<{width}}  {cell}")

    stream = summary.get("stream")
    if stream is not None:
        lines.append(render_stream_summary(summary, header="stream:"))
    return "\n".join(lines)


def render_prof_summary(prof: Dict[str, Any], top: int = 12) -> str:
    """Render the profiler rollup: attribution, op table, memory."""
    lines = ["profile:"]
    attribution = prof.get("attribution", {})
    for phase, entry in attribution.items():
        lines.append(
            f"  phase[{phase}]  wall={entry['wall_s']:.3f}s "
            f"attributed={entry['kernel_s']:.3f}s "
            f"({100.0 * entry['frac']:.1f}%)")
    kernels = prof.get("kernels", [])[:top]
    if kernels:
        lines.append("  kernels (top by total time):")
        for record in kernels:
            lines.append(
                f"    {record.get('phase')}/{record.get('op')}  "
                f"n={record.get('count')} "
                f"total={float(record.get('total_s', 0.0)):.4f}s")
    backend_ops = prof.get("backend_ops", [])[:top]
    if backend_ops:
        lines.append("  backend ops (top by total time):")
        for record in backend_ops:
            total_s = float(record.get("total_s", 0.0) or 0.0)
            flops = float(record.get("flops", 0.0) or 0.0)
            rate = f" {flops / total_s / 1e9:.2f}GF/s" if total_s > 0 and \
                flops > 0 else ""
            lines.append(
                f"    {record.get('phase')}/{record.get('op')}"
                f"[{record.get('bucket')}]  n={record.get('count')} "
                f"total={total_s:.4f}s bytes={record.get('bytes')}{rate}")
    mem = prof.get("memory")
    if mem:
        cell = (f"  memory         peak={mem.get('peak_bytes')}B "
                f"live={mem.get('live_bytes')}B "
                f"tensors={mem.get('tensors_tracked')}")
        if mem.get("rss_kb") is not None:
            cell += f" rss={mem['rss_kb']}kB"
        lines.append(cell)
    if prof.get("pool_samples"):
        lines.append(f"  pool timeline  {prof['pool_samples']} sample(s)")
    return "\n".join(lines)


def render_stream_summary(summary: Dict[str, Any],
                          header: str = "stream:") -> str:
    """Render the ``stream`` section of a summary (``--stream`` rollup)."""
    stream = summary.get("stream")
    if stream is None:
        return "no stream events in this trace"
    lines = [header]
    lines.append(
        f"  committed      {stream['intervals_committed']} interval(s)"
        + (f", last offset {stream['last_offset']}"
           if stream.get("last_offset") is not None else ""))
    quarantined = stream.get("quarantined", {})
    if quarantined:
        per_reason = ", ".join(f"{reason}={count}" for reason, count
                               in quarantined.items())
        lines.append(f"  quarantined    {stream['quarantined_total']} "
                     f"event(s): {per_reason}")
    else:
        lines.append("  quarantined    none")
    lines.append(f"  backoffs       {stream['backoffs']} retry(ies)")
    if stream.get("backpressure_drops"):
        lines.append(f"  backpressure   {stream['backpressure_drops']} "
                     f"event(s) dropped from the ingest buffer")
    degradations = stream.get("degradations", [])
    if degradations:
        for entry in degradations:
            rollback = " (rolled back)" if entry.get("rollback") else ""
            lines.append(f"  degraded       interval {entry['interval']}: "
                         f"{entry['reason']}{rollback}")
    else:
        lines.append("  degraded       never")
    for entry in stream.get("recoveries", []):
        lines.append(f"  recovered      interval {entry['interval']}: "
                     f"{entry['retrained']} queued event(s) retrained")
    for entry in stream.get("resumes", []):
        lines.append(f"  resumed        from interval {entry['interval']} "
                     f"at offset {entry['offset']}")
    metrics = summary.get("metrics", {})
    for metric, label in (("stream.score_seconds", "score latency"),
                          ("stream.learn_seconds", "learn latency")):
        state = metrics.get(metric)
        if state and state.get("type") == "histogram" and state.get("count"):
            pct = _percentile_cell(state)
            if pct:
                lines.append(f"  {label:<13}  {pct} (n={state['count']})")
    return "\n".join(lines)


def diff_traces(a: PathLike, b: PathLike) -> Dict[str, Any]:
    """Compare two trace directories: spans, counters, and identity.

    Fingerprint-aware: identical fingerprints mean the two runs made
    byte-identical decisions and any difference is pure timing.  Span
    durations are compared per span kind (count / total seconds / mean
    seconds deltas), counters and gauges by value delta.
    """
    events_a, _ = read_trace(a)
    events_b, _ = read_trace(b)
    summary_a = summarize_trace(a)
    summary_b = summarize_trace(b)

    spans: Dict[str, Dict[str, Any]] = {}
    rollup_a = span_rollup(events_a)
    rollup_b = span_rollup(events_b)
    for name in sorted(set(rollup_a) | set(rollup_b)):
        entry_a = rollup_a.get(name, {"count": 0, "closed": 0,
                                      "total_s": 0.0})
        entry_b = rollup_b.get(name, {"count": 0, "closed": 0,
                                      "total_s": 0.0})
        mean_a = entry_a["total_s"] / entry_a["closed"] \
            if entry_a["closed"] else 0.0
        mean_b = entry_b["total_s"] / entry_b["closed"] \
            if entry_b["closed"] else 0.0
        spans[name] = {
            "count_a": int(entry_a["count"]),
            "count_b": int(entry_b["count"]),
            "total_s_a": entry_a["total_s"],
            "total_s_b": entry_b["total_s"],
            "total_s_delta": entry_b["total_s"] - entry_a["total_s"],
            "mean_s_delta": mean_b - mean_a,
        }

    counters: Dict[str, Dict[str, Any]] = {}
    metrics_a = summary_a.get("metrics", {})
    metrics_b = summary_b.get("metrics", {})
    for name in sorted(set(metrics_a) | set(metrics_b)):
        state_a = metrics_a.get(name, {})
        state_b = metrics_b.get(name, {})
        kind = state_b.get("type") or state_a.get("type")
        if kind == "histogram":
            value_a = state_a.get("count", 0) or 0
            value_b = state_b.get("count", 0) or 0
        else:
            value_a = state_a.get("value", 0) or 0
            value_b = state_b.get("value", 0) or 0
        if value_a == value_b:
            continue
        counters[name] = {
            "type": kind,
            "a": value_a,
            "b": value_b,
            "delta": (float(value_b) - float(value_a))
            if isinstance(value_a, (int, float))
            and isinstance(value_b, (int, float)) else None,
        }

    return {
        "a": str(_trace_path(a)),
        "b": str(_trace_path(b)),
        "fingerprint_a": summary_a["fingerprint"],
        "fingerprint_b": summary_b["fingerprint"],
        "fingerprints_match": summary_a["fingerprint"]
        == summary_b["fingerprint"],
        "events_a": summary_a["events"],
        "events_b": summary_b["events"],
        "spans": spans,
        "counters": counters,
    }


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_traces`."""
    lines = ["trace diff:",
             f"  A: {diff['a']}",
             f"  B: {diff['b']}"]
    if diff["fingerprints_match"]:
        lines.append(
            f"  fingerprints match ({diff['fingerprint_a'][:16]}…) — "
            f"identical decisions, differences below are timing only")
    else:
        lines.append(
            f"  fingerprints DIFFER: {diff['fingerprint_a'][:16]}… vs "
            f"{diff['fingerprint_b'][:16]}…")
    lines.append(f"  events: {diff['events_a']} -> {diff['events_b']}")
    spans = diff.get("spans", {})
    if spans:
        lines.append("spans (A -> B):")
        width = max(len(name) for name in spans)
        for name, entry in spans.items():
            pct = ""
            if entry["total_s_a"] > 0:
                pct = (f" ({100.0 * entry['total_s_delta'] / entry['total_s_a']:+.1f}%)")
            lines.append(
                f"  {name:<{width}}  n={entry['count_a']}->{entry['count_b']}"
                f"  total={entry['total_s_a']:.3f}s->"
                f"{entry['total_s_b']:.3f}s{pct}")
    counters = diff.get("counters", {})
    if counters:
        lines.append("metrics (changed only):")
        width = max(len(name) for name in counters)
        for name, entry in counters.items():
            delta = entry.get("delta")
            delta_cell = f" ({delta:+g})" if delta is not None else ""
            lines.append(f"  {name:<{width}}  {entry['a']} -> "
                         f"{entry['b']}{delta_cell}")
    else:
        lines.append("metrics: no value changes")
    return "\n".join(lines)
