"""Critical-path analysis and flamegraph export from trace records.

Consumes the records :func:`repro.obs.summary.read_trace` returns —
``span_start`` / ``span_end`` pairs plus the profiler's ``op_span``
samples — and produces:

* :func:`build_span_tree` — the forest of spans with durations;
* :func:`critical_path` — the heaviest root-to-leaf chain with
  inclusive/self times per segment;
* :func:`collapsed_stacks` — Brendan-Gregg collapsed-stack lines
  (``run;train_span;epoch;fwd.matmul 1234`` in integer microseconds),
  directly consumable by ``flamegraph.pl`` or speedscope;
* :func:`speedscope_profile` — an ``evented`` speedscope JSON document.

Span *self* time is duration minus child spans minus the op samples
recorded at that exact span path, so kernel-level frames subtract
cleanly instead of double counting.  Op samples are aggregated per span
path in the trace; speedscope (which needs concrete intervals) packs
them at the start of the first span with that path — an attribution-
preserving approximation, not a timeline reconstruction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "build_span_tree",
    "collapsed_stacks",
    "critical_path",
    "op_totals",
    "render_critical_path",
    "speedscope_profile",
]

Record = Dict[str, Any]
Path = Tuple[str, ...]


def build_span_tree(events: Sequence[Record]) -> List[Dict[str, Any]]:
    """Reassemble the span forest from start/end records.

    Tolerates crashes (unclosed spans get the sum of their children's
    durations) and resumed traces (span ids restart per segment; the
    latest id wins for end-matching while earlier spans stay in place).
    """
    nodes: Dict[Any, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for record in events:
        kind = record.get("kind")
        if kind == "span_start":
            node = {
                "id": record.get("id"),
                "name": str(record.get("name", "?")),
                "wall": float(record.get("wall", 0.0) or 0.0),
                "dur_s": None,
                "mem": None,
                "children": [],
            }
            parent = nodes.get(record.get("parent"))
            if parent is not None and parent["dur_s"] is None:
                parent["children"].append(node)
            else:
                roots.append(node)
            nodes[node["id"]] = node
        elif kind == "span_end":
            node = nodes.get(record.get("id"))
            if node is not None and node["dur_s"] is None:
                node["dur_s"] = float(record.get("dur_s", 0.0) or 0.0)
                if "mem" in record:
                    node["mem"] = record["mem"]

    def close(node: Dict[str, Any]) -> None:
        for child in node["children"]:
            close(child)
        if node["dur_s"] is None:
            node["dur_s"] = sum(c["dur_s"] for c in node["children"])

    for root in roots:
        close(root)
    return roots


def op_totals(events: Sequence[Record]) -> Dict[Path, Dict[str, List[float]]]:
    """``op_span`` samples keyed by span path: ``{path: {op: [n, s]}}``."""
    out: Dict[Path, Dict[str, List[float]]] = {}
    for record in events:
        if record.get("kind") != "op_span":
            continue
        path = tuple(str(p) for p in record.get("path", ()))
        per_op = out.setdefault(path, {})
        entry = per_op.setdefault(str(record.get("op", "?")), [0, 0.0])
        entry[0] += int(record.get("count", 0))
        entry[1] += float(record.get("total_s", 0.0) or 0.0)
    return out


def collapsed_stacks(events: Sequence[Record]) -> List[str]:
    """Collapsed-stack lines (``a;b;c <microseconds>``), sorted.

    Span frames carry their *self* time (children and same-path op
    samples subtracted); op frames appear as leaves under their span
    path.  Zero-microsecond frames are dropped.
    """
    self_by_path: Dict[Path, float] = {}

    def walk(node: Dict[str, Any], prefix: Path) -> None:
        path = prefix + (node["name"],)
        child_s = sum(c["dur_s"] for c in node["children"])
        self_s = max(0.0, node["dur_s"] - child_s)
        self_by_path[path] = self_by_path.get(path, 0.0) + self_s
        for child in node["children"]:
            walk(child, path)

    for root in build_span_tree(events):
        walk(root, ())

    lines: List[str] = []
    ops = op_totals(events)
    for path, per_op in ops.items():
        op_sum = 0.0
        for name, (_, total_s) in per_op.items():
            op_sum += total_s
            micros = int(round(total_s * 1e6))
            if micros > 0:
                lines.append(";".join(path + (name,)) + f" {micros}")
        if path in self_by_path:
            self_by_path[path] = max(0.0, self_by_path[path] - op_sum)
    for path, self_s in self_by_path.items():
        micros = int(round(self_s * 1e6))
        if micros > 0:
            lines.append(";".join(path) + f" {micros}")
    return sorted(lines)


def critical_path(events: Sequence[Record]) -> List[Dict[str, Any]]:
    """The heaviest root-to-leaf span chain.

    Returns one segment per level: name, cumulative path, inclusive
    duration, self time, and the fraction of the chain root's duration.
    """
    roots = build_span_tree(events)
    if not roots:
        return []
    node = max(roots, key=lambda n: n["dur_s"])
    total = node["dur_s"] or 1.0
    segments: List[Dict[str, Any]] = []
    prefix: Path = ()
    while True:
        prefix = prefix + (node["name"],)
        child_s = sum(c["dur_s"] for c in node["children"])
        segments.append({
            "name": node["name"],
            "path": prefix,
            "dur_s": node["dur_s"],
            "self_s": max(0.0, node["dur_s"] - child_s),
            "frac": (node["dur_s"] / total) if total > 0 else 0.0,
        })
        if not node["children"]:
            break
        node = max(node["children"], key=lambda n: n["dur_s"])
    return segments


def render_critical_path(segments: Sequence[Dict[str, Any]]) -> str:
    """Human-readable critical path, one indented line per level."""
    if not segments:
        return "critical path: (no spans)"
    lines = ["critical path (heaviest span chain):"]
    for depth, seg in enumerate(segments):
        lines.append(
            f"  {'  ' * depth}{seg['name']}  "
            f"{seg['dur_s']:.3f}s total, {seg['self_s']:.3f}s self "
            f"({100.0 * seg['frac']:.1f}%)")
    return "\n".join(lines)


def speedscope_profile(events: Sequence[Record],
                       name: str = "repro-trace") -> Dict[str, Any]:
    """An ``evented`` speedscope document (https://speedscope.app).

    Timestamps are seconds relative to the first span's wall clock;
    children are clamped inside their parent so the event stream stays
    properly nested even across clock skew or torn traces.
    """
    roots = build_span_tree(events)
    ops = op_totals(events)
    frames: List[Dict[str, str]] = []
    frame_idx: Dict[str, int] = {}
    evts: List[Dict[str, Any]] = []
    ops_pending = dict(ops)

    def fidx(frame_name: str) -> int:
        idx = frame_idx.get(frame_name)
        if idx is None:
            idx = frame_idx[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return idx

    t0 = min((r["wall"] for r in roots), default=0.0)

    def emit(node: Dict[str, Any], lo: float, hi: float,
             prefix: Path) -> float:
        start = max(lo, node["wall"] - t0)
        end = max(start, min(hi, start + node["dur_s"]))
        path = prefix + (node["name"],)
        evts.append({"type": "O", "frame": fidx(node["name"]), "at": start})
        cursor = start
        per_op = ops_pending.pop(path, None)
        if per_op:
            for op_name in sorted(per_op):
                op_end = min(end, cursor + per_op[op_name][1])
                idx = fidx(op_name)
                evts.append({"type": "O", "frame": idx, "at": cursor})
                evts.append({"type": "C", "frame": idx, "at": op_end})
                cursor = op_end
        for child in sorted(node["children"], key=lambda n: n["wall"]):
            cursor = emit(child, cursor, end, path)
        evts.append({"type": "C", "frame": fidx(node["name"]), "at": end})
        return end

    cursor = 0.0
    for root in sorted(roots, key=lambda n: n["wall"]):
        cursor = emit(root, cursor, float("inf"), ())
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.obs.flame",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "seconds",
            "startValue": 0.0,
            "endValue": cursor,
            "events": evts,
        }],
    }
