"""Metrics registry: counters, gauges, and histograms with labels.

The registry is deliberately tiny and dependency-free — a dict of metric
objects keyed by ``(name, sorted labels)`` — but follows the shape of
production metric systems (Prometheus-style types and label sets) so the
numbers it produces are directly exportable.

Determinism contract
--------------------
Metric *content* must be a pure function of the run's data so a trace
written with telemetry enabled is reproducible.  Wall-clock measurements
are the one exception; by convention every timing metric's name ends in
``_seconds`` (or ``_ms``), and :func:`is_timing_metric` lets the trace
fingerprint exclude exactly those (see
:func:`repro.obs.summary.trace_fingerprint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..contracts import shape_contract

__all__ = [
    "DEFAULT_BUCKETS",
    "LATENCY_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_counts",
    "is_timing_metric",
    "merge_snapshots",
    "metric_key",
    "quantile_from_snapshot",
]

#: default histogram bucket upper edges (geometric; overflow bucket is
#: implicit).  Chosen to cover loss values, norms, and row counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0, 1000.0,
)

#: bucket edges for latency histograms (seconds).  DEFAULT_BUCKETS is
#: far too coarse below a millisecond, where per-event stream scoring
#: and incremental updates actually live.
LATENCY_EDGES: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_TIMING_SUFFIXES = ("_seconds", "_ms")

LabelItems = Tuple[Tuple[str, str], ...]


def is_timing_metric(name: str) -> bool:
    """Whether a metric name denotes a wall-clock measurement.

    Timing metrics are carried in the trace like everything else but are
    excluded from the deterministic trace fingerprint.
    """
    return name.endswith(_TIMING_SUFFIXES)


def metric_key(name: str, labels: Dict[str, object]) -> Tuple[str, LabelItems]:
    """Canonical registry key: name plus sorted, stringified labels."""
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@shape_contract("(N) f, (E) f -> (B) i")
def bucket_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Histogram bucketing: per-bucket counts for ``values``.

    Bucket ``i < E`` counts values ``v`` with ``edges[i-1] < v <=
    edges[i]`` (first bucket: ``v <= edges[0]``); the final bucket
    (``B = E + 1`` total) counts the overflow ``v > edges[-1]``.
    ``edges`` must be strictly increasing.
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size == 0:
        raise ValueError("edges must be a non-empty 1-D array")
    if edges.size > 1 and not np.all(np.diff(edges) > 0):
        raise ValueError("edges must be strictly increasing")
    idx = np.searchsorted(edges, np.asarray(values, dtype=np.float64),
                          side="left")
    return np.bincount(idx, minlength=edges.size + 1).astype(np.int64)


def quantile_from_snapshot(snapshot: Dict[str, object],
                           q: float) -> Optional[float]:
    """Estimated q-quantile from a histogram snapshot (p50/p95/p99).

    Linear interpolation inside the bucket holding the target rank,
    clamped to the observed min/max so estimates never leave the data's
    range.  Returns ``None`` for empty histograms.  Raw observations are
    not retained, so this is a bucket-resolution estimate — exact when
    the quantile lands on a bucket edge, otherwise within one bucket.
    """
    count = int(snapshot.get("count") or 0)
    if count <= 0 or snapshot.get("type") not in (None, "histogram"):
        return None
    counts = list(snapshot.get("counts") or ())
    edges = list(snapshot.get("edges") or ())
    observed_min = snapshot.get("min")
    observed_max = snapshot.get("max")
    if not counts:
        return observed_max if q >= 0.5 else observed_min
    rank = min(max(float(q), 0.0), 1.0) * count
    cumulative = 0
    for i, n in enumerate(counts):
        n = int(n)
        if n == 0:
            continue
        if cumulative + n >= rank:
            lo = edges[i - 1] if i > 0 else observed_min
            hi = edges[i] if i < len(edges) else observed_max
            if lo is None:
                lo = hi if hi is not None else 0.0
            if hi is None:
                hi = lo
            if observed_min is not None:
                lo = max(float(lo), float(observed_min))
            if observed_max is not None:
                hi = min(float(hi), float(observed_max))
            if hi < lo:
                return float(lo)
            frac = (rank - cumulative) / n
            return float(lo) + frac * (float(hi) - float(lo))
        cumulative += n
    return float(observed_max) if observed_max is not None else None


def merge_snapshots(base: Dict[str, Dict],
                    extra: Dict[str, Dict]) -> Dict[str, Dict]:
    """Merge two metrics snapshots (``{rendered name: state}``).

    Resumed runs write one ``metrics`` record per trace segment; this
    folds them into run totals: counters sum, gauges keep the latest
    non-null value, histograms with identical edges merge
    counts/count/sum/min/max.  A histogram whose edges changed between
    segments cannot be merged — the later segment wins.
    """
    out: Dict[str, Dict] = {name: dict(state) for name, state in base.items()}
    for name, state in extra.items():
        previous = out.get(name)
        kind = state.get("type")
        if previous is None or previous.get("type") != kind:
            out[name] = dict(state)
            continue
        if kind == "counter":
            previous["value"] = float(previous.get("value") or 0.0) + \
                float(state.get("value") or 0.0)
        elif kind == "gauge":
            if state.get("value") is not None:
                previous["value"] = state["value"]
        elif kind == "histogram":
            if previous.get("edges") != state.get("edges"):
                out[name] = dict(state)
                continue
            previous["counts"] = [
                int(a) + int(b)
                for a, b in zip(previous.get("counts", ()),
                                state.get("counts", ()))]
            previous["count"] = int(previous.get("count") or 0) + \
                int(state.get("count") or 0)
            previous["sum"] = float(previous.get("sum") or 0.0) + \
                float(state.get("sum") or 0.0)
            for key, pick in (("min", min), ("max", max)):
                a, b = previous.get(key), state.get(key)
                previous[key] = pick(x for x in (a, b) if x is not None) \
                    if (a is not None or b is not None) else None
        else:
            out[name] = dict(state)
    return out


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelItems = ()
    value: float = 0.0

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


@dataclass
class Gauge:
    """Last-written value (sizes, levels, configuration)."""

    name: str
    labels: LabelItems = ()
    value: Optional[float] = None

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


@dataclass
class Histogram:
    """Bucketed distribution with running count/sum/min/max.

    Raw observations are *not* retained — the memory footprint is fixed
    regardless of how many values stream through.
    """

    name: str
    labels: LabelItems = ()
    edges: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    kind = "histogram"

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        idx = int(np.searchsorted(np.asarray(self.edges), value, side="left"))
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return
        per_bucket = bucket_counts(arr, np.asarray(self.edges,
                                                   dtype=np.float64))
        for i, n in enumerate(per_bucket):
            self.counts[i] += int(n)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        lo, hi = float(arr.min()), float(arr.max())
        self.min = lo if self.min is None else min(self.min, lo)
        self.max = hi if self.max is None else max(self.max, hi)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (see :func:`quantile_from_snapshot`)."""
        return quantile_from_snapshot(self.snapshot(), q)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's state in (resumed-run aggregation).

        Requires identical bucket edges — merged counts are meaningless
        otherwise.
        """
        if tuple(other.edges) != tuple(self.edges):
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}")
        for i, n in enumerate(other.counts):
            self.counts[i] += int(n)
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                              other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Create-or-get store for every metric a run produces."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        #: total metric updates routed through this registry (used by the
        #: overhead probe to count instrument firings)
        self.updates = 0

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        self.updates += 1
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        self.updates += 1
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, edges: Optional[Tuple[float, ...]] = None,
                  **labels) -> Histogram:
        self.updates += 1
        if edges is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, edges=tuple(edges))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, include_timings: bool = True) -> Dict[str, Dict]:
        """Deterministically ordered ``{rendered name: state}`` mapping.

        ``include_timings=False`` drops every metric whose name
        :func:`is_timing_metric` — the view hashed into the trace
        fingerprint.
        """
        out: Dict[str, Dict] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            if not include_timings and is_timing_metric(name):
                continue
            rendered = name
            if labels:
                rendered += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            out[rendered] = metric.snapshot()
        return out
