"""`repro.obs` — structured tracing, metrics, and decision telemetry.

Three pillars, all zero-dependency and off by default:

* :mod:`repro.obs.trace` — hierarchical span tracer with a
  crash-tolerant JSONL sink and module-level probe functions whose
  disabled cost is one attribute load and a ``None`` check;
* :mod:`repro.obs.metrics` — Prometheus-style counters / gauges /
  histograms with labels, snapshotted into the trace on close;
* :mod:`repro.obs.log` — ``logging``-backed diagnostics that replace
  bare prints and mirror into the active trace.

:mod:`repro.obs.summary` reads traces back: tolerant parsing,
deterministic fingerprinting, and the aggregation behind
``repro trace summarize``.
"""

from .log import ROOT_LOGGER, TraceLogHandler, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_counts,
    is_timing_metric,
)
from .summary import (
    read_trace,
    render_stream_summary,
    render_summary,
    stream_rollup,
    summarize_trace,
    trace_fingerprint,
)
from .trace import (
    META_NAME,
    METRICS_NAME,
    TIMING_KEYS,
    TRACE_NAME,
    TraceError,
    Tracer,
    counter,
    current_tracer,
    enabled,
    event,
    gauge,
    observe,
    observe_many,
    span,
    start_tracing,
    stop_tracing,
    sync,
    tracing,
)

__all__ = [
    # logging
    "ROOT_LOGGER",
    "get_logger",
    "configure_logging",
    "TraceLogHandler",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_counts",
    "is_timing_metric",
    # tracing
    "TRACE_NAME",
    "META_NAME",
    "METRICS_NAME",
    "TIMING_KEYS",
    "TraceError",
    "Tracer",
    "current_tracer",
    "enabled",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "span",
    "event",
    "counter",
    "gauge",
    "observe",
    "observe_many",
    "sync",
    # reading traces back
    "read_trace",
    "trace_fingerprint",
    "summarize_trace",
    "render_summary",
    "render_stream_summary",
    "stream_rollup",
]
