"""`repro.obs` — structured tracing, metrics, and decision telemetry.

Three pillars, all zero-dependency and off by default:

* :mod:`repro.obs.trace` — hierarchical span tracer with a
  crash-tolerant JSONL sink and module-level probe functions whose
  disabled cost is one attribute load and a ``None`` check;
* :mod:`repro.obs.metrics` — Prometheus-style counters / gauges /
  histograms with labels, snapshotted into the trace on close;
* :mod:`repro.obs.log` — ``logging``-backed diagnostics that replace
  bare prints and mirror into the active trace.

:mod:`repro.obs.summary` reads traces back: tolerant parsing,
deterministic fingerprinting, and the aggregation behind
``repro trace summarize``.

:mod:`repro.obs.prof` adds the op-level layer: kernel/backend-op timing,
FLOP and byte estimates, and memory accounting, folded into the trace;
:mod:`repro.obs.flame` turns the span tree plus op samples into
critical paths and flamegraphs (``repro trace flame``).
"""

from .log import ROOT_LOGGER, TraceLogHandler, configure_logging, get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_counts,
    is_timing_metric,
)
from .summary import (
    diff_traces,
    prof_rollup,
    read_trace,
    render_diff,
    render_prof_summary,
    render_stream_summary,
    render_summary,
    stream_rollup,
    summarize_trace,
    trace_fingerprint,
)
from .flame import (
    build_span_tree,
    collapsed_stacks,
    critical_path,
    render_critical_path,
    speedscope_profile,
)
from .prof import (
    MemTracker,
    OpProfiler,
    current_profiler,
    op,
    phase,
    profiling,
    read_rss_kb,
    shape_bucket,
    start_profiling,
    stop_profiling,
)
from .trace import (
    META_NAME,
    METRICS_NAME,
    TIMING_KEYS,
    TRACE_NAME,
    TraceError,
    Tracer,
    counter,
    current_tracer,
    enabled,
    event,
    gauge,
    observe,
    observe_many,
    span,
    start_tracing,
    stop_tracing,
    sync,
    tracing,
)

__all__ = [
    # logging
    "ROOT_LOGGER",
    "get_logger",
    "configure_logging",
    "TraceLogHandler",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_counts",
    "is_timing_metric",
    # tracing
    "TRACE_NAME",
    "META_NAME",
    "METRICS_NAME",
    "TIMING_KEYS",
    "TraceError",
    "Tracer",
    "current_tracer",
    "enabled",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "span",
    "event",
    "counter",
    "gauge",
    "observe",
    "observe_many",
    "sync",
    # reading traces back
    "read_trace",
    "trace_fingerprint",
    "summarize_trace",
    "render_summary",
    "render_prof_summary",
    "render_stream_summary",
    "stream_rollup",
    "prof_rollup",
    "diff_traces",
    "render_diff",
    # op-level profiling
    "MemTracker",
    "OpProfiler",
    "current_profiler",
    "op",
    "phase",
    "profiling",
    "read_rss_kb",
    "shape_bucket",
    "start_profiling",
    "stop_profiling",
    # flamegraphs / critical path
    "build_span_tree",
    "collapsed_stacks",
    "critical_path",
    "render_critical_path",
    "speedscope_profile",
]
