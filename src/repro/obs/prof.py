"""Op-level profiler: kernel timing, FLOP/byte estimates, memory accounting.

The tracer (:mod:`repro.obs.trace`) answers *how long did this span
take*; this module answers *where inside the span the time and memory
went*.  Three hook families feed one :class:`OpProfiler`:

* **backend ops** — :class:`repro.backend.instrument.InstrumentedBackend`
  wraps any registered backend and times ``gemm`` / ``einsum`` /
  ``gather`` / ``scatter_add`` / ``softmax``, recording call counts,
  estimated FLOPs, and bytes moved, aggregated by
  ``(phase, op, shape bucket)``;
* **autograd nodes** — :class:`repro.autograd.Tensor` calls
  :data:`_AUTOGRAD` hooks on every graph-node creation (forward) and
  every backward function, so fused kernels (one node, one backward fn)
  are directly comparable to the unfused op-by-op graphs they replace.
  Forward attribution uses the *sandwich* model: all wall time between
  consecutive node creations belongs to the op that produced the later
  node, so python glue is attributed rather than lost;
* **memory** — :class:`MemTracker` follows live tensor bytes via
  ``weakref.finalize``, keeps a per-span peak watermark, and samples the
  :class:`repro.backend.pool.BufferPool` occupancy (plus optional RSS)
  at optimizer-step boundaries.

Everything is **off by default**.  Each hook site costs one module
attribute load plus a ``None`` check while disabled — the same budget
as the trace probes and the sanitizer, enforced by
``benchmarks/obs_probe.py``.  Hooks only read clocks and counters; they
never touch the numbers, so a profiled run is bit-identical to an
unprofiled one.

When a tracer is active, :func:`stop_profiling` folds the aggregates
into the trace as ``op_stats`` / ``kernel_stats`` / ``op_span`` /
``phase_stats`` / ``mem_sample`` / ``pool_sample`` / ``mem_summary``
records; `repro trace flame` and ``summarize_trace`` consume them.
"""

from __future__ import annotations

import contextlib
import time
import weakref
from typing import Any, Dict, Iterator, List, Optional, Tuple

from . import trace as _trace

__all__ = [
    "MemTracker",
    "OpProfiler",
    "current_profiler",
    "enabled",
    "op",
    "phase",
    "profiling",
    "read_rss_kb",
    "shape_bucket",
    "start_profiling",
    "stop_profiling",
]

_perf = time.perf_counter

#: the active profiler, or None — every hook site checks exactly this
_PROFILER: Optional["OpProfiler"] = None
#: autograd hook bundle, non-None only while profiling with autograd=True
_AUTOGRAD: Optional["_AutogradHooks"] = None
#: memory tracker, non-None only while profiling with memory=True
_MEM: Optional["MemTracker"] = None

#: cap on timeline samples kept in memory; beyond it the sampling stride
#: doubles and existing samples are thinned, bounding the footprint
_TIMELINE_CAP = 2048


def shape_bucket(*dims: int) -> str:
    """Round each dim up to a power of two: ``"64x128x16"``.

    Bucketing keeps the per-op table small while still separating the
    regimes that matter (tiny per-user GEMMs vs large batched ones).
    """
    return "x".join(str(_pow2(d)) for d in dims)


def _pow2(n: int) -> int:
    n = int(n)
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def read_rss_kb() -> Optional[int]:
    """Resident set size in kB from ``/proc/self/status`` (None if absent)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


class MemTracker:
    """Live/peak tensor-byte accounting via ``weakref.finalize``.

    Bytes are *estimates*: a tensor's ``data.nbytes`` is charged at
    construction and released when the tensor is garbage collected, so
    views over shared buffers are double-counted and frees follow GC
    timing.  The per-span watermark stack gives peak-within-span at
    O(1) per allocation (only the innermost entry is updated; peaks
    propagate outward when spans pop).
    """

    __slots__ = ("live", "peak", "tracked", "_stack")

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0
        self.tracked = 0
        self._stack: List[int] = []

    def track(self, tensor: Any) -> None:
        nbytes = int(tensor.data.nbytes)
        self.tracked += 1
        live = self.live + nbytes
        self.live = live
        if live > self.peak:
            self.peak = live
        stack = self._stack
        if stack and live > stack[-1]:
            stack[-1] = live
        weakref.finalize(tensor, self._free, nbytes)

    def _free(self, nbytes: int) -> None:
        self.live -= nbytes

    def push_span(self) -> None:
        self._stack.append(self.live)

    def pop_span(self) -> int:
        """Close the innermost span; returns its peak live bytes."""
        peak = self._stack.pop()
        stack = self._stack
        if stack and peak > stack[-1]:
            stack[-1] = peak
        return peak


class _AutogradHooks:
    """Per-node forward/backward timing, installed while profiling.

    ``mark`` is the timestamp of the previous attribution point; the
    sandwich model charges ``now - mark`` to the op that created the
    current node.  Phase and explicit-op boundaries reset ``mark`` so
    unrelated time (optimizer math, evaluation) is not charged to the
    next forward op.
    """

    __slots__ = ("prof", "mark", "acc", "_bwd_names")

    def __init__(self, prof: "OpProfiler") -> None:
        self.prof = prof
        self.mark = _perf()
        #: backward-fn seconds accumulated inside the current backward()
        self.acc = 0.0
        self._bwd_names: Dict[str, str] = {}

    def on_node(self, code: Any) -> None:
        """Called by ``Tensor._make`` with the caller's code object."""
        now = _perf()
        self.prof._record_kernel("fwd." + code.co_name, now - self.mark)
        self.mark = now

    def on_backward(self, fn: Any, dur: float) -> None:
        """Called with each backward fn and its measured duration."""
        qualname = fn.__qualname__
        label = self._bwd_names.get(qualname)
        if label is None:
            # "Tensor.__add__.<locals>.<lambda>" -> "bwd.__add__";
            # "_dr_kernel.<locals>.grad_e_hat" -> "bwd._dr_kernel"
            label = "bwd." + qualname.split(".<locals>")[0].rsplit(".", 1)[-1]
            self._bwd_names[qualname] = label
        self.prof._record_kernel(label, dur)
        self.acc += dur
        self.mark = _perf()


class _PhaseCtx:
    """Scoped phase marker; accumulates exclusive wall time per phase."""

    __slots__ = ("_prof", "name", "_prev", "_t0", "_child")

    def __init__(self, prof: "OpProfiler", name: str):
        self._prof = prof
        self.name = name
        self._child = 0.0

    def __enter__(self) -> "_PhaseCtx":
        prof = self._prof
        self._prev = prof._phase
        prof._phase = self.name
        prof._phase_stack.append(self)
        hooks = _AUTOGRAD
        if hooks is not None:
            hooks.mark = _perf()
        self._t0 = _perf()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = _perf() - self._t0
        prof = self._prof
        if prof._phase_stack and prof._phase_stack[-1] is self:
            prof._phase_stack.pop()
        prof._phase = self._prev
        wall = prof.phase_wall
        wall[self.name] = wall.get(self.name, 0.0) + (dur - self._child)
        if prof._phase_stack:
            prof._phase_stack[-1]._child += dur
        hooks = _AUTOGRAD
        if hooks is not None:
            hooks.mark = _perf()
        return False


class _OpCtx:
    """Scoped explicit kernel timing (``with prof.op("optim.step"):``)."""

    __slots__ = ("_prof", "name", "_t0")

    def __init__(self, prof: "OpProfiler", name: str):
        self._prof = prof
        self.name = name

    def __enter__(self) -> "_OpCtx":
        self._t0 = _perf()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        now = _perf()
        self._prof._record_kernel(self.name, now - self._t0)
        hooks = _AUTOGRAD
        if hooks is not None:
            # the op's time is attributed here; don't charge it again to
            # the next forward node via the sandwich
            hooks.mark = now
        return False


class _NullCtx:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CTX = _NullCtx()


class OpProfiler:
    """Aggregates kernel/backend-op samples, phase walls, and memory.

    Tables
    ------
    ``kernels``
        ``(phase, op) -> [count, total_s]`` for *named kernels*: sandwich
        forward ops (``fwd.*``), backward fns (``bwd.*``), and explicit
        :func:`op` scopes (``optim.step``, ``eval.score``, …).  Kernels
        never overlap each other, so their sum is the attributed wall
        time used for the attribution fraction.
    ``backend_ops``
        ``(phase, op, bucket) -> [count, total_s, flops, bytes]`` for the
        five instrumented backend ops.  These run *inside* kernels (a
        ``fwd.matmul`` sandwich contains its ``gemm``), so they are a
        drill-down, not part of the attribution sum.
    ``span_ops``
        ``(span path, op) -> [count, total_s]`` — kernel samples keyed by
        the open span stack, feeding flamegraph leaf frames.
    """

    def __init__(self, autograd: bool = True, memory: bool = True,
                 rss: bool = False):
        self.kernels: Dict[Tuple[str, str], List[float]] = {}
        self.backend_ops: Dict[Tuple[str, str, str], List[float]] = {}
        self.span_ops: Dict[Tuple[Tuple[str, ...], str], List[float]] = {}
        self.phase_wall: Dict[str, float] = {}
        self.pool_timeline: List[Dict[str, Any]] = []
        self.mem_timeline: List[Dict[str, Any]] = []
        self.steps = 0
        self.autograd = bool(autograd)
        self.memory = bool(memory)
        self.rss = bool(rss)
        self.mem: Optional[MemTracker] = MemTracker() if memory else None
        self._phase = ""
        self._phase_stack: List[_PhaseCtx] = []
        self._stride = 1
        self._restore_backend = None
        self._start = _perf()
        self.elapsed_s = 0.0

    # ------------------------------------------------------------------ #
    # recording (hot while profiling, never called while disabled)
    # ------------------------------------------------------------------ #
    def _record_kernel(self, name: str, dur: float) -> None:
        key = (self._phase, name)
        entry = self.kernels.get(key)
        if entry is None:
            self.kernels[key] = [1, dur]
        else:
            entry[0] += 1
            entry[1] += dur
        tracer = _trace._TRACER
        if tracer is not None:
            skey = (tracer.span_path(), name)
            sentry = self.span_ops.get(skey)
            if sentry is None:
                self.span_ops[skey] = [1, dur]
            else:
                sentry[0] += 1
                sentry[1] += dur

    def record_backend_op(self, name: str, dur: float, bucket: str,
                          flops: float, nbytes: int) -> None:
        key = (self._phase, name, bucket)
        entry = self.backend_ops.get(key)
        if entry is None:
            self.backend_ops[key] = [1, dur, flops, nbytes]
        else:
            entry[0] += 1
            entry[1] += dur
            entry[2] += flops
            entry[3] += nbytes

    def on_step(self, backend: Any) -> None:
        """Step-boundary sampling hook (pool occupancy, memory, RSS)."""
        self.steps += 1
        if self.steps % self._stride:
            return
        pool_stats = backend.pool_stats() if backend is not None else None
        if pool_stats is not None:
            self.pool_timeline.append({"step": self.steps, **pool_stats})
        mem = self.mem
        if mem is not None:
            sample: Dict[str, Any] = {
                "step": self.steps, "live_bytes": mem.live,
                "peak_bytes": mem.peak,
            }
            if self.rss:
                rss = read_rss_kb()
                if rss is not None:
                    sample["rss_kb"] = rss
            self.mem_timeline.append(sample)
        if len(self.mem_timeline) > _TIMELINE_CAP or \
                len(self.pool_timeline) > _TIMELINE_CAP:
            self._stride *= 2
            self.mem_timeline = self.mem_timeline[::2]
            self.pool_timeline = self.pool_timeline[::2]

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def finish(self) -> None:
        self.elapsed_s = _perf() - self._start

    def attribution(self) -> Dict[str, Dict[str, float]]:
        """Per-phase attributed fraction: kernel seconds / phase wall.

        Phase wall is *exclusive* (nested phases subtract out), and
        kernels are recorded under the innermost phase, so fractions are
        consistent and an ``overall`` row aggregates every named phase.
        """
        kernel_s: Dict[str, float] = {}
        for (phase_name, _), (_, total) in self.kernels.items():
            kernel_s[phase_name] = kernel_s.get(phase_name, 0.0) + total
        out: Dict[str, Dict[str, float]] = {}
        total_wall = 0.0
        total_kernel = 0.0
        for phase_name, wall in sorted(self.phase_wall.items()):
            attributed = kernel_s.get(phase_name, 0.0)
            out[phase_name] = {
                "wall_s": wall,
                "kernel_s": attributed,
                "frac": attributed / wall if wall > 0 else 0.0,
            }
            total_wall += wall
            total_kernel += attributed
        if total_wall > 0:
            out["overall"] = {
                "wall_s": total_wall,
                "kernel_s": total_kernel,
                "frac": total_kernel / total_wall,
            }
        return out

    def report(self, top: int = 0) -> Dict[str, Any]:
        """Plain-dict summary (op tables sorted by total seconds)."""
        kernels = sorted(
            ({"phase": ph, "op": name, "count": int(c), "total_s": t}
             for (ph, name), (c, t) in self.kernels.items()),
            key=lambda row: -row["total_s"])
        backend_ops = sorted(
            ({"phase": ph, "op": name, "bucket": bucket, "count": int(c),
              "total_s": t, "flops": f, "bytes": int(b),
              "gflops_per_s": (f / t / 1e9) if t > 0 else 0.0}
             for (ph, name, bucket), (c, t, f, b)
             in self.backend_ops.items()),
            key=lambda row: -row["total_s"])
        if top:
            kernels = kernels[:top]
            backend_ops = backend_ops[:top]
        memory: Dict[str, Any] = {}
        if self.mem is not None:
            memory = {
                "live_bytes": self.mem.live,
                "peak_bytes": self.mem.peak,
                "tensors_tracked": self.mem.tracked,
                "samples": len(self.mem_timeline),
            }
            if self.rss:
                memory["rss_kb"] = read_rss_kb()
        return {
            "elapsed_s": self.elapsed_s,
            "steps": self.steps,
            "attribution": self.attribution(),
            "kernels": kernels,
            "backend_ops": backend_ops,
            "memory": memory,
            "pool": self.pool_timeline[-1] if self.pool_timeline else None,
        }

    # ------------------------------------------------------------------ #
    # trace folding
    # ------------------------------------------------------------------ #
    def emit_to_trace(self, tracer: "_trace.Tracer") -> None:
        """Fold the aggregates into the trace JSONL.

        Counts, FLOPs, bytes, and op/phase names are pure functions of
        the run's data and stay in the fingerprint; every wall-clock
        field uses reserved timing keys, and memory/pool samples are
        reduced to their ``kind`` (GC timing is not determinism we can
        promise).
        """
        for (ph, name, bucket), (c, t, f, b) in sorted(
                self.backend_ops.items()):
            tracer.emit({
                "kind": "op_stats", "phase": ph, "op": name,
                "bucket": bucket, "count": int(c), "flops": f,
                "bytes": int(b), "total_s": t,
            })
        for (ph, name), (c, t) in sorted(self.kernels.items()):
            tracer.emit({
                "kind": "kernel_stats", "phase": ph, "op": name,
                "count": int(c), "total_s": t,
            })
        for (path, name), (c, t) in sorted(self.span_ops.items()):
            tracer.emit({
                "kind": "op_span", "path": list(path), "op": name,
                "count": int(c), "total_s": t,
            })
        for ph, wall in sorted(self.phase_wall.items()):
            tracer.emit({"kind": "phase_stats", "phase": ph,
                         "wall_s": wall})
        for sample in self.mem_timeline:
            tracer.emit({"kind": "mem_sample", **sample})
        for sample in self.pool_timeline:
            tracer.emit({"kind": "pool_sample", **sample})
        if self.mem is not None:
            summary: Dict[str, Any] = {
                "kind": "mem_summary", "live_bytes": self.mem.live,
                "peak_bytes": self.mem.peak,
                "tensors_tracked": self.mem.tracked,
            }
            if self.rss:
                rss = read_rss_kb()
                if rss is not None:
                    summary["rss_kb"] = rss
            tracer.emit(summary)


# ---------------------------------------------------------------------- #
# module-level probe API (mirrors repro.obs.trace)
# ---------------------------------------------------------------------- #
def current_profiler() -> Optional[OpProfiler]:
    """The active profiler, or None when profiling is off."""
    return _PROFILER


def enabled() -> bool:
    """Whether a profiler is currently active."""
    return _PROFILER is not None


def op(name: str):
    """Time a named kernel scope; shared no-op context when off."""
    prof = _PROFILER
    if prof is None:
        return _NULL_CTX
    return _OpCtx(prof, name)


def phase(name: str):
    """Mark a profiling phase (pretrain/train/extract/eval/score/learn);
    shared no-op context when off."""
    prof = _PROFILER
    if prof is None:
        return _NULL_CTX
    return _PhaseCtx(prof, name)


def start_profiling(autograd: bool = True, memory: bool = True,
                    rss: bool = False,
                    instrument_backend: bool = True) -> OpProfiler:
    """Activate op-level profiling (one active profiler at a time).

    ``instrument_backend=True`` swaps the active backend for an
    :class:`~repro.backend.instrument.InstrumentedBackend` wrapper and
    restores the original at :func:`stop_profiling`.
    """
    global _PROFILER, _AUTOGRAD, _MEM
    if _PROFILER is not None:
        raise RuntimeError("profiling is already active; stop it first")
    prof = OpProfiler(autograd=autograd, memory=memory, rss=rss)
    if instrument_backend:
        # deferred: repro.backend imports repro.obs at package init
        from .. import backend as _backend
        from ..backend.instrument import InstrumentedBackend

        if not isinstance(_backend.active, InstrumentedBackend):
            prof._restore_backend = _backend.set_backend(
                InstrumentedBackend(_backend.active))
    _PROFILER = prof
    if autograd:
        _AUTOGRAD = _AutogradHooks(prof)
    if memory:
        _MEM = prof.mem
    return prof


def stop_profiling(emit: bool = True) -> Optional[OpProfiler]:
    """Deactivate profiling; fold results into the active trace.

    Returns the (finished) profiler, or None if profiling was off.
    """
    global _PROFILER, _AUTOGRAD, _MEM
    prof = _PROFILER
    _PROFILER = None
    _AUTOGRAD = None
    _MEM = None
    if prof is None:
        return None
    if prof._restore_backend is not None:
        from .. import backend as _backend

        _backend.set_backend(prof._restore_backend)
        prof._restore_backend = None
    prof.finish()
    if emit:
        tracer = _trace._TRACER
        if tracer is not None:
            prof.emit_to_trace(tracer)
    return prof


@contextlib.contextmanager
def profiling(autograd: bool = True, memory: bool = True, rss: bool = False,
              instrument_backend: bool = True) -> Iterator[OpProfiler]:
    """``with profiling() as prof:`` — scoped activation."""
    prof = start_profiling(autograd=autograd, memory=memory, rss=rss,
                           instrument_backend=instrument_backend)
    try:
        yield prof
    finally:
        stop_profiling()
