"""Hierarchical span tracer with a crash-tolerant JSONL sink.

One :class:`Tracer` serves a whole run: spans nest (run → train_span →
phase → epoch / user-batch), decision events attach to the innermost
open span, and a :class:`repro.obs.metrics.MetricsRegistry` accumulates
counters/gauges/histograms that are flushed as the final trace record.

Design constraints (see ``docs/OBSERVABILITY.md``):

* **off by default, near-free when off** — the module-level probe
  functions (:func:`span`, :func:`event`, :func:`counter`, …) are the
  only thing production code calls; with no active tracer each is one
  attribute load and a ``None`` check;
* **deterministic payloads** — span ids are sequential, field content is
  derived from run data only, and every wall-clock quantity lives in the
  reserved keys ``wall`` / ``dur_s`` which the trace fingerprint strips
  (:func:`repro.obs.summary.trace_fingerprint`);
* **crash/resume safety** — events are appended line-by-line and flushed,
  so a kill can tear at most the final line; reopening with
  ``resume=True`` truncates any torn tail before appending, and the
  sidecar files (``trace-meta.json``, ``metrics.json``) are committed
  through :func:`repro.persistence.atomic_write_bytes`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from .log import attach_trace_handler, detach_trace_handler
from .metrics import MetricsRegistry, is_timing_metric

PathLike = Union[str, Path]

TRACE_NAME = "trace.jsonl"
META_NAME = "trace-meta.json"
METRICS_NAME = "metrics.json"

#: record keys carrying wall-clock (or GC-dependent) measurements;
#: excluded from the deterministic trace fingerprint.  ``total_s`` /
#: ``wall_s`` come from profiler op records, ``mem`` is the per-span
#: memory enrichment added when profiling with memory accounting.
TIMING_KEYS = ("wall", "dur_s", "total_s", "wall_s", "mem")

#: profiler record kinds whose *content* is allowed to vary between
#: identical runs (live bytes and RSS follow GC timing); the fingerprint
#: keeps only their ``kind`` so record order/count stays checked
_NONDETERMINISTIC_KINDS = frozenset(
    {"mem_sample", "pool_sample", "mem_summary"})

_TRACE_VERSION = 1

__all__ = [
    "TRACE_NAME", "META_NAME", "METRICS_NAME", "TIMING_KEYS",
    "TraceError", "Tracer",
    "current_tracer", "enabled", "start_tracing", "stop_tracing", "tracing",
    "span", "event", "counter", "gauge", "observe", "observe_many", "sync",
]


class TraceError(ValueError):
    """The trace sink cannot be opened, written, or parsed."""


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and containers) to plain JSON types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def strip_timing(record: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``record`` with the reserved timing keys removed."""
    return {k: v for k, v in record.items() if k not in TIMING_KEYS}


def fingerprint_view(record: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of a record that gets fingerprinted.

    Reserved timing keys are stripped, and inside a ``metrics`` record
    every timing metric (``*_seconds`` / ``*_ms``) is dropped — timing
    content is the one thing allowed to differ between identical runs.
    """
    kind = record.get("kind")
    if kind in _NONDETERMINISTIC_KINDS:
        return {"kind": kind}
    record = strip_timing(record)
    if record.get("kind") == "metrics":
        record = dict(record)
        record["metrics"] = {
            name: state
            for name, state in record.get("metrics", {}).items()
            if not is_timing_metric(name.split("{", 1)[0])
        }
    return record


class _Span:
    """Context manager emitted by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "fields", "id", "_start", "_mem")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.fields = fields
        self.id: Optional[int] = None
        self._start = 0.0
        self._mem = None

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.id = tracer._next_id()
        record = {
            "kind": "span_start",
            "id": self.id,
            "parent": tracer._stack[-1] if tracer._stack else None,
            "name": self.name,
            "wall": time.time(),
        }
        if self.fields:
            record["fields"] = self.fields
        tracer._stack.append(self.id)
        tracer._names.append(self.name)
        tracer._path_cache = None
        mem = _mem_tracker()
        if mem is not None:
            mem.push_span()
            self._mem = mem
        tracer._emit(record)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.id:
            tracer._stack.pop()
            tracer._names.pop()
            tracer._path_cache = None
        record = {
            "kind": "span_end",
            "id": self.id,
            "name": self.name,
            "dur_s": duration,
        }
        mem = self._mem
        if mem is not None:
            # pop pairs with our push even if profiling stopped mid-span
            record["mem"] = {"peak_bytes": mem.pop_span(),
                             "live_bytes": mem.live}
            self._mem = None
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tracer._emit(record)
        return False


class _NullSpan:
    """Shared no-op span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def _mem_tracker():
    """The active :class:`repro.obs.prof.MemTracker`, if profiling with
    memory accounting (looked up lazily — prof imports this module)."""
    prof = sys.modules.get("repro.obs.prof")
    return None if prof is None else prof._MEM


class Tracer:
    """Owns one trace directory: the JSONL sink, span stack, and metrics.

    ``resume=True`` appends to an existing ``trace.jsonl`` after
    truncating any torn final line (the only damage a crash can inflict
    on an append-only line sink); otherwise an existing trace file is
    replaced.
    """

    def __init__(self, directory: PathLike, run_id: str = "run",
                 resume: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / TRACE_NAME
        self.run_id = run_id
        self.metrics = MetricsRegistry()
        self.events_written = 0
        self._id = 0
        self._stack: List[int] = []
        self._names: List[str] = []
        self._path_cache: Optional[tuple] = None
        self._hasher = hashlib.sha256()
        self._closed = False
        if self.path.exists():
            if resume:
                self._recover_tail()
            else:
                self.path.unlink()
        self._fh = open(self.path, "ab")
        self._emit({
            "kind": "trace_open",
            "version": _TRACE_VERSION,
            "run_id": run_id,
            "resumed": bool(resume),
            "wall": time.time(),
        })

    # ------------------------------------------------------------------ #
    # sink
    # ------------------------------------------------------------------ #
    def _recover_tail(self) -> None:
        """Truncate a torn (newline-less) final line left by a crash."""
        data = self.path.read_bytes()
        cut = data.rfind(b"\n") + 1
        if cut != len(data):
            with open(self.path, "r+b") as fh:
                fh.truncate(cut)

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise TraceError("tracer is closed")
        record = _jsonable(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()
        self._hasher.update(
            json.dumps(fingerprint_view(record),
                       sort_keys=True).encode("utf-8"))
        self._hasher.update(b"\n")
        self.events_written += 1

    def sync(self) -> None:
        """fsync the sink — called at span boundaries by the runner so
        the trace is durable alongside the checkpoint journal."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def fingerprint(self) -> str:
        """SHA-256 over every emitted record with timing keys stripped.

        Identical run → identical fingerprint, regardless of how fast
        the hardware ran it.
        """
        return self._hasher.hexdigest()

    # ------------------------------------------------------------------ #
    # recording API
    # ------------------------------------------------------------------ #
    def span(self, name: str, **fields: Any) -> _Span:
        """Open a nested span; use as a context manager."""
        return _Span(self, name, fields)

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def span_path(self) -> tuple:
        """Names of the open spans, outermost first (cached tuple)."""
        path = self._path_cache
        if path is None:
            path = self._path_cache = tuple(self._names)
        return path

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one pre-built record (profiler aggregates use this).

        ``record`` must carry a ``kind``; wall-clock content must live in
        the reserved :data:`TIMING_KEYS` so the fingerprint stays
        deterministic.
        """
        if "kind" not in record:
            raise TraceError("trace records require a 'kind'")
        self._emit(record)

    def event(self, name: str, **fields: Any) -> None:
        """Emit one decision event attached to the innermost open span."""
        record: Dict[str, Any] = {"kind": "event", "name": name}
        parent = self.current_span_id()
        if parent is not None:
            record["span"] = parent
        if fields:
            record["fields"] = fields
        self._emit(record)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush metrics, write the sidecars atomically, close the sink."""
        if self._closed:
            return
        snapshot = self.metrics.snapshot()
        if snapshot:
            self._emit({"kind": "metrics", "metrics": snapshot})
        fingerprint = self.fingerprint()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._closed = True
        # deferred import: persistence pulls in the strategy layer, which
        # (transitively) imports this module
        from ..persistence import atomic_write_bytes

        meta = {
            "version": _TRACE_VERSION,
            "run_id": self.run_id,
            "events": self.events_written,
            "metric_updates": self.metrics.updates,
            "fingerprint": fingerprint,
            "trace_bytes": self.path.stat().st_size,
        }
        atomic_write_bytes(
            json.dumps(meta, indent=2, sort_keys=True).encode("utf-8"),
            self.directory / META_NAME, kind="trace-meta")
        atomic_write_bytes(
            json.dumps(snapshot, indent=2, sort_keys=True).encode("utf-8"),
            self.directory / METRICS_NAME, kind="trace-metrics")


# ---------------------------------------------------------------------- #
# module-level probe API (the only thing production code calls)
# ---------------------------------------------------------------------- #
_TRACER: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None when telemetry is off."""
    return _TRACER


def enabled() -> bool:
    """Whether a tracer is currently active."""
    return _TRACER is not None


def start_tracing(directory: PathLike, run_id: str = "run",
                  resume: bool = False) -> Tracer:
    """Activate tracing into ``directory`` (one active tracer at a time)."""
    global _TRACER
    if _TRACER is not None:
        raise TraceError(
            f"tracing is already active (directory {_TRACER.directory}); "
            f"stop it before starting another trace")
    _TRACER = Tracer(directory, run_id=run_id, resume=resume)
    attach_trace_handler()
    return _TRACER


def stop_tracing() -> Optional[Tracer]:
    """Close and deactivate the current tracer (no-op when off)."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    detach_trace_handler()
    if tracer is not None:
        tracer.close()
    return tracer


@contextlib.contextmanager
def tracing(directory: PathLike, run_id: str = "run",
            resume: bool = False) -> Iterator[Tracer]:
    """``with tracing(dir):`` — scoped activation for tests and scripts."""
    tracer = start_tracing(directory, run_id=run_id, resume=resume)
    try:
        yield tracer
    finally:
        stop_tracing()


def span(name: str, **fields: Any):
    """Open a span on the active tracer; shared no-op context when off."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **fields)


def event(name: str, **fields: Any) -> None:
    """Emit a decision event (dropped when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **fields)


def sync() -> None:
    """fsync the active trace sink (no-op when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.sync()


def counter(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a counter metric (dropped when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.counter(name, **labels).inc(amount)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge metric (dropped when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, edges=None, **labels: Any) -> None:
    """Record one histogram observation (dropped when tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.histogram(name, edges=edges, **labels).observe(value)


def observe_many(name: str, values, edges=None, **labels: Any) -> None:
    """Record a batch of histogram observations (dropped when off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.histogram(name, edges=edges,
                                 **labels).observe_many(values)
