"""Base multi-interest sequential recommendation (MSR) model machinery.

An MSR model maps a user's item sequence to ``K`` interest vectors
(paper Eq. 1).  In the incremental setting each user carries persistent
state across time spans: the stored interest matrix (and for the
self-attention model, per-user attention weights).  :class:`UserState`
holds that state; :class:`MSRModel` defines the shared API that the
incremental strategies (:mod:`repro.incremental`) operate against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import backend as _backend
from ..autograd import Tensor, no_grad
from ..nn import Embedding, Module, Parameter
from ..sanitize import capture as _capture
from .aggregator import score_items
from .sampled_softmax import batch_sampled_softmax_loss, sampled_softmax_loss


@dataclass
class UserState:
    """Per-user persistent state carried across time spans.

    Attributes
    ----------
    interests:
        (K, d) current stored interest vectors (detached snapshot; the
        routing warm start and the retrieval index).
    prev_interests:
        (K_prev, d) snapshot at the end of the previous span — the EIR
        "teacher", the NID reference, and the PIT projection basis.
    created_span:
        (K,) span index at which each interest vector was created
        (0 = pretraining); feeds the Fig. 7 case studies.
    n_existing:
        Number of interests that already existed when the current span
        began (``K_u^{t-1}`` in the paper).  Rows ``[0, n_existing)`` of
        ``interests`` are "existing", the rest were created this span.
    sa_weights:
        For the self-attention model only: the user's (d_a, K) attention
        weight matrix ``W_u`` (a trainable Parameter).
    expanded_this_span:
        Guard so NID triggers interest creation at most once per span.
    """

    user: int
    interests: np.ndarray
    prev_interests: np.ndarray
    created_span: np.ndarray
    n_existing: int
    sa_weights: Optional[Parameter] = None
    expanded_this_span: bool = False

    @property
    def num_interests(self) -> int:
        return self.interests.shape[0]

    def begin_span(self) -> None:
        """Mark a span boundary: current interests become the teacher."""
        self.prev_interests = _capture(self.interests.copy())
        self.n_existing = self.interests.shape[0]
        self.expanded_this_span = False


class MSRModel(Module):
    """Common base: embedding table + per-user interest extraction.

    Subclasses implement :meth:`compute_interests` (Eq. 4 for DR models,
    Eq. 9 for SA) and may override user-state hooks for model-specific
    per-user parameters.
    """

    #: subclass marker: "dr" (dynamic routing) or "sa" (self-attention)
    family = "dr"

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 seed: int = 0):
        super().__init__()
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_items = num_items
        self.dim = dim
        self.K0 = num_interests
        self.rng = np.random.default_rng(seed)
        self.item_emb = Embedding(num_items, dim, self.rng)

    # ------------------------------------------------------------------ #
    # user state management
    # ------------------------------------------------------------------ #
    def init_user_state(self, user: int) -> UserState:
        """Fresh user state with ``K0`` N(0, I/d) interest vectors."""
        interests = self._random_interests(self.K0)
        return UserState(
            user=user,
            interests=interests,
            prev_interests=_capture(interests.copy()),
            created_span=np.zeros(self.K0, dtype=np.int64),
            n_existing=self.K0,
            sa_weights=self._init_sa_weights(self.K0),
        )

    def init_all_users(self, user_ids: Sequence[int]) -> Dict[int, UserState]:
        return {u: self.init_user_state(u) for u in user_ids}

    def expand_user(self, state: UserState, delta_k: int, span: int) -> None:
        """Append ``delta_k`` freshly initialized interest slots (NID)."""
        if delta_k <= 0:
            return
        new = self._random_interests(delta_k)
        state.interests = np.concatenate([state.interests, new], axis=0)
        state.created_span = np.concatenate(
            [state.created_span, np.full(delta_k, span, dtype=np.int64)]
        )
        self._expand_sa_weights(state, delta_k)

    def trim_user(self, state: UserState, keep: np.ndarray) -> None:
        """Keep only interest rows where ``keep`` is True (PIT)."""
        keep = np.asarray(keep, dtype=bool)
        if keep.all():
            return
        if not keep[: state.n_existing].all():
            raise ValueError("trimming may only remove interests created this span")
        state.interests = state.interests[keep]
        state.created_span = state.created_span[keep]
        self._trim_sa_weights(state, keep)

    def _random_interests(self, k: int) -> np.ndarray:
        """Scaled N(0, I) init (paper Algorithm 1 line 8), std 1/sqrt(d)."""
        draw = self.rng.normal(0.0, 1.0 / np.sqrt(self.dim), size=(k, self.dim))
        return _backend.active.asarray(draw)

    # SA-specific hooks (no-ops for DR models) -------------------------- #
    def _init_sa_weights(self, k: int) -> Optional[Parameter]:
        return None

    def _expand_sa_weights(self, state: UserState, delta_k: int) -> None:
        return None

    def _trim_sa_weights(self, state: UserState, keep: np.ndarray) -> None:
        return None

    def user_parameters(self, states: Sequence[UserState]) -> List[Parameter]:
        """Per-user trainable parameters (empty for DR models)."""
        return [s.sa_weights for s in states if s.sa_weights is not None]

    def grow_items(self, new_num_items: int,
                   rng: Optional[np.random.Generator] = None) -> int:
        """Grow the item-embedding table to ``new_num_items`` rows.

        Mid-stream item cold start: a streaming event may reference an
        item id beyond the catalog the model was built with.  Pass
        ``rng`` (usually ``self.rng``) to draw the new rows exactly as at
        construction time — a resumed run replaying the same growth from
        the same restored generator state then reproduces the same table.
        ``rng=None`` appends zero rows (the checkpoint-restore path, where
        the real values are loaded immediately afterwards).  Returns the
        number of rows added; never shrinks.
        """
        added = int(new_num_items) - self.num_items
        if added <= 0:
            return 0
        self.item_emb.grow(added, rng)
        self.num_items = int(new_num_items)
        return added

    # ------------------------------------------------------------------ #
    # modelling
    # ------------------------------------------------------------------ #
    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        """Extract the (K, d) interest matrix from an item sequence.

        Differentiable w.r.t. the model parameters (and, for SA, the
        user's attention weights).
        """
        raise NotImplementedError

    def embed_items(self, item_ids: Sequence[int]) -> Tensor:
        return self.item_emb(np.asarray(item_ids, dtype=np.int64))

    def loss_single(self, interests: Tensor, target: int,
                    negatives: np.ndarray) -> Tensor:
        """Eq. 6 for one (user, target) instance."""
        target_emb = self.embed_items([target])[0]
        neg_embs = self.embed_items(negatives)
        return sampled_softmax_loss(interests, target_emb, neg_embs)

    def loss_targets(self, interests: Tensor, targets: Sequence[int],
                     negatives: np.ndarray) -> Tensor:
        """Eq. 6 averaged over all targets of one user.

        ``negatives`` is (num_targets, num_neg) item ids.
        """
        target_embs = self.embed_items(targets)
        neg_embs = self.embed_items(np.asarray(negatives).reshape(-1)).reshape(
            len(targets), -1, self.dim
        )
        return batch_sampled_softmax_loss(interests, target_embs, neg_embs)

    def score_all_items(self, state: UserState) -> np.ndarray:
        """Retrieval scores of every catalog item for one user (no grad)."""
        return score_items(state.interests, self.item_emb.weight.data)

    def snapshot_interests(self, state: UserState, item_seq: Sequence[int]) -> None:
        """Recompute and store (detached) interests from ``item_seq``."""
        if len(item_seq) == 0:
            return
        with no_grad():
            interests = self.compute_interests(state, item_seq)
        state.interests = _capture(interests.data.copy())
