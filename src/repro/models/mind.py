"""MIND (Li et al., CIKM 2019) — dynamic-routing MSR base model.

Differs from ComiRec-DR in two ways the paper calls out: the item
transformation is a *shared bilinear mapping* matrix, and the routing
logits are initialized **randomly** (fixed per extraction, not trained),
which breaks the symmetry between capsules.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import Tensor
from ..nn import Parameter, init
from .base import MSRModel, UserState
from .routing import b2i_routing


class MIND(MSRModel):
    """Dynamic-routing extractor with random initial routing logits."""

    family = "dr"

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 routing_iterations: int = 3, logit_std: float = 1.0, seed: int = 0):
        super().__init__(num_items, dim=dim, num_interests=num_interests, seed=seed)
        self.routing_iterations = routing_iterations
        self.logit_std = logit_std
        self.bilinear = Parameter(init.xavier_uniform((dim, dim), self.rng))
        # Dedicated stream so logit sampling does not perturb other seeding.
        self._logit_rng = np.random.default_rng(seed + 7919)

    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        if len(item_seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
        embs = self.embed_items(item_seq)
        e_hat = embs @ self.bilinear.T
        init_logits = self._logit_rng.normal(
            0.0, self.logit_std, size=(len(item_seq), state.num_interests)
        )
        return b2i_routing(
            e_hat,
            init_interests=state.interests,
            iterations=self.routing_iterations,
            init_logits=init_logits,
        )
