"""Base multi-interest sequential recommendation models."""

from .base import MSRModel, UserState
from .aggregator import (
    aggregate_interests,
    attention_scores,
    score_items,
    score_items_batch,
)
from .routing import b2i_routing, squash_np
from .sampled_softmax import batch_sampled_softmax_loss, sampled_softmax_loss
from .mind import MIND
from .comirec_dr import ComiRecDR
from .comirec_sa import ComiRecSA
from .controllable import category_diversity, greedy_controllable_selection, recommend
from .batched import batched_extract_dr, batched_snapshot_refresh
from .batched_train import (
    batched_compute_interests,
    batched_loss_targets,
    batched_snapshot_interests,
    supports_batched_training,
)

MODEL_REGISTRY = {
    "MIND": MIND,
    "ComiRec-DR": ComiRecDR,
    "ComiRec-SA": ComiRecSA,
}


def make_model(name: str, num_items: int, **kwargs) -> MSRModel:
    """Instantiate a base model by its paper name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; options: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](num_items, **kwargs)


__all__ = [
    "MSRModel",
    "UserState",
    "MIND",
    "ComiRecDR",
    "ComiRecSA",
    "MODEL_REGISTRY",
    "make_model",
    "aggregate_interests",
    "attention_scores",
    "score_items",
    "score_items_batch",
    "b2i_routing",
    "squash_np",
    "sampled_softmax_loss",
    "batch_sampled_softmax_loss",
    "recommend",
    "greedy_controllable_selection",
    "category_diversity",
    "batched_extract_dr",
    "batched_snapshot_refresh",
    "batched_compute_interests",
    "batched_loss_targets",
    "batched_snapshot_interests",
    "supports_batched_training",
]
