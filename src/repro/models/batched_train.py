"""In-graph micro-batched forward for training groups of users at once.

The per-user training loop (``IncrementalStrategy._train``) extracts one
user's interests, scores that user's targets, and takes an optimizer
step — paper-exact, but the Python/graph overhead of thousands of tiny
autograd ops dominates wall-clock on small models.  This module provides
the batched counterpart used when ``TrainConfig.users_per_batch > 1``:

* :func:`batched_compute_interests` — pad a group of users into one
  batched *differentiable* extraction (B2I routing for the DR family,
  additive self-attention for SA), masking both the item axis (variable
  sequence length) and the capsule axis (variable ``K_u``);
* :func:`batched_loss_targets` — the sampled-softmax objective (Eq. 6)
  over *all* users' targets in one batched graph, returning the **sum**
  of each user's mean-over-targets loss, so one ``backward()`` produces
  exactly the accumulated gradient of the per-user losses;
* :func:`pad_interest_group` — re-pad per-user interest tensors after
  in-graph hooks (PIT projection) back into a batched block.

Gradients through padding are exact zeros by construction: padded item
slots index a zero row appended *after* the embedding gather (so no
spurious rows are recorded as touched for the sparse optimizer), padded
capsule columns are multiplied out of the final coupling/attention, and
padded targets carry zero loss weight.

Numerics: the batched graph evaluates the same formulas as the per-user
path but through differently-shaped BLAS calls, so per-user losses agree
to ~1e-8, not bitwise (``tests/test_microbatch.py``).  The bit-exact
paper configuration is ``users_per_batch=1``, which bypasses this module
entirely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import backend as _backend
from ..autograd import Tensor, concat, pad_rows, stack
from ..autograd.ops import log_softmax, softmax, squash
from ..contracts import shape_contract
from ..nn import Parameter
from ..obs import prof as _prof
from ..obs import trace as obs
from ..sanitize import capture as _capture
from .base import MSRModel, UserState
from .batched import _masked_softmax_over_items
from .comirec_dr import ComiRecDR
from .comirec_sa import ComiRecSA
from .mind import MIND

_NEG = -1e30  # additive mask for padded positions

#: ``(state, history items)`` — one user's extraction job
Job = Tuple[UserState, Sequence[int]]


def supports_batched_training(model: MSRModel) -> bool:
    """Whether :func:`batched_compute_interests` can handle ``model``.

    The batched routing implements the paper-text "items" normalization
    only (per-capsule softmax columns are independent, so capsule
    padding cannot corrupt real columns); the "capsules" ablation
    convention falls back to the per-user loop.
    """
    if isinstance(model, ComiRecDR):
        return model.routing_normalize == "items"
    return isinstance(model, (MIND, ComiRecSA))


def _padded_item_embeddings(
    model: MSRModel, seqs: Sequence[Sequence[int]],
) -> Tuple[Tensor, np.ndarray]:
    """Gather all sequences in one embedding lookup, pad with zero rows.

    Returns the (B, n_max, d) padded embedding Tensor (exact zeros at
    padded slots) and the (B, n_max) boolean item mask.  Padding happens
    *after* the gather via :func:`pad_rows` — only real item ids reach
    the embedding table, so gradients and sparse-row tracking never see
    the padding, and the backward is pure slicing (no scatter).
    """
    lengths = [len(s) for s in seqs]
    n_max = max(lengths)
    flat = np.concatenate([np.asarray(s, dtype=np.int64) for s in seqs])
    gathered = model.item_emb(flat)                        # (sum n_u, d)
    mask = np.zeros((len(seqs), n_max), dtype=bool)
    for b, n in enumerate(lengths):
        mask[b, :n] = True
    return pad_rows(gathered, lengths, n_max), mask


def _capsule_padding(states: Sequence[UserState]) -> Tuple[np.ndarray, List[int]]:
    """(B, K_max) capsule mask and the per-user interest counts."""
    ks = [state.num_interests for state in states]
    k_max = max(ks)
    mask = np.zeros((len(states), k_max), dtype=bool)
    for b, k in enumerate(ks):
        mask[b, :k] = True
    return mask, ks


@shape_contract("_, _ -> (B, K, D) f, (B, K) b, _")
def batched_compute_interests(
    model: MSRModel, jobs: Sequence[Job],
) -> Tuple[Tensor, np.ndarray, List[int]]:
    """Differentiable batched ``compute_interests`` for a user group.

    Returns ``(interests, capsule_mask, ks)`` where ``interests`` is the
    (B, K_max, d) padded interest block (rows beyond ``ks[b]`` are exact
    zeros and carry no gradient) and ``capsule_mask`` is (B, K_max).

    Per-user randomness (MIND's routing logits, cold-start capsule init)
    is drawn user by user in job order, consuming the same RNG streams
    in the same order as the per-user loop would for this group.
    """
    if not jobs:
        raise ValueError("batched_compute_interests needs at least one job")
    for _, seq in jobs:
        if len(seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
    if not supports_batched_training(model):
        raise TypeError(
            f"{type(model).__name__} has no batched training path; guard "
            f"call sites with supports_batched_training()")
    obs.counter("batched.extract_calls")
    if model.family == "sa":
        return _extract_sa(model, jobs)
    return _extract_dr(model, jobs)


def _extract_dr(model: MSRModel, jobs: Sequence[Job]):
    """Batched B2I routing (ComiRec-DR / MIND), in-graph final iteration.

    Mirrors :func:`repro.models.routing.b2i_routing`: routing weights
    are constants for backprop except through the final
    ``squash(cᵀ ê)``; the iterations themselves run vectorized in numpy
    over the whole padded group.
    """
    states = [state for state, _ in jobs]
    capsule_mask, ks = _capsule_padding(states)
    batch, k_max = capsule_mask.shape
    transform = model.transform if isinstance(model, ComiRecDR) else model.bilinear
    e_hat = _padded_item_embeddings(model, [seq for _, seq in jobs])[0] @ transform.T
    item_mask = np.zeros((batch, e_hat.shape[1]), dtype=bool)
    capsules = np.zeros((batch, k_max, model.dim))
    extra_logits = np.zeros((batch, e_hat.shape[1], k_max))
    for b, (state, seq) in enumerate(jobs):
        item_mask[b, :len(seq)] = True
        if isinstance(model, ComiRecDR) and not model.warm_start:
            capsules[b, :ks[b]] = model._random_interests(ks[b])
        else:
            capsules[b, :ks[b]] = state.interests
        if isinstance(model, MIND):
            extra_logits[b, :len(seq), :ks[b]] = model._logit_rng.normal(
                0.0, model.logit_std, size=(len(seq), ks[b]))

    if _backend.active.fused:
        from ..backend.fused import fused_dr_interests

        interests = fused_dr_interests(
            e_hat, capsules, item_mask, capsule_mask,
            extra_logits if isinstance(model, MIND) else None,
            model.routing_iterations)
        return interests, capsule_mask, ks

    ein = _backend.active.einsum
    e_np = e_hat.data
    with _prof.op("extract.b2i_routing"):
        logits = ein("bnd,bkd->bnk", e_np, capsules) + extra_logits
        iterations = model.routing_iterations
        for _ in range(iterations - 1):
            coupling = _masked_softmax_over_items(logits, item_mask)
            capsules = _squash_np_batch(ein("bnk,bnd->bkd", coupling, e_np))
            logits = logits + ein("bnd,bkd->bnk", e_np, capsules)

        coupling = _masked_softmax_over_items(logits, item_mask)
        coupling = coupling * capsule_mask[:, None, :]  # kill padded capsules
    interests = squash(Tensor(coupling).swapaxes(1, 2) @ e_hat)
    return interests, capsule_mask, ks


def _extract_sa(model: ComiRecSA, jobs: Sequence[Job]):
    """Batched additive self-attention extraction (Eqs. 7–9)."""
    states = [state for state, _ in jobs]
    capsule_mask, ks = _capsule_padding(states)
    k_max = capsule_mask.shape[1]
    embs, item_mask = _padded_item_embeddings(model, [seq for _, seq in jobs])
    user_ws: List[Parameter] = []
    for state, k in zip(states, ks):
        w = state.sa_weights
        if w is None:
            raise ValueError("SA user state is missing attention weights")
        if w.data.shape[1] != k:
            raise ValueError(
                "user attention weights out of sync with interest count: "
                f"{w.data.shape[1]} vs {k}")
        user_ws.append(w)

    if _backend.active.fused:
        from ..backend.fused import fused_sa_interests

        interests = fused_sa_interests(embs, model.w1, user_ws, item_mask,
                                       capsule_mask)
        return interests, capsule_mask, ks

    hidden = (embs @ model.w1.T).tanh()              # (B, n, d_a)
    columns: List[Tensor] = []
    for w, k in zip(user_ws, ks):
        if k < k_max:
            w = concat([w, Tensor(np.zeros((model.attention_dim, k_max - k)))],
                       axis=1)
        columns.append(w)
    w_pad = stack(columns, axis=0)                   # (B, d_a, K_max)
    logits = hidden @ w_pad + Tensor(np.where(item_mask, 0.0, _NEG)[:, :, None])
    attn = softmax(logits, axis=1)                   # Eq. 8, over items
    attn = attn * Tensor(capsule_mask[:, None, :].astype(embs.data.dtype))
    interests = attn.swapaxes(1, 2) @ embs           # Eq. 9 -> (B, K_max, d)
    return interests, capsule_mask, ks


def _squash_np_batch(x: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    sq_norm = (x * x).sum(axis=-1, keepdims=True)
    return x * (sq_norm / (1.0 + sq_norm) / np.sqrt(sq_norm + eps))


@shape_contract("_, () -> (B, K, D) f, (B, K) b")
def pad_interest_group(
    tensors: Sequence[Tensor], dim: int,
) -> Tuple[Tensor, np.ndarray]:
    """Re-pad per-user (K_u, d) interest tensors into a (B, K_max, d) block.

    Used after in-graph per-user hooks (PIT projection) rewrote the
    sliced interests; gradients flow through the concat/stack back into
    each user's tensor.
    """
    ks = [t.shape[0] for t in tensors]
    k_max = max(ks)
    mask = np.zeros((len(tensors), k_max), dtype=bool)
    rows: List[Tensor] = []
    for b, t in enumerate(tensors):
        mask[b, :ks[b]] = True
        if ks[b] < k_max:
            t = concat([t, Tensor(np.zeros((k_max - ks[b], dim)))], axis=0)
        rows.append(t)
    return stack(rows, axis=0), mask


@shape_contract("_, (B, K, D) f, (B, K) b, _, _ -> () f")
def batched_loss_targets(
    model: MSRModel,
    interests: Tensor,
    capsule_mask: np.ndarray,
    targets_list: Sequence[Sequence[int]],
    negatives_list: Sequence[np.ndarray],
) -> Tensor:
    """Sampled-softmax loss (Eq. 6) over a whole group in one graph.

    Returns the **sum** over users of that user's mean-over-targets
    loss — the gradient of one backward pass therefore equals the
    accumulated gradients of ``model.loss_targets`` per user, which is
    what one micro-batched optimizer step replaces.
    """
    batch = len(targets_list)
    if interests.shape[0] != batch or len(negatives_list) != batch:
        raise ValueError("group size mismatch between interests/targets/negatives")
    counts = [len(t) for t in targets_list]
    if min(counts) < 1:
        raise ValueError("every user in the group needs at least one target")
    m_max = max(counts)
    num_neg = negatives_list[0].shape[1]

    # one gather for all targets, one for all negatives; padding happens
    # after the gather via pad_rows (exact-zero forward slots, slicing
    # backward — the embedding table never sees padded positions)
    flat_t = np.concatenate([np.asarray(t, dtype=np.int64) for t in targets_list])
    flat_n = np.concatenate([np.asarray(n, dtype=np.int64).reshape(-1)
                             for n in negatives_list])
    weights = np.zeros((batch, m_max))
    for b, m in enumerate(counts):
        weights[b, :m] = 1.0 / m
    target_embs = pad_rows(model.embed_items(flat_t),
                           counts, m_max)            # (B, M, d)
    neg_embs = pad_rows(model.embed_items(flat_n),
                        [m * num_neg for m in counts],
                        m_max * num_neg)             # (B, M·J, d)
    neg_embs = neg_embs.reshape(batch, m_max, num_neg, model.dim)

    if _backend.active.fused:
        from ..backend.fused import fused_sampled_softmax

        return fused_sampled_softmax(interests, target_embs, neg_embs,
                                     capsule_mask, weights)

    # target-attentive aggregation (Eq. 5) with padded capsules masked out
    att = target_embs @ interests.swapaxes(1, 2)     # (B, M, K)
    att = att + Tensor(np.where(capsule_mask, 0.0, _NEG)[:, None, :])
    beta = softmax(att, axis=2)
    v = beta @ interests                             # (B, M, d)
    pos = (v * target_embs).sum(axis=2, keepdims=True)           # (B, M, 1)
    neg = (neg_embs @ v.reshape(batch, m_max, model.dim, 1)).squeeze(3)
    logits = concat([pos, neg], axis=2)              # (B, M, 1 + J)
    nll = -log_softmax(logits, axis=2)[:, :, 0]      # (B, M)
    return (nll * Tensor(weights)).sum()


def batched_snapshot_interests(
    model: MSRModel, jobs: Sequence[Job],
    interests_hook=None,
) -> None:
    """Refresh many users' stored interests with one batched extraction.

    The no-grad counterpart of per-user ``model.snapshot_interests``;
    per-user ``interests_hook(state, interests) -> interests`` (PIT) is
    applied to each user's slice before storing.  Agrees with the
    per-user refresh to floating-point tolerance, not bitwise — hence
    opt-in via ``TrainConfig.batched_snapshots``.
    """
    from ..autograd import no_grad

    jobs = [(state, seq) for state, seq in jobs if len(seq) > 0]
    if not jobs:
        return
    with obs.span("batched_snapshot", users=len(jobs)), no_grad():
        interests, _, ks = batched_compute_interests(model, jobs)
        for b, (state, _) in enumerate(jobs):
            per_user = interests[b, :ks[b]]
            if interests_hook is not None:
                per_user = interests_hook(state, per_user)
            state.interests = _capture(per_user.data.copy())
