"""Batched no-grad interest extraction — the inference fast path.

Serving an incremental MSR system means periodically re-extracting every
user's interest matrix (snapshot refreshes, nightly index rebuilds).
The training path extracts per user (sequence lengths and interest
counts K_u vary — the whole point of IMSR), but for *inference* the
per-user Python overhead dominates; this module runs B2I dynamic routing
for a whole batch of users at once with padding masks over both the item
axis (variable sequence length) and the capsule axis (variable K_u).

Numerically identical to per-user :func:`repro.models.routing.b2i_routing`
(verified in the test suite) for deterministic extractors (ComiRec-DR);
MIND's random routing logits make its extraction non-deterministic, so
the batched path accepts explicit ``init_logits`` instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import backend as _backend
from .base import MSRModel, UserState
from .comirec_dr import ComiRecDR
from .routing import squash_np

_NEG = -1e30  # additive mask for padded positions


def _pad_batch(
    model: MSRModel,
    jobs: Sequence[Tuple[UserState, Sequence[int]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[int]]:
    """Build padded (B, n, d) transformed items, (B, n) item mask,
    (B, K, d) initial capsules and (B, K) capsule mask."""
    emb = model.item_emb.weight.data
    transform = model.transform.data  # (d, d); ComiRec-DR only
    batch = len(jobs)
    n_max = max(len(seq) for _, seq in jobs)
    k_max = max(state.num_interests for state, _ in jobs)
    dim = model.dim

    e_hat = np.zeros((batch, n_max, dim))
    item_mask = np.zeros((batch, n_max), dtype=bool)
    capsules0 = np.zeros((batch, k_max, dim))
    capsule_mask = np.zeros((batch, k_max), dtype=bool)
    ks: List[int] = []
    for b, (state, seq) in enumerate(jobs):
        n = len(seq)
        k = state.num_interests
        e_hat[b, :n] = emb[np.asarray(seq, dtype=np.int64)] @ transform.T
        item_mask[b, :n] = True
        capsules0[b, :k] = state.interests
        capsule_mask[b, :k] = True
        ks.append(k)
    return e_hat, item_mask, capsules0, capsule_mask, ks


def _masked_softmax_over_items(logits: np.ndarray,
                               item_mask: np.ndarray) -> np.ndarray:
    """Softmax over axis 1 (items) of (B, n, K) logits, masking padding."""
    masked = np.where(item_mask[:, :, None], logits, _NEG)
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted) * item_mask[:, :, None]
    denom = exp.sum(axis=1, keepdims=True)
    return exp / np.maximum(denom, 1e-30)


def batched_extract_dr(
    model: ComiRecDR,
    jobs: Sequence[Tuple[UserState, Sequence[int]]],
    iterations: Optional[int] = None,
) -> List[np.ndarray]:
    """Batched B2I routing for ComiRec-DR (no-grad inference).

    Parameters
    ----------
    model:
        A :class:`ComiRecDR` (the deterministic DR extractor).
    jobs:
        ``(user_state, item_sequence)`` pairs; sequences and interest
        counts may differ per user.

    Returns per-job ``(K_u, d)`` interest matrices, matching what
    ``model.compute_interests(state, seq).data`` produces.
    """
    if not isinstance(model, ComiRecDR):
        raise TypeError("batched_extract_dr requires a ComiRecDR model")
    if model.routing_normalize != "items":
        raise ValueError("batched path implements the 'items' convention only")
    if not jobs:
        return []
    for _, seq in jobs:
        if len(seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
    iterations = iterations or model.routing_iterations

    e_hat, item_mask, capsules, capsule_mask, ks = _pad_batch(model, jobs)
    ein = _backend.active.einsum
    # (B, n, K) votes against the warm-start capsules
    logits = ein("bnd,bkd->bnk", e_hat, capsules)
    for step in range(iterations):
        coupling = _masked_softmax_over_items(logits, item_mask)
        pooled = ein("bnk,bnd->bkd", coupling, e_hat)
        capsules = squash_np(pooled)
        if step < iterations - 1:
            logits = logits + ein("bnd,bkd->bnk", e_hat, capsules)

    return [capsules[b, :k] for b, k in enumerate(ks)]


def batched_snapshot_refresh(
    model: ComiRecDR,
    states_and_seqs: Sequence[Tuple[UserState, Sequence[int]]],
) -> None:
    """Refresh many users' stored interests in one batched pass.

    Equivalent to calling ``model.snapshot_interests`` per user but with
    a single set of vectorized routing iterations.
    """
    jobs = [(s, seq) for s, seq in states_and_seqs if len(seq) > 0]
    for (state, _), interests in zip(jobs, batched_extract_dr(model, jobs)):
        state.interests = interests.copy()
