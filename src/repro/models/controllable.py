"""Controllable diversity-aware readout (the ComiRec aggregation module).

The paper's base framework [Cen et al., 2020] includes a *controllable*
item-selection stage: after per-interest retrieval, the final top-N list
is chosen greedily to maximize

    Q(u, S) = Σ_{i∈S} f(u, i) + λ Σ_{i,j∈S} g(i, j),

where ``f`` is the relevance score (max over interests) and ``g``
rewards category diversity.  λ = 0 is pure accuracy; larger λ trades
accuracy for diversity.  Categories here are the synthetic world's
ground-truth item topics (standing in for Amazon/Taobao category ids).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .aggregator import score_items


def greedy_controllable_selection(
    scores: np.ndarray,
    categories: np.ndarray,
    n: int = 20,
    diversity_weight: float = 0.0,
    candidate_pool: int = 200,
) -> List[int]:
    """Greedy maximization of the ComiRec Q(u, S) objective.

    Parameters
    ----------
    scores:
        (num_items,) relevance scores.
    categories:
        (num_items,) integer category per item (the diversity signal).
    n:
        Size of the returned recommendation list.
    diversity_weight:
        λ; 0 reduces exactly to top-``n`` by score.
    candidate_pool:
        Greedy selection considers only the highest-scoring pool of this
        size (ComiRec's practical shortcut).

    Returns the selected item ids, most-preferred first.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    num_items = len(scores)
    pool_size = min(candidate_pool, num_items)
    pool = np.argpartition(-scores, pool_size - 1)[:pool_size]
    pool = pool[np.argsort(-scores[pool])]

    if diversity_weight == 0.0:
        return pool[:n].tolist()

    selected: List[int] = []
    selected_categories: List[int] = []
    remaining = pool.tolist()
    while remaining and len(selected) < n:
        best_idx = -1
        best_gain = -np.inf
        for idx, item in enumerate(remaining):
            # marginal diversity: +1 for every already-selected item of a
            # *different* category
            diversity = sum(
                1 for c in selected_categories if c != categories[item]
            )
            gain = scores[item] + diversity_weight * diversity
            if gain > best_gain:
                best_gain, best_idx = gain, idx
        item = remaining.pop(best_idx)
        selected.append(int(item))
        selected_categories.append(int(categories[item]))
    return selected


def recommend(
    interests: np.ndarray,
    item_embeddings: np.ndarray,
    categories: Optional[np.ndarray] = None,
    n: int = 20,
    diversity_weight: float = 0.0,
) -> List[int]:
    """End-to-end retrieval: max-over-interests scores + controllable
    selection.  Without categories (or with λ=0) this is plain top-N."""
    scores = score_items(interests, item_embeddings)
    if categories is None or diversity_weight == 0.0:
        top = np.argpartition(-scores, min(n, len(scores) - 1))[:n]
        return top[np.argsort(-scores[top])].tolist()
    return greedy_controllable_selection(
        scores, categories, n=n, diversity_weight=diversity_weight)


def category_diversity(items: Sequence[int], categories: np.ndarray) -> float:
    """Diversity of a list: mean pairwise category disagreement in [0, 1]."""
    items = list(items)
    if len(items) < 2:
        return 0.0
    cats = categories[np.asarray(items, dtype=np.int64)]
    disagreements = sum(
        1
        for i in range(len(cats))
        for j in range(i + 1, len(cats))
        if cats[i] != cats[j]
    )
    pairs = len(cats) * (len(cats) - 1) // 2
    return disagreements / pairs
