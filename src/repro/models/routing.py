"""Behavior-to-Interest (B2I) dynamic routing (paper Eqs. 3–4).

Routing softly clusters a user's (transformed) item embeddings into ``K``
interest capsules.  Following MIND / ComiRec practice, routing weights are
treated as constants for backpropagation except in the final iteration:
gradients flow into the transformed item embeddings (and hence the shared
transformation matrix and the embedding table) through the last
``h_k = squash(Σ_i c_ik ê_i)`` only.

Convention note: the paper's text normalizes the vote ``c_ik`` "over other
items", i.e. a softmax across the item axis per interest; we follow the
text (see DESIGN.md — MIND/ComiRec reference code normalizes across
capsules instead; either yields a soft clustering).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import backend as _backend
from ..autograd import Tensor
from ..autograd.ops import squash
from ..contracts import shape_contract


@shape_contract("(...S) f -> (...S) f")
def squash_np(x: np.ndarray, axis: int = -1, eps: float = 1e-9) -> np.ndarray:
    """Numpy version of the capsule squash, for no-grad routing iterations."""
    sq_norm = (x * x).sum(axis=axis, keepdims=True)
    scale = sq_norm / (1.0 + sq_norm) / np.sqrt(sq_norm + eps)
    return x * scale


@shape_contract("(N, K) f -> (N, K) f")
def _softmax_over_items(logits: np.ndarray) -> np.ndarray:
    """Softmax across the item axis (axis 0) of an (n, K) logit matrix."""
    shifted = logits - logits.max(axis=0, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=0, keepdims=True)


@shape_contract("(N, K) f -> (N, K) f")
def _softmax_over_capsules(logits: np.ndarray) -> np.ndarray:
    """Softmax across the capsule axis (axis 1) — MIND/ComiRec reference
    code convention; kept for the substrate-ablation benchmark."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


@shape_contract("(N, D) f, (K, D) f, (), (N, K) f, _ -> (K, D) f")
def b2i_routing(
    e_hat: Tensor,
    init_interests: np.ndarray,
    iterations: int = 3,
    init_logits: Optional[np.ndarray] = None,
    normalize: str = "items",
) -> Tensor:
    """Run B2I dynamic routing and return interest capsules.

    Parameters
    ----------
    e_hat:
        (n, d) transformed item embeddings; stays in the autograd graph.
    init_interests:
        (K, d) initial high-level capsules.  In the incremental setting this
        is the user's stored interest matrix from the previous span (plus
        any freshly initialized new-interest rows), which is how existing
        interests persist through re-extraction.
    iterations:
        Number of routing iterations ``L``.
    init_logits:
        Optional (n, K) additive initial routing logits.  MIND initializes
        these randomly; ComiRec-DR uses zeros (``None``).
    normalize:
        ``"items"`` (default) normalizes votes across items per interest,
        following the paper's text; ``"capsules"`` normalizes across
        interests per item, following the MIND/ComiRec reference code.
        The substrate-ablation benchmark compares the two.

    Returns
    -------
    Tensor
        (K, d) squashed interest capsules, differentiable w.r.t. ``e_hat``.
    """
    if e_hat.ndim != 2:
        raise ValueError(f"e_hat must be (n, d), got shape {e_hat.shape}")
    if init_interests.ndim != 2 or init_interests.shape[1] != e_hat.shape[1]:
        raise ValueError(
            f"init_interests must be (K, {e_hat.shape[1]}), got {init_interests.shape}"
        )
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if normalize == "items":
        softmax_fn = _softmax_over_items
    elif normalize == "capsules":
        softmax_fn = _softmax_over_capsules
    else:
        raise ValueError(f"normalize must be 'items' or 'capsules', got {normalize!r}")

    if _backend.active.fused and normalize == "items":
        # the fused kernel implements the paper-text normalization only;
        # the "capsules" ablation stays on the op-by-op graph
        from ..backend.fused import fused_dr_interests_single

        return fused_dr_interests_single(e_hat, init_interests, iterations,
                                         init_logits)

    e_np = e_hat.data
    logits = e_np @ init_interests.T  # (n, K): votes against initial capsules
    if init_logits is not None:
        logits = logits + init_logits

    for _ in range(iterations - 1):
        coupling = softmax_fn(logits)
        capsules = squash_np(coupling.T @ e_np)  # (K, d)
        logits = logits + e_np @ capsules.T

    final_coupling = Tensor(softmax_fn(logits))  # constant for backprop
    return squash(final_coupling.T @ e_hat)
