"""ComiRec-SA (Cen et al., KDD 2020) — self-attention MSR base model.

Implements the paper's Eqs. 7–9: per-user attention weights ``W_u``
(d_a x K; one column per interest) attend over ``tanh(W_1 E_u)``; the
interest matrix is the attention-weighted sum of item embeddings.

Unlike the DR models, the per-user ``W_u`` are trainable parameters that
the incremental strategies must include in the optimizer; interest
expansion appends columns to ``W_u``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import backend as _backend
from ..autograd import Tensor
from ..autograd.ops import softmax, tanh
from ..nn import Parameter, init
from .base import MSRModel, UserState


class ComiRecSA(MSRModel):
    """Multi-head additive self-attention interest extractor."""

    family = "sa"

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 attention_dim: Optional[int] = None, seed: int = 0):
        super().__init__(num_items, dim=dim, num_interests=num_interests, seed=seed)
        self.attention_dim = attention_dim or dim
        self.w1 = Parameter(init.xavier_uniform((self.attention_dim, dim), self.rng))

    # ------------------------------------------------------------------ #
    # per-user attention weights
    # ------------------------------------------------------------------ #
    def _init_sa_weights(self, k: int) -> Parameter:
        return Parameter(init.xavier_uniform((self.attention_dim, k), self.rng))

    def _expand_sa_weights(self, state: UserState, delta_k: int) -> None:
        new_cols = init.xavier_uniform((self.attention_dim, delta_k), self.rng)
        merged = np.concatenate([state.sa_weights.data, new_cols], axis=1)
        state.sa_weights = Parameter(merged)

    def _trim_sa_weights(self, state: UserState, keep: np.ndarray) -> None:
        state.sa_weights = Parameter(state.sa_weights.data[:, keep])

    # ------------------------------------------------------------------ #
    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        if len(item_seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
        if state.sa_weights is None:
            raise ValueError("SA user state is missing attention weights")
        if state.sa_weights.data.shape[1] != state.num_interests:
            raise ValueError(
                "user attention weights out of sync with interest count: "
                f"{state.sa_weights.data.shape[1]} vs {state.num_interests}"
            )
        embs = self.embed_items(item_seq)                  # (n, d)
        if _backend.active.fused:
            from ..backend.fused import fused_sa_interests_single

            return fused_sa_interests_single(embs, self.w1, state.sa_weights)
        hidden = tanh(embs @ self.w1.T)                    # (n, d_a) = tanh(W1 E)
        logits = hidden @ state.sa_weights                 # (n, K)
        attn = softmax(logits, axis=0)                     # Eq. 8 (over items)
        return attn.T @ embs                               # Eq. 9 -> (K, d)
