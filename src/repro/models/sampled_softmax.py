"""Sampled-softmax next-item loss (paper Eq. 6).

The preference score of item ``i`` is ``v_uᵀ e_i`` where ``v_u`` is the
target-attentive aggregation of the user's interests.  The loss contrasts
the target against a small uniformly sampled negative set and minimizes the
negative log-likelihood.
"""

from __future__ import annotations

from .. import backend as _backend
from ..autograd import Tensor, concat
from ..autograd.ops import log_softmax
from ..contracts import shape_contract
from .aggregator import aggregate_interests


@shape_contract("(K, D) f, (D) f, (M, D) f -> () f")
def sampled_softmax_loss(
    interests: Tensor,
    target_emb: Tensor,
    negative_embs: Tensor,
) -> Tensor:
    """Negative log-likelihood of the target under sampled softmax.

    Parameters
    ----------
    interests:
        (K, d) user interest matrix (differentiable).
    target_emb:
        (d,) target item embedding.
    negative_embs:
        (num_neg, d) sampled negative item embeddings.

    Returns a scalar Tensor.
    """
    v_u = aggregate_interests(interests, target_emb)  # (d,)
    pos_logit = (v_u * target_emb).sum().reshape(1)
    neg_logits = negative_embs @ v_u  # (num_neg,)
    logits = concat([pos_logit, neg_logits], axis=0)
    return -log_softmax(logits, axis=0)[0]


@shape_contract("(K, D) f, (M, D) f, (M, J, D) f -> () f")
def batch_sampled_softmax_loss(
    interests: Tensor,
    target_embs: Tensor,
    negative_embs: Tensor,
) -> Tensor:
    """Mean sampled-softmax loss over several targets of the *same* user.

    The paper splits each user's in-span interactions into a history part
    (interests are extracted from it once) and a target set; all targets
    share the same interest matrix.  ``target_embs`` is (m, d) and
    ``negative_embs`` is (m, num_neg, d).
    """
    if _backend.active.fused:
        from ..backend.fused import fused_sampled_softmax_single

        return fused_sampled_softmax_single(interests, target_embs,
                                            negative_embs)
    m = target_embs.shape[0]
    att = target_embs @ interests.T  # (m, K)
    beta = _softmax_rows(att)
    v = beta @ interests  # (m, d) — per-target aggregated user vector
    pos = (v * target_embs).sum(axis=1).reshape(m, 1)  # (m, 1)
    neg = (negative_embs @ v.reshape(m, -1, 1)).squeeze(-1)  # (m, num_neg)
    logits = concat([pos, neg], axis=1)  # (m, 1 + num_neg)
    return -log_softmax(logits, axis=1)[:, 0].mean()


@shape_contract("(N, K) f -> (N, K) f")
def _softmax_rows(x: Tensor) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=1, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=1, keepdims=True)
