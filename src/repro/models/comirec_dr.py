"""ComiRec-DR (Cen et al., KDD 2020) — dynamic-routing MSR base model.

Uses a shared affine transformation (Eq. 3) and B2I dynamic routing with
zero-initialized extra routing logits (the warm start comes from the
user's stored interests, which is how the incremental framework keeps
existing interests alive through re-extraction).
"""

from __future__ import annotations

from typing import Sequence

from ..autograd import Tensor
from ..nn import Parameter, init
from .base import MSRModel, UserState
from .routing import b2i_routing


class ComiRecDR(MSRModel):
    """Dynamic-routing multi-interest extractor with a shared affine map.

    ``routing_normalize`` and ``warm_start`` expose the two substrate
    design choices DESIGN.md documents, so the ablation benchmark can
    flip them: vote normalization across items (paper text) vs capsules
    (reference code), and warm-starting routing from the user's stored
    interests (the incremental carry-over mechanism) vs fresh random
    capsules per extraction.
    """

    family = "dr"

    def __init__(self, num_items: int, dim: int = 32, num_interests: int = 4,
                 routing_iterations: int = 3, seed: int = 0,
                 routing_normalize: str = "items", warm_start: bool = True):
        super().__init__(num_items, dim=dim, num_interests=num_interests, seed=seed)
        self.routing_iterations = routing_iterations
        self.routing_normalize = routing_normalize
        self.warm_start = warm_start
        self.transform = Parameter(init.xavier_uniform((dim, dim), self.rng))

    def compute_interests(self, state: UserState, item_seq: Sequence[int]) -> Tensor:
        if len(item_seq) == 0:
            raise ValueError("cannot extract interests from an empty sequence")
        embs = self.embed_items(item_seq)          # (n, d)
        e_hat = embs @ self.transform.T            # Eq. 3
        if self.warm_start:
            init_interests = state.interests
        else:
            init_interests = self._random_interests(state.num_interests)
        return b2i_routing(
            e_hat,
            init_interests=init_interests,
            iterations=self.routing_iterations,
            init_logits=None,                      # ComiRec-DR: zero extra logits
            normalize=self.routing_normalize,
        )
