"""Target-attentive interest aggregation (paper Eq. 5) and item scoring.

Training uses the target-aware aggregation: the target item embedding acts
as a query over the user's interests, ``v_u = Σ_k β_k h_k`` with
``β = softmax(e_aᵀ h_k)``.  Inference cannot see the target, so retrieval
follows MSR practice (MIND/ComiRec): an item's score is its best match
across interests, ``score(i) = max_k h_kᵀ e_i``.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..autograd.ops import softmax
from ..contracts import shape_contract


@shape_contract("(K, D) f, (D) f -> (D) f")
def aggregate_interests(interests: Tensor, target_emb: Tensor) -> Tensor:
    """Eq. 5: attention-weighted sum of interest vectors.

    ``interests`` is (K, d); ``target_emb`` is (d,).  Returns ``v_u`` (d,).
    """
    logits = interests @ target_emb  # (K,)
    beta = softmax(logits, axis=0)
    return beta @ interests


@shape_contract("(K, D) f, (D) f -> (K) f")
def attention_scores(interests: np.ndarray, target_emb: np.ndarray) -> np.ndarray:
    """Softmax attention of a target item over interests (numpy, no grad).

    Used by the Fig. 7(c) case study: which (possibly early-created)
    interest wins the attention for a later target item.
    """
    logits = interests @ target_emb
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


@shape_contract("(K, D) f, (N, D) f -> (N) f")
def score_items(interests: np.ndarray, item_embeddings: np.ndarray) -> np.ndarray:
    """Max-over-interests retrieval scores for every item (numpy, no grad).

    ``interests`` (K, d) x ``item_embeddings`` (N, d) -> (N,) scores.
    """
    if interests.size == 0:
        return np.zeros(item_embeddings.shape[0])
    return (item_embeddings @ interests.T).max(axis=1)
