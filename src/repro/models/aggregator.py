"""Target-attentive interest aggregation (paper Eq. 5) and item scoring.

Training uses the target-aware aggregation: the target item embedding acts
as a query over the user's interests, ``v_u = Σ_k β_k h_k`` with
``β = softmax(e_aᵀ h_k)``.  Inference cannot see the target, so retrieval
follows MSR practice (MIND/ComiRec): an item's score is its best match
across interests, ``score(i) = max_k h_kᵀ e_i``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import Tensor
from ..autograd.ops import softmax
from ..contracts import shape_contract


@shape_contract("(K, D) f, (D) f -> (D) f")
def aggregate_interests(interests: Tensor, target_emb: Tensor) -> Tensor:
    """Eq. 5: attention-weighted sum of interest vectors.

    ``interests`` is (K, d); ``target_emb`` is (d,).  Returns ``v_u`` (d,).
    """
    logits = interests @ target_emb  # (K,)
    beta = softmax(logits, axis=0)
    return beta @ interests


@shape_contract("(K, D) f, (D) f -> (K) f")
def attention_scores(interests: np.ndarray, target_emb: np.ndarray) -> np.ndarray:
    """Softmax attention of a target item over interests (numpy, no grad).

    Used by the Fig. 7(c) case study: which (possibly early-created)
    interest wins the attention for a later target item.
    """
    logits = interests @ target_emb
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


@shape_contract("(K, D) f, (N, D) f -> (N) f")
def score_items(interests: np.ndarray, item_embeddings: np.ndarray) -> np.ndarray:
    """Max-over-interests retrieval scores for every item (numpy, no grad).

    ``interests`` (K, d) x ``item_embeddings`` (N, d) -> (N,) scores.
    """
    if interests.size == 0:
        return np.zeros(item_embeddings.shape[0])
    return (item_embeddings @ interests.T).max(axis=1)


#: cap on the columns (summed interest counts) a single batched GEMM may
#: carry in ``exact=False`` mode; bounds the (N, cols) intermediate when
#: scoring many users
_SCORE_CHUNK_COLS = 8192


@shape_contract("_, (N, D) f, _ -> (U, N) f")
def score_items_batch(interest_list: Sequence[np.ndarray],
                      item_embeddings: np.ndarray,
                      exact: bool = True) -> np.ndarray:
    """:func:`score_items` for a whole batch of users at once.

    The default (``exact=True``) issues the *identical* per-user
    ``(N, d) @ (d, K_u)`` product that :func:`score_items` issues, so
    every output row is **bit-identical** to the per-user path by
    construction — the batching win comes from amortizing the Python
    call overhead and from the vectorized rank/metric pipeline
    downstream (:func:`repro.eval.ranks_of_targets`), not from changing
    any floating-point computation.

    ``exact=False`` is the maximum-throughput mode: users are grouped by
    interest count ``K``, each group's matrices are stacked into one
    ``(G * K, d)`` block, the catalog is scored in a single chunked
    matmul, and the result is reshaped to ``(G, K, N)`` for a vectorized
    max over the interest axis.  BLAS is free to pick a different kernel
    (and therefore a different accumulation order) for the wide product
    than for per-user products, so this mode agrees with
    :func:`score_items` only to ~1e-12 relative tolerance, which can
    flip near-tied ranks.  It is therefore *not* used by the default
    evaluation path; the perf probe (``benchmarks/perf_probe.py``)
    reports it as extra headroom.
    """
    num_items = item_embeddings.shape[0]
    out = np.empty((len(interest_list), num_items))
    if exact:
        for u, interests in enumerate(interest_list):
            out[u] = score_items(interests, item_embeddings)
        return out

    by_k: dict = {}
    for u, interests in enumerate(interest_list):
        if interests.shape[0] >= 2:
            by_k.setdefault(interests.shape[0], []).append(u)
        else:  # K=0 (zeros) and K=1 (matvec) don't benefit from stacking
            out[u] = score_items(interests, item_embeddings)

    for k, group in by_k.items():
        step = max(1, _SCORE_CHUNK_COLS // k)  # bound the (cols, N) block
        for start in range(0, len(group), step):
            chunk = group[start:start + step]
            stacked = np.concatenate([interest_list[u] for u in chunk],
                                     axis=0)
            scored = stacked @ item_embeddings.T    # (len(chunk)*k, N)
            out[chunk] = scored.reshape(len(chunk), k, num_items).max(axis=1)
    return out
