"""Weight initializers.

All initializers take an explicit ``rng`` (``numpy.random.Generator``) so
every experiment in the reproduction is fully seeded and repeatable.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the PyTorch default for attention weights."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape, rng: np.random.Generator, std: float = 0.1) -> np.ndarray:
    """Gaussian init; the paper initializes interest vectors as N(0, I)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape) -> tuple:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
