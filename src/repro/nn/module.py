"""Minimal module system mirroring ``torch.nn.Module`` semantics.

Modules own :class:`Parameter` tensors, can be nested, and expose
``parameters()`` / ``state_dict()`` / ``load_state_dict()`` so incremental
strategies can snapshot, clone, and restore models across time spans —
the central operation in this paper (FT inherits, FR reinitializes, SML
transfers, IMSR fine-tunes with retention).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A Tensor flagged as a trainable leaf of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter data in place.

        With ``strict=False``, missing or extra keys are tolerated and
        shape-mismatched entries are skipped — needed when IMSR expands the
        number of interests between spans.
        """
        params = dict(self.named_parameters())
        if strict:
            missing = set(params) - set(state)
            extra = set(state) - set(params)
            if missing or extra:
                raise KeyError(f"state dict mismatch; missing={missing}, extra={extra}")
        for name, value in state.items():
            param = params.get(name)
            if param is None:
                continue
            if param.data.shape != value.shape:
                if strict:
                    raise ValueError(
                        f"shape mismatch for {name}: {param.data.shape} vs {value.shape}"
                    )
                continue
            param.data[...] = value

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
