"""Core layers: Linear and Embedding.

The embedding table is the largest parameter in every MSR model (|I| x d item
embeddings), so ``Embedding`` uses sparse scatter-add gradients via
``Tensor.gather_rows`` rather than a dense one-hot matmul.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, is_grad_enabled
from ..contracts import shape_contract
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Xavier-uniform init."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    @shape_contract("(...B, Din) f -> (...B, Dout) f")
    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of ``num_embeddings`` rows of dimension ``dim``.

    ``padding_idx`` (if given) is a row held at zero — used for padding
    variable-length interaction sequences into batches.
    """

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator,
                 padding_idx: Optional[int] = None, std: float = 0.1):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        self.std = std
        table = init.normal((num_embeddings, dim), rng, std=std)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.weight = Parameter(table)
        # Row-sparse hint: every gradient into this table is a scatter-add
        # over looked-up rows, so SparseAdam can arm per-row tracking
        # (repro.nn.optim.enable_row_tracking) and update only those rows.
        self.weight.row_sparse = True
        self.weight._touched_rows = None

    @shape_contract("(...I) i -> (...I, D) f")
    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if self.weight._touched_rows is not None and is_grad_enabled():
            self.weight._touched_rows.append(idx.reshape(-1))
        return self.weight.gather_rows(idx)

    def zero_padding_row(self) -> None:
        """Re-zero the padding row (call after an optimizer step)."""
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    def grow(self, num_new: int, rng: Optional[np.random.Generator] = None) -> None:
        """Append ``num_new`` rows to the table (mid-stream cold start).

        With ``rng`` the new rows are drawn exactly as at construction time
        (``N(0, std^2)``), so a resumed run that replays the same growth with
        the same generator state reproduces the same table. Without ``rng``
        the rows are zero-filled — the checkpoint-restore path, where real
        values are loaded immediately afterwards.
        """
        if num_new <= 0:
            return
        if rng is not None:
            new_rows = init.normal((num_new, self.dim), rng, std=self.std)
        else:
            new_rows = init.zeros((num_new, self.dim))
        new_rows = new_rows.astype(self.weight.data.dtype, copy=False)
        self.weight.data = np.concatenate([self.weight.data, new_rows], axis=0)
        self.num_embeddings += num_new
