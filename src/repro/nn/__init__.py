"""Neural-network building blocks on top of :mod:`repro.autograd`."""

from .module import Module, Parameter
from .layers import Embedding, Linear
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "init",
]
