"""Neural-network building blocks on top of :mod:`repro.autograd`."""

from .module import Module, Parameter
from .layers import Embedding, Linear
from .optim import (
    SGD,
    Adam,
    Optimizer,
    SparseAdam,
    clip_grad_norm,
    enable_row_tracking,
    touched_rows,
)
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "SGD",
    "Adam",
    "SparseAdam",
    "Optimizer",
    "clip_grad_norm",
    "enable_row_tracking",
    "touched_rows",
    "init",
]
