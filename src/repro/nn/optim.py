"""Optimizers: SGD, Adam (Kingma & Ba, 2015 — the paper's choice), and a
sparse-row Adam for embedding tables.

Dense Adam pays O(rows * d) moment updates per step even when a step's
gradient touches a handful of embedding rows — which is exactly the
per-user training regime of this paper (one user's history, targets and
sampled negatives per step).  :class:`SparseAdam` updates only the rows
the step actually touched, catching each row's first/second moments up
with a closed-form decay for the steps it sat out.  See
``docs/PERFORMANCE.md`` for the (documented, tested) deviation from
dense Adam semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .. import backend as _backend
from ..obs import prof as _prof
from ..obs import trace as obs
from .module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self._param_ids = {id(p) for p in self.params}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def add_param(self, param: Parameter) -> None:
        """Register a parameter created mid-training (IMSR interest expansion)."""
        self.params.append(param)
        self._param_ids.add(id(param))

    def has_param(self, param: Parameter) -> bool:
        """O(1) identity membership test.

        ``param in self.params`` would fall back to ``Tensor.__eq__``
        resolution and scan the whole list — O(params) per call, and
        fragile should ``Tensor`` ever grow elementwise equality.  The
        training loop asks this once per user step, so it must be cheap.
        """
        return id(param) in self._param_ids


class SGD(Optimizer):
    """Vanilla (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def add_param(self, param: Parameter) -> None:
        super().add_param(param)
        self._velocity.append(np.zeros_like(param.data))

    def step(self) -> None:
        with _prof.op("optim.step"):
            for p, v in zip(self.params, self._velocity):
                if p.grad is None:
                    continue
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                if self.momentum:
                    v *= self.momentum
                    v += grad
                    grad = v
                p.data -= self.lr * grad
        _backend.end_step()


class Adam(Optimizer):
    """Adam with bias correction; per-parameter state survives add_param."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._steps = [0 for _ in self.params]

    def add_param(self, param: Parameter) -> None:
        super().add_param(param)
        self._m.append(np.zeros_like(param.data))
        self._v.append(np.zeros_like(param.data))
        self._steps.append(0)

    def step(self) -> None:
        with _prof.op("optim.step"):
            for i, p in enumerate(self.params):
                if p.grad is None:
                    continue
                self._sync_grown_rows(i, p)
                self._dense_update(i, p)
        _backend.end_step()

    def _sync_grown_rows(self, i: int, p: Parameter) -> None:
        """Zero-pad moment state when a row-sparse parameter gained rows.

        Mid-stream cold start grows embedding tables in place
        (:meth:`repro.nn.layers.Embedding.grow`); the new rows start with
        zero first/second moments — exactly the state a freshly
        constructed optimizer would hold for them — while the moments of
        every pre-existing row are left byte-identical.
        """
        m = self._m[i]
        if m.shape == p.data.shape:
            return
        if not (getattr(p, "row_sparse", False)
                and m.ndim == p.data.ndim and p.data.ndim >= 1
                and m.shape[1:] == p.data.shape[1:]
                and m.shape[0] < p.data.shape[0]):
            raise ValueError(
                f"optimizer state shape {m.shape} does not match parameter "
                f"shape {p.data.shape} and the parameter is not a row-grown "
                f"embedding table")
        pad = np.zeros((p.data.shape[0] - m.shape[0],) + m.shape[1:],
                       dtype=m.dtype)
        self._m[i] = np.concatenate([m, pad], axis=0)
        self._v[i] = np.concatenate([self._v[i], np.zeros_like(pad)], axis=0)

    def _dense_update(self, i: int, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        self._steps[i] += 1
        t = self._steps[i]
        self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
        self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
        m_hat = self._m[i] / (1 - self.beta1 ** t)
        v_hat = self._v[i] / (1 - self.beta2 ** t)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SparseAdam(Adam):
    """Adam with lazy row-wise updates for row-sparse parameters.

    A parameter qualifies for the sparse path when it advertises the rows
    its gradient lives in (``param.touched_rows()`` — :class:`Embedding`
    weights record every forward lookup).  For those parameters a step

    1. decays the touched rows' stale first/second moments in closed form
       — ``m *= beta1**k``, ``v *= beta2**k`` for the ``k`` steps the row
       sat out (dense Adam applies that decay one step at a time);
    2. applies the ordinary Adam update to the touched rows only, with
       bias correction from the parameter's global step count.

    Deviation from dense Adam (documented in ``docs/PERFORMANCE.md``):
    dense Adam also *moves* an untouched row while its stale momentum
    decays toward zero ("momentum tail"); the lazy path skips that drift
    and leaves untouched rows frozen.  The two coincide exactly when
    every row is touched on every step, and agree within tolerance on
    real training runs (``tests/test_sparse_adam.py``).

    Parameters without row information fall back to the dense update,
    so a mixed parameter list (embedding table + dense transform + user
    attention weights) needs no special casing.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr=lr, betas=betas, eps=eps,
                         weight_decay=weight_decay)
        #: param index -> (rows,) step number at which each row was last
        #: updated; lazily created on the first sparse step
        self._last_step: Dict[int, np.ndarray] = {}
        for p in self.params:
            enable_row_tracking(p)

    def add_param(self, param: Parameter) -> None:
        super().add_param(param)
        enable_row_tracking(param)

    def step(self) -> None:
        with _prof.op("optim.step"):
            for i, p in enumerate(self.params):
                if p.grad is None:
                    continue
                self._sync_grown_rows(i, p)
                rows = touched_rows(p)
                if rows is None or p.data.ndim < 1:
                    self._dense_update(i, p)
                    continue
                self._sparse_update(i, p, rows)
                p._touched_rows = []  # consumed: next step starts fresh
        _backend.end_step()

    def _sync_grown_rows(self, i: int, p: Parameter) -> None:
        super()._sync_grown_rows(i, p)
        last = self._last_step.get(i)
        if last is not None and last.shape[0] < p.data.shape[0]:
            # new rows read as "last updated at step 0": their closed-form
            # catch-up decays zero moments, i.e. a no-op, matching dense
            pad = np.zeros(p.data.shape[0] - last.shape[0], dtype=np.int64)
            self._last_step[i] = np.concatenate([last, pad])

    def _sparse_update(self, i: int, p: Parameter, rows: np.ndarray) -> None:
        self._steps[i] += 1
        t = self._steps[i]
        obs.observe("sparse_adam.rows_touched", rows.size)
        if rows.size == 0:
            return
        last = self._last_step.get(i)
        if last is None:
            last = np.zeros(p.data.shape[0], dtype=np.int64)
            self._last_step[i] = last

        grad = p.grad[rows]
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data[rows]

        # closed-form catch-up for the steps each row sat out
        stale = (t - 1) - last[rows]
        if stale.any():
            shape = (-1,) + (1,) * (p.data.ndim - 1)
            self._m[i][rows] *= (self.beta1 ** stale).reshape(shape)
            self._v[i][rows] *= (self.beta2 ** stale).reshape(shape)

        m = self.beta1 * self._m[i][rows] + (1 - self.beta1) * grad
        v = self.beta2 * self._v[i][rows] + (1 - self.beta2) * grad * grad
        self._m[i][rows] = m
        self._v[i][rows] = v
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        last[rows] = t


def enable_row_tracking(param: Parameter) -> None:
    """Arm row-recording on a row-sparse parameter.

    Only parameters that advertise ``row_sparse = True`` (embedding
    tables — see :class:`repro.nn.layers.Embedding`) are armed; tracking
    is opt-in so the recordings cannot accumulate unbounded under
    optimizers that never consume them.
    """
    if getattr(param, "row_sparse", False) and \
            getattr(param, "_touched_rows", None) is None:
        param._touched_rows = []


def touched_rows(param: Parameter) -> Optional[np.ndarray]:
    """Sorted unique row indices ``param``'s gradient lives in, or None.

    Row-sparse parameters (embedding tables) record every row their
    forward pass gathers while tracking is armed (see
    :func:`enable_row_tracking`); anything else returns None and takes
    the dense path.  An empty recording alongside a nonzero gradient
    also returns None — the gradient then came from an untracked op, and
    a sparse update would silently drop it.
    """
    recorder = getattr(param, "_touched_rows", None)
    if recorder is None:
        return None
    if not recorder:
        if param.grad is not None and param.grad.any():
            return None
        return np.empty(0, np.int64)
    return np.unique(np.concatenate([np.asarray(r).reshape(-1) for r in recorder]))


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Global-norm gradient clipping; returns the pre-clip norm.

    Row-sparse parameters (see :func:`touched_rows`) contribute only
    their touched rows to the norm — the remaining rows hold exact
    zeros, so the result is identical while skipping the O(rows * d)
    scan and scale of the full table.
    """
    params = [p for p in params if p.grad is not None]
    total_sq = 0.0
    sparse: List[tuple] = []
    for p in params:
        rows = touched_rows(p)
        if rows is not None and p.data.ndim >= 1:
            sub = p.grad[rows]
            total_sq += float((sub ** 2).sum())
            sparse.append((p, rows))
        else:
            total_sq += float((p.grad ** 2).sum())
            sparse.append((p, None))
    total = float(np.sqrt(total_sq))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p, rows in sparse:
            if rows is None:
                p.grad = p.grad * scale
            else:
                p.grad[rows] *= scale
    return total
