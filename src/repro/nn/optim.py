"""Optimizers: SGD and Adam (Kingma & Ba, 2015 — the paper's choice)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def add_param(self, param: Parameter) -> None:
        """Register a parameter created mid-training (IMSR interest expansion)."""
        self.params.append(param)


class SGD(Optimizer):
    """Vanilla (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def add_param(self, param: Parameter) -> None:
        super().add_param(param)
        self._velocity.append(np.zeros_like(param.data))

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction; per-parameter state survives add_param."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._steps = [0 for _ in self.params]

    def add_param(self, param: Parameter) -> None:
        super().add_param(param)
        self._m.append(np.zeros_like(param.data))
        self._v.append(np.zeros_like(param.data))
        self._steps.append(0)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._steps[i] += 1
            t = self._steps[i]
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / (1 - self.beta1 ** t)
            v_hat = self._v[i] / (1 - self.beta2 ** t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Global-norm gradient clipping; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
