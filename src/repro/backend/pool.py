"""Size-bucketed scratch-buffer pool for the fast backend.

The fused kernels allocate the same handful of intermediate shapes every
micro-batch (hidden activations, attention logits, softmax scratch).
Under CPython + numpy each ``np.empty`` round-trips the allocator and,
for multi-megabyte buffers, the OS; the pool instead keeps freed flat
buffers in power-of-two size buckets and hands out reshaped views.

Lifecycle contract (enforced by the optimizer integration):

* :meth:`acquire` lends a buffer view; the flat backing array is
  recorded as *lent*.
* :meth:`reclaim` — called from ``backend.end_step()`` at optimizer-step
  boundaries — returns every lent buffer to its free bucket.  Backward
  closures created during the step have already run by then, so no live
  graph can observe a recycled buffer (PR 6's ``REPRO_SANITIZE=1``
  stamps only cover ``Tensor.data`` arrays, which are never pooled).

Pooled buffers are only ever *intermediates*: kernel outputs (anything
that becomes ``Tensor.data`` or persistent user state) are always fresh
allocations, so nothing outside a single step can alias pool memory.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: buffers above this element count are not pooled (handed straight to
#: numpy): the pool targets the many small/medium per-step intermediates,
#: not one-off giant arrays that would pin memory in a bucket forever.
MAX_POOLED_ELEMS = 1 << 24


def _bucket(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    return 1 << max(int(n) - 1, 0).bit_length() if n > 1 else 1


class BufferPool:
    """Power-of-two bucketed free lists of flat numpy buffers."""

    def __init__(self) -> None:
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        self._lent: List[Tuple[Tuple[str, int], np.ndarray]] = []
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Lend an uninitialised ``shape`` view backed by a pooled buffer.

        The view stays valid until the next :meth:`reclaim`; callers must
        not hold it across an optimizer-step boundary.
        """
        dt = np.dtype(dtype)
        n = int(np.prod(shape)) if shape else 1
        if n > MAX_POOLED_ELEMS:
            self.misses += 1
            return np.empty(shape, dtype=dt)
        key = (dt.str, _bucket(n))
        stack = self._free.get(key)
        if stack:
            flat = stack.pop()
            self.hits += 1
            self.bytes_reused += n * dt.itemsize
        else:
            flat = np.empty(key[1], dtype=dt)
            self.misses += 1
        self._lent.append((key, flat))
        return flat[:n].reshape(shape)

    def reclaim(self) -> int:
        """Return every lent buffer to its bucket; returns how many."""
        count = len(self._lent)
        for key, flat in self._lent:
            self._free.setdefault(key, []).append(flat)
        self._lent.clear()
        return count

    def clear(self) -> None:
        """Drop all pooled memory (lent and free)."""
        self._free.clear()
        self._lent.clear()

    @property
    def lent(self) -> int:
        return len(self._lent)

    def stats(self) -> Dict[str, int]:
        """Cumulative pool efficiency counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_reused": self.bytes_reused,
            "lent": len(self._lent),
            "free_buffers": sum(len(v) for v in self._free.values()),
        }
