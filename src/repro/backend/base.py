"""The backend interface and the paper-exact NumPy float64 default.

A backend is the narrow waist between the autograd/nn substrate and raw
array math: allocation, GEMM/einsum contractions, gather/scatter-add,
softmax, the elementwise ufuncs the models use, and reductions.  The
default :class:`NumpyBackend` delegates every op to the literal numpy
call the substrate used before this layer existed, at ``float64`` — so
the default path stays byte-for-byte identical to the paper-exact
reproduction.  :class:`repro.backend.fast.FastBackend` overrides the
dtype, adds a scratch-buffer pool, and flips on the fused kernels in
:mod:`repro.backend.fused`.

This module must import nothing from :mod:`repro.autograd` (the tensor
engine imports *us* to learn its compute dtype).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..contracts import shape_contract


class Backend:
    """Abstract compute backend.  Subclasses override dtype/ops/policy.

    Attributes
    ----------
    name:
        Registry name (``"default"`` / ``"fast"``).
    compute_dtype:
        The numpy dtype every :class:`repro.autograd.Tensor` is stored
        and computed in.
    fused:
        Whether model code should dispatch to the fused kernels in
        :mod:`repro.backend.fused` instead of building op-by-op graphs.
    pool:
        Scratch :class:`repro.backend.pool.BufferPool`, or ``None`` when
        the backend does not reuse buffers.
    """

    name: str = "abstract"
    compute_dtype: np.dtype = np.dtype(np.float64)
    fused: bool = False
    pool = None

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def asarray(self, value) -> np.ndarray:
        """Convert to an ndarray in this backend's compute dtype."""
        return np.asarray(value, dtype=self.compute_dtype)

    def allocate(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Uninitialised compute-dtype array (pooled on fast backends)."""
        return np.empty(shape, dtype=self.compute_dtype)

    def zeros(self, shape: Tuple[int, ...]) -> np.ndarray:
        return np.zeros(shape, dtype=self.compute_dtype)

    def scratch(self, shape: Tuple[int, ...], pooled: bool = True) -> np.ndarray:
        """Uninitialised scratch buffer for kernel intermediates.

        ``pooled=True`` lets pooling backends lend a reusable buffer that
        is reclaimed at the next optimizer-step boundary; callers must
        pass ``pooled=False`` for buffers that outlive the step (or when
        no step boundary will come, e.g. no-grad evaluation loops).
        """
        return np.empty(shape, dtype=self.compute_dtype)

    # ------------------------------------------------------------------ #
    # contractions and lookups
    # ------------------------------------------------------------------ #
    @shape_contract("(...B, M, K) f, (...B, K, N) f -> (...B, M, N) f")
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix multiply (batched when both operands are batched)."""
        return a @ b

    def einsum(self, spec: str, *operands: np.ndarray) -> np.ndarray:
        """General tensor contraction (``np.einsum`` semantics)."""
        return np.einsum(spec, *operands)

    @shape_contract("(N, D) f, _ -> (...I, D) f")
    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Row lookup: ``out[..., :] = table[indices[...], :]``."""
        return table[indices]

    @shape_contract("(N, D) f, _, (...I, D) f -> _")
    def scatter_add(self, out: np.ndarray, indices: np.ndarray,
                    updates: np.ndarray) -> None:
        """In-place ``out[indices] += updates`` with repeat accumulation."""
        np.add.at(out, indices, updates)

    # ------------------------------------------------------------------ #
    # nonlinearities and reductions
    # ------------------------------------------------------------------ #
    @shape_contract("(...S) f -> (...S) f")
    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Numerically stable softmax (shifted exp), matching
        :func:`repro.autograd.ops.softmax` exactly."""
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    def exp(self, x: np.ndarray) -> np.ndarray:
        return np.exp(x)

    def log(self, x: np.ndarray) -> np.ndarray:
        return np.log(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def reduce_sum(self, x: np.ndarray, axis=None,
                   keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    def reduce_max(self, x: np.ndarray, axis=None,
                   keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def end_step(self) -> None:
        """Optimizer-step boundary hook (pool reclaim on fast backends)."""

    def pool_stats(self) -> Optional[Dict[str, int]]:
        """Pool efficiency counters, or ``None`` without a pool."""
        return None


class NumpyBackend(Backend):
    """Paper-exact default: float64, unfused, literal numpy ops.

    Selecting this backend reproduces the pre-backend substrate
    bit-for-bit — every op above *is* the call the engine made before
    the refactor, and ``compute_dtype`` is the float64 the reproduction
    has always trained in.
    """

    name = "default"
    compute_dtype = np.dtype(np.float64)
    fused = False
