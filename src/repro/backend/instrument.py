"""InstrumentedBackend: per-op timing/FLOP/byte wrapper for any backend.

Wraps a registered backend (paper-exact float64 default or the fast
float32 backend) and reports every ``gemm`` / ``einsum`` / ``gather`` /
``scatter_add`` / ``softmax`` call to the active
:class:`repro.obs.prof.OpProfiler`, tagged with a power-of-two shape
bucket, estimated FLOPs, and bytes moved.  Allocation, ufuncs, and
reductions delegate untouched, so the wrapped backend's numerics are
bit-identical to the bare one — instrumenting changes *observations*,
never *results*.

With no active profiler every instrumented op costs one module-attribute
load plus a ``None`` check before delegating (the standard disabled-probe
budget, measured by ``benchmarks/obs_probe.py``).
"""

from __future__ import annotations

from time import perf_counter as _perf
from typing import Dict, Optional, Tuple

import numpy as np

from ..obs import prof as _prof
from .base import Backend

__all__ = ["InstrumentedBackend", "einsum_flops"]


def _batch_elems(shape: Tuple[int, ...]) -> int:
    n = 1
    for dim in shape:
        n *= int(dim)
    return n


def einsum_flops(spec: str, *operands: np.ndarray) -> float:
    """FLOP estimate for the contraction specs the models actually use.

    The three routing/attention contractions are batched matmuls
    (``2*B*M*K*N``); anything else falls back to a conservative
    lower bound of one multiply-add per output element per operand.
    """
    if len(operands) == 2 and "->" in spec:
        a, b = operands
        if spec == "bnd,bkd->bnk":
            bsz, n, d = a.shape
            return 2.0 * bsz * n * d * b.shape[1]
        if spec == "bnk,bnd->bkd":
            bsz, n, k = a.shape
            return 2.0 * bsz * n * k * b.shape[2]
        if spec == "bnk,bkd->bnd":
            bsz, n, k = a.shape
            return 2.0 * bsz * n * k * b.shape[2]
    total = 0.0
    for operand in operands:
        total += 2.0 * operand.size
    return total


class InstrumentedBackend(Backend):
    """Decorates ``inner`` with per-op profiling; numerics untouched.

    Register explicitly (``set_backend(InstrumentedBackend(active))``)
    or let :func:`repro.obs.prof.start_profiling` install and restore it
    around a profiled region.
    """

    def __init__(self, inner: Backend):
        if isinstance(inner, InstrumentedBackend):
            inner = inner.inner
        self.inner = inner
        self.name = f"instrumented({inner.name})"
        self.compute_dtype = inner.compute_dtype
        self.fused = inner.fused
        self.pool = inner.pool

    def __repr__(self) -> str:
        return f"InstrumentedBackend({self.inner!r})"

    # ------------------------------------------------------------------ #
    # uninstrumented delegation (allocation, ufuncs, reductions)
    # ------------------------------------------------------------------ #
    def asarray(self, value) -> np.ndarray:
        return self.inner.asarray(value)

    def allocate(self, shape) -> np.ndarray:
        return self.inner.allocate(shape)

    def zeros(self, shape) -> np.ndarray:
        return self.inner.zeros(shape)

    def scratch(self, shape, pooled: bool = True) -> np.ndarray:
        return self.inner.scratch(shape, pooled=pooled)

    def exp(self, x: np.ndarray) -> np.ndarray:
        return self.inner.exp(x)

    def log(self, x: np.ndarray) -> np.ndarray:
        return self.inner.log(x)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return self.inner.tanh(x)

    def reduce_sum(self, x, axis=None, keepdims: bool = False):
        return self.inner.reduce_sum(x, axis=axis, keepdims=keepdims)

    def reduce_max(self, x, axis=None, keepdims: bool = False):
        return self.inner.reduce_max(x, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # instrumented ops
    # ------------------------------------------------------------------ #
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        prof = _prof._PROFILER
        if prof is None:
            return self.inner.gemm(a, b)
        t0 = _perf()
        out = self.inner.gemm(a, b)
        dur = _perf() - t0
        m, k = a.shape[-2], a.shape[-1]
        n = b.shape[-1]
        batch = _batch_elems(a.shape[:-2])
        prof.record_backend_op(
            "gemm", dur, _prof.shape_bucket(m, k, n),
            2.0 * batch * m * k * n,
            a.nbytes + b.nbytes + out.nbytes)
        return out

    def einsum(self, spec: str, *operands: np.ndarray) -> np.ndarray:
        prof = _prof._PROFILER
        if prof is None:
            return self.inner.einsum(spec, *operands)
        t0 = _perf()
        out = self.inner.einsum(spec, *operands)
        dur = _perf() - t0
        moved = out.nbytes
        for operand in operands:
            moved += operand.nbytes
        prof.record_backend_op(
            f"einsum[{spec}]", dur, _prof.shape_bucket(out.size),
            einsum_flops(spec, *operands), moved)
        return out

    def gather(self, table: np.ndarray, indices: np.ndarray) -> np.ndarray:
        prof = _prof._PROFILER
        if prof is None:
            return self.inner.gather(table, indices)
        t0 = _perf()
        out = self.inner.gather(table, indices)
        dur = _perf() - t0
        prof.record_backend_op(
            "gather", dur, _prof.shape_bucket(out.size),
            0.0, 2 * out.nbytes)
        return out

    def scatter_add(self, out: np.ndarray, indices: np.ndarray,
                    updates: np.ndarray) -> None:
        prof = _prof._PROFILER
        if prof is None:
            self.inner.scatter_add(out, indices, updates)
            return
        t0 = _perf()
        self.inner.scatter_add(out, indices, updates)
        dur = _perf() - t0
        prof.record_backend_op(
            "scatter_add", dur, _prof.shape_bucket(updates.size),
            float(updates.size), 2 * updates.nbytes + out.nbytes)

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        prof = _prof._PROFILER
        if prof is None:
            return self.inner.softmax(x, axis=axis)
        t0 = _perf()
        out = self.inner.softmax(x, axis=axis)
        dur = _perf() - t0
        prof.record_backend_op(
            "softmax", dur, _prof.shape_bucket(x.size),
            5.0 * x.size, x.nbytes + out.nbytes)
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def end_step(self) -> None:
        self.inner.end_step()
        prof = _prof._PROFILER
        if prof is not None:
            prof.on_step(self.inner)

    def pool_stats(self) -> Optional[Dict[str, int]]:
        return self.inner.pool_stats()
