"""`repro.backend` — pluggable compute backends for the autograd core.

Every hot path in the reproduction bottoms out in the hand-rolled
:mod:`repro.autograd` engine; this package is the narrow interface that
engine (and the models' batched kernels) compute through:

* :class:`NumpyBackend` (``"default"``) — the paper-exact float64 path,
  byte-for-byte identical to the substrate before this layer existed;
* :class:`FastBackend` (``"fast"``) — opt-in float32 compute with a
  size-bucketed scratch-buffer pool and fused routing / attention /
  sampled-softmax kernels (:mod:`repro.backend.fused`).

Selection::

    repro.backend.set_backend("fast")        # process-wide
    with repro.backend.use_backend("fast"):  # scoped (tests)
        ...
    REPRO_BACKEND=fast python -m repro run … # from the environment

Select a backend *before* building models: the compute dtype is baked
into every Tensor at construction.  The active backend is re-read on
every Tensor creation, so scoped switches take effect immediately for
new graphs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Type, Union

from .base import Backend, NumpyBackend
from .fast import FastBackend, set_blas_threads
from .pool import BufferPool

__all__ = [
    "Backend",
    "NumpyBackend",
    "FastBackend",
    "BufferPool",
    "InstrumentedBackend",
    "active_backend_name",
    "available_backends",
    "end_step",
    "get_backend",
    "set_backend",
    "set_blas_threads",
    "use_backend",
]

#: registry name (and aliases) -> backend class
_BACKENDS: Dict[str, Type[Backend]] = {
    "default": NumpyBackend,
    "numpy": NumpyBackend,
    "exact": NumpyBackend,
    "fast": FastBackend,
    "f32": FastBackend,
}

#: the live backend every Tensor creation / fused dispatch reads
active: Backend = NumpyBackend()


def available_backends() -> tuple:
    """Canonical backend names (aliases excluded)."""
    return ("default", "fast")


def _resolve(backend: Union[str, Backend]) -> Backend:
    if isinstance(backend, Backend):
        return backend
    key = str(backend).strip().lower()
    cls = _BACKENDS.get(key)
    if cls is None:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(set(_BACKENDS))} or a Backend instance")
    return cls()


def get_backend() -> Backend:
    """The active backend instance."""
    return active


def active_backend_name() -> str:
    """Registry name of the active backend (for traces and reports)."""
    return active.name


def set_backend(backend: Union[str, Backend]) -> Backend:
    """Install a backend process-wide; returns the *previous* one.

    Accepts a registry name (``"default"``/``"numpy"``/``"exact"``,
    ``"fast"``/``"f32"``) or a :class:`Backend` instance (tests inject
    instrumented subclasses this way).
    """
    global active
    previous = active
    active = _resolve(backend)
    return previous


@contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Scoped backend switch: ``with use_backend("fast"): ...``."""
    previous = set_backend(backend)
    try:
        yield active
    finally:
        set_backend(previous)


def end_step() -> None:
    """Signal an optimizer-step boundary to the active backend.

    Optimizers call this at the end of ``step()``; pooling backends
    reclaim the step's scratch buffers here (every backward closure that
    could reference them has already run).
    """
    active.end_step()


# imported last: instrument.py needs repro.obs, which fast.py (above)
# has already finished initialising by this point
from .instrument import InstrumentedBackend  # noqa: E402

_env = os.environ.get("REPRO_BACKEND", "").strip()
if _env:
    set_backend(_env)  # raises ValueError on typos: fail loud, not slow
