"""The opt-in ``fast`` backend: float32, pooled scratch, fused kernels.

Three levers over the paper-exact default, each documented in
``docs/PERFORMANCE.md``:

* **float32 compute dtype** — halves memory traffic through every GEMM
  and keeps metric drift within documented tolerances (the equivalence
  suite bounds it);
* **scratch-buffer pool** — per-step kernel intermediates come from a
  size-bucketed pool reclaimed at optimizer-step boundaries
  (:meth:`end_step`), so steady-state training stops allocating;
* **fused kernels** (``fused = True``) — model code dispatches routing,
  attention and the sampled-softmax loss to the single-kernel
  implementations in :mod:`repro.backend.fused` instead of building
  op-by-op autograd graphs.

Threaded-BLAS control lives here too: on the tiny per-user matrices the
paper trains (d=32), multi-threaded OpenBLAS loses to a single core, so
:func:`set_blas_threads` lets runs pin the thread count explicitly.
"""

from __future__ import annotations

import ctypes
import ctypes.util
from typing import Dict, Optional

import numpy as np

from ..contracts import shape_contract
from ..obs import trace as obs
from .base import Backend
from .pool import BufferPool


def set_blas_threads(n: int) -> Optional[int]:
    """Best-effort cap on BLAS threads; returns the previous count.

    Tries ``threadpoolctl`` first, then the OpenBLAS C API via ctypes.
    Returns ``None`` when neither mechanism is available (the setting is
    then a no-op — correctness never depends on it).
    """
    try:
        from threadpoolctl import ThreadpoolController  # type: ignore

        controller = ThreadpoolController()
        infos = [i for i in controller.info() if i.get("user_api") == "blas"]
        previous = infos[0].get("num_threads") if infos else None
        controller.limit(limits={"blas": int(n)})
        return previous
    except (ImportError, AttributeError, KeyError, IndexError, ValueError):
        pass
    try:
        path = ctypes.util.find_library("openblas")
        if path is None:
            return None
        lib = ctypes.CDLL(path)
        previous = int(lib.openblas_get_num_threads())
        lib.openblas_set_num_threads(int(n))
        return previous
    except (OSError, AttributeError, ValueError):
        return None


class FastBackend(Backend):
    """float32 + pooled scratch + fused kernels (opt-in, tolerance-gated)."""

    name = "fast"
    compute_dtype = np.dtype(np.float32)
    fused = True

    def __init__(self, blas_threads: Optional[int] = 1):
        self.pool = BufferPool()
        # counters already flushed into repro.obs (flush emits deltas)
        self._flushed: Dict[str, int] = {"hits": 0, "misses": 0,
                                         "bytes_reused": 0}
        if blas_threads is not None:
            set_blas_threads(blas_threads)

    # Batched contractions model code routes through the backend,
    # rewritten as np.matmul so they hit BLAS instead of np.einsum's
    # C loop (several times slower at routing shapes).  The default
    # backend keeps np.einsum so its numerics stay bit-identical.
    _EINSUM_AS_MATMUL = {
        "bnd,bkd->bnk": lambda a, b: np.matmul(a, b.transpose(0, 2, 1)),
        "bnk,bnd->bkd": lambda a, b: np.matmul(a.transpose(0, 2, 1), b),
        "bnk,bkd->bnd": lambda a, b: np.matmul(a, b),
    }

    def einsum(self, spec: str, *operands: np.ndarray) -> np.ndarray:
        fast_path = self._EINSUM_AS_MATMUL.get(spec)
        if fast_path is not None and len(operands) == 2:
            return fast_path(*operands)
        return np.einsum(spec, *operands)

    def scratch(self, shape, pooled: bool = True) -> np.ndarray:
        if pooled:
            return self.pool.acquire(shape, self.compute_dtype)
        return np.empty(shape, dtype=self.compute_dtype)

    @shape_contract("(N, D) f, _, (...I, D) f -> _")
    def scatter_add(self, out: np.ndarray, indices: np.ndarray,
                    updates: np.ndarray) -> None:
        """Bincount scatter: one C pass instead of ``np.add.at``'s
        per-element inner loop (~2x at embedding-gradient sizes).

        ``np.bincount`` accumulates in float64, so the fast path's
        scatter is *more* accurate than a float32 ``np.add.at`` chain;
        the sum is rounded to float32 once at the end.  Falls back to
        ``np.add.at`` when the flattened table is large enough that the
        dense float64 accumulator costs more than it saves (measured
        crossover ~32k elements at training scatter shapes).
        """
        idx = np.asarray(indices).reshape(-1)
        flat_elems = out.size
        if idx.size <= 1 or flat_elems > (1 << 15):
            np.add.at(out, idx, updates.reshape(idx.size, -1))
            return
        cols = out.shape[1] if out.ndim > 1 else 1
        flat = (idx[:, None] * cols + np.arange(cols)).ravel()
        acc = np.bincount(flat, weights=updates.reshape(-1),
                          minlength=flat_elems)
        out += acc.reshape(out.shape)

    def end_step(self) -> None:
        """Reclaim step scratch and flush pool counters into repro.obs."""
        self.pool.reclaim()
        if obs.enabled():
            stats = self.pool.stats()
            for key, metric in (("hits", "backend.pool_hits"),
                                ("misses", "backend.pool_misses"),
                                ("bytes_reused", "backend.bytes_reused")):
                delta = stats[key] - self._flushed[key]
                if delta:
                    obs.counter(metric, delta, backend=self.name)
                    self._flushed[key] = stats[key]

    def pool_stats(self) -> Optional[Dict[str, int]]:
        return self.pool.stats()
