"""Fused forward+backward kernels for the fast backend.

The per-op autograd graphs behind interest extraction and the
sampled-softmax loss spend most of their time in Python — dozens of
tiny Tensor nodes over d=32 matrices.  Each kernel here computes the
same mathematics as the unfused graph in one numpy pass, hand-derives
the backward, and registers a *single* graph node whose per-parent
closures share one cached backward computation.

Model code dispatches here when ``repro.backend.active.fused`` is true
(see ``models/routing.py``, ``models/comirec_sa.py``,
``models/sampled_softmax.py``, ``models/batched_train.py``); the
equivalence suite (``tests/test_backend.py``) pins every kernel against
its unfused counterpart at float64 to ~1e-9 and bounds the float32
drift of the fast backend to documented tolerances.

Scratch arrays for kernel intermediates come from the active backend's
buffer pool while gradients are enabled (the backward closures reference
them; they are reclaimed at the optimizer-step boundary after backward
has run).  Kernel *outputs* — anything that becomes ``Tensor.data`` —
are always fresh allocations, never pooled.

Per-user entry points reuse the batched kernels at B=1: the data arrays
are expanded with numpy views (no extra graph nodes) and every parent
gradient drops the leading batch axis on the way out.

This module imports :mod:`repro.autograd` and therefore must only be
imported lazily from model code, never from ``repro.backend.__init__``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import backend as _backend
from ..autograd import Tensor, is_grad_enabled

_NEG = -1e30  # additive mask for padded positions (matches batched_train)


def _scratch(shape) -> np.ndarray:
    """Backend scratch in compute dtype; pooled only while grads flow."""
    return _backend.active.scratch(shape, pooled=is_grad_enabled())


def _const(value: float, dt: np.dtype):
    return np.asarray(value, dtype=dt)


def _squeeze0(parents):
    """Re-target B=1 kernel parents, stripping grads' leading batch axis.

    Gradients that the batched closure already returns unbatched (the
    shared ``W1``) are marked by the kernels with ``fn.unbatched``.
    """
    out = []
    for parent, fn in parents:
        if getattr(fn, "unbatched", False):
            out.append((parent, fn))
        else:
            out.append((parent, lambda g, fn=fn: fn(g[None])[0]))
    return out


# ---------------------------------------------------------------------- #
# masked batched softmax over the item axis (axis 1 of (B, n, K))
# ---------------------------------------------------------------------- #
def _masked_softmax_items(logits: np.ndarray,
                          item_mask: Optional[np.ndarray]) -> np.ndarray:
    """Replicates ``models.batched._masked_softmax_over_items`` numerics.

    With ``item_mask=None`` (per-user call: every slot real) this equals
    the per-user ``_softmax_over_items`` exactly — the masking terms
    reduce to multiplications by 1.0 and a no-op ``maximum``.
    """
    dt = logits.dtype
    if item_mask is None:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
    masked = np.where(item_mask[:, :, None], logits, _const(_NEG, dt))
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted) * item_mask[:, :, None]
    denom = exp.sum(axis=1, keepdims=True)
    return exp / np.maximum(denom, _const(1e-30, dt))


def _squash_np(x: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    sq = (x * x).sum(axis=-1, keepdims=True)
    return x * (sq / (1.0 + sq) / np.sqrt(sq + eps))


# ---------------------------------------------------------------------- #
# B2I dynamic routing (ComiRec-DR / MIND)
# ---------------------------------------------------------------------- #
def _dr_kernel(e_hat: Tensor, E: np.ndarray, capsules0: np.ndarray,
               item_mask: Optional[np.ndarray],
               capsule_mask: Optional[np.ndarray],
               extra_logits: Optional[np.ndarray],
               iterations: int, eps: float = 1e-9):
    """Shared batched routing kernel over (B, n, d) transformed items.

    Routing weights are constants for backprop (MIND/ComiRec practice);
    the only parent is ``e_hat``, reached through the final
    ``squash(Cᵀ ê)`` — exactly the unfused graph's gradient structure.
    """
    dt = E.dtype
    caps = capsules0.astype(dt, copy=False)
    logits = _scratch((E.shape[0], E.shape[1], caps.shape[1]))
    # contractions run as batched BLAS GEMMs (np.matmul); np.einsum's
    # C fallback is several times slower at these shapes
    np.matmul(E, caps.transpose(0, 2, 1), out=logits)     # bnd,bkd->bnk
    if extra_logits is not None:
        logits += extra_logits.astype(dt, copy=False)
    for _ in range(iterations - 1):
        coupling = _masked_softmax_items(logits, item_mask)
        caps = _squash_np(np.matmul(coupling.transpose(0, 2, 1), E), eps=eps)
        logits += np.matmul(E, caps.transpose(0, 2, 1))
    coupling = _masked_softmax_items(logits, item_mask)
    if capsule_mask is not None:
        coupling = coupling * capsule_mask[:, None, :]
    votes = np.matmul(coupling.transpose(0, 2, 1), E)  # V (B, K, d)
    sq = (votes * votes).sum(axis=-1, keepdims=True)  # q = |V|² (B, K, 1)
    inv1 = 1.0 / (1.0 + sq)
    root = np.sqrt(sq + eps)
    scale = sq * inv1 / root
    out = votes * scale                               # fresh (never pooled)

    def grad_e_hat(g: np.ndarray) -> np.ndarray:
        # squash backward: dV = g·s + V (2 (g·V) ds/dq), then dE = C dV
        ds_dq = inv1 / root - sq * inv1 * inv1 / root \
            - 0.5 * sq * inv1 / (root * (sq + eps))
        gv = g * scale + votes * (
            2.0 * (g * votes).sum(axis=-1, keepdims=True) * ds_dq)
        return np.matmul(coupling, gv)                 # bnk,bkd->bnd

    return Tensor._make(out, [(e_hat, grad_e_hat)])


def fused_dr_interests(e_hat: Tensor, capsules0: np.ndarray,
                       item_mask: np.ndarray, capsule_mask: np.ndarray,
                       extra_logits: Optional[np.ndarray],
                       iterations: int) -> Tensor:
    """Batched fused routing: drop-in for the unfused ``_extract_dr`` core."""
    return _dr_kernel(e_hat, e_hat.data, capsules0, item_mask, capsule_mask,
                      extra_logits, iterations)


def fused_dr_interests_single(e_hat: Tensor, init_interests: np.ndarray,
                              iterations: int,
                              init_logits: Optional[np.ndarray]) -> Tensor:
    """Per-user fused routing: drop-in for ``b2i_routing`` (items norm)."""
    extra = None if init_logits is None else init_logits[None]
    node = _dr_kernel(e_hat, e_hat.data[None], init_interests[None],
                      None, None, extra, iterations)
    return Tensor._make(node.data[0], _squeeze0(node._backward_fns))


# ---------------------------------------------------------------------- #
# additive self-attention (ComiRec-SA)
# ---------------------------------------------------------------------- #
def _sa_kernel(embs: Tensor, w1, user_ws: Sequence, E: np.ndarray,
               item_mask: Optional[np.ndarray],
               capsule_mask: Optional[np.ndarray]):
    """Batched fused SA extraction over (B, n, d) item embeddings.

    Parents: the embedding block, the shared ``W1`` and each user's
    attention matrix; one cached backward computes all of their grads.
    The softmax jacobian legitimately uses the capsule-masked attention:
    the softmax runs per (user, capsule) column over items, masked
    columns carry zero upstream gradient, and unmasked columns are
    untouched by the mask — column by column the two coincide.
    """
    dt = E.dtype
    batch, n, _ = E.shape
    W1 = w1.data.astype(dt, copy=False)
    d_a = W1.shape[0]
    ks = [w.data.shape[1] for w in user_ws]
    k_max = capsule_mask.shape[1] if capsule_mask is not None else max(ks)

    w_pad = _scratch((batch, d_a, k_max))
    w_pad.fill(0.0)
    for b, w in enumerate(user_ws):
        # slice assignment copies w.data into the pad; no alias survives
        w_pad[b, :, :ks[b]] = w.data  # repro: noqa[RA603]
    hidden = _scratch((batch, n, d_a))
    np.matmul(E, W1.T, out=hidden)
    np.tanh(hidden, out=hidden)                       # H = tanh(E W1ᵀ)
    logits = _scratch((batch, n, k_max))
    np.matmul(hidden, w_pad, out=logits)
    if item_mask is not None:
        logits += np.where(item_mask[:, :, None], _const(0.0, dt),
                           _const(_NEG, dt))
    attn = _scratch((batch, n, k_max))                # softmax over items
    np.subtract(logits, logits.max(axis=1, keepdims=True), out=attn)
    np.exp(attn, out=attn)
    attn /= attn.sum(axis=1, keepdims=True)
    if capsule_mask is not None:
        attn *= capsule_mask[:, None, :]
    out = np.matmul(attn.transpose(0, 2, 1), E)       # fresh (B, K, d)

    cache: dict = {}

    def _shared(g: np.ndarray) -> dict:
        if not cache:
            d_attn = np.matmul(E, g.transpose(0, 2, 1))          # (B, n, K)
            d_e = np.matmul(attn, g)                             # (B, n, d)
            d_logits = attn * (d_attn
                               - (d_attn * attn).sum(axis=1, keepdims=True))
            d_hidden = np.matmul(d_logits, w_pad.transpose(0, 2, 1))
            d_wpad = np.matmul(hidden.transpose(0, 2, 1), d_logits)
            d_pre = d_hidden * (1.0 - hidden * hidden)           # tanh'
            d_e += np.matmul(d_pre, W1)
            cache["d_e"] = d_e
            cache["d_w1"] = np.tensordot(d_pre, E,      # bna,bnd->ad
                                         axes=([0, 1], [0, 1]))
            cache["d_wpad"] = d_wpad
        return cache

    def grad_w1(g: np.ndarray) -> np.ndarray:
        return _shared(g)["d_w1"]
    grad_w1.unbatched = True  # summed over the batch: already (d_a, d)

    parents = [(embs, lambda g: _shared(g)["d_e"]), (w1, grad_w1)]
    for b, w in enumerate(user_ws):
        def grad_wu(g: np.ndarray, b=b, k=ks[b]) -> np.ndarray:
            return _shared(g)["d_wpad"][b, :, :k]
        grad_wu.unbatched = True  # per-user slice: already (d_a, k)
        parents.append((w, grad_wu))
    return Tensor._make(out, parents)


def fused_sa_interests(embs: Tensor, w1, user_ws: Sequence,
                       item_mask: np.ndarray,
                       capsule_mask: np.ndarray) -> Tensor:
    """Batched fused SA: drop-in for the unfused ``_extract_sa`` core."""
    return _sa_kernel(embs, w1, user_ws, embs.data, item_mask, capsule_mask)


def fused_sa_interests_single(embs: Tensor, w1, w_u) -> Tensor:
    """Per-user fused SA: drop-in for ``ComiRecSA.compute_interests``."""
    node = _sa_kernel(embs, w1, [w_u], embs.data[None], None, None)
    return Tensor._make(node.data[0], _squeeze0(node._backward_fns))


# ---------------------------------------------------------------------- #
# sampled-softmax loss (Eq. 6) with target-attentive aggregation (Eq. 5)
# ---------------------------------------------------------------------- #
def _loss_kernel(interests: Tensor, target_embs: Tensor, neg_embs: Tensor,
                 I: np.ndarray, Te: np.ndarray, Ne: np.ndarray,
                 capsule_mask: Optional[np.ndarray], weights: np.ndarray,
                 batched: bool) -> Tensor:
    """Weighted sampled-softmax NLL over a (B, M, J) target/negative block.

    Returns ``sum_b sum_m weights[b, m] * nll[b, m]`` as a scalar; with
    per-user weights ``1/m`` this is the batched group loss, and with
    B=1 (``batched=False``, arrays expanded by the caller) it is one
    user's mean-over-targets loss.
    """
    dt = I.dtype
    w = weights.astype(dt, copy=False)

    IT = I.transpose(0, 2, 1)                        # (B, d, K) view
    att = np.matmul(Te, IT)                          # Eq. 5 logits (bmk)
    if capsule_mask is not None:
        att += np.where(capsule_mask, _const(0.0, dt),
                        _const(_NEG, dt))[:, None, :]
    beta = _scratch(att.shape)                       # softmax over capsules
    np.subtract(att, att.max(axis=2, keepdims=True), out=beta)
    # beta is max-subtracted on the line above (out= hides it from the scan)
    np.exp(beta, out=beta)  # repro: noqa[RA302]
    beta /= beta.sum(axis=2, keepdims=True)          # (B, M, K)
    v = _scratch(Te.shape)
    np.matmul(beta, I, out=v)                        # aggregated vec (bmd)
    pos = (v * Te).sum(axis=2)                       # (B, M)
    neg = np.matmul(Ne, v[..., None])[..., 0]        # bmjd,bmd->bmj
    logits = np.concatenate([pos[..., None], neg], axis=2)
    shifted = logits - logits.max(axis=2, keepdims=True)
    prob = _scratch(shifted.shape)
    # shifted is max-subtracted two lines up; the scan can't see through it
    np.exp(shifted, out=prob)  # repro: noqa[RA302]
    denom = prob.sum(axis=2, keepdims=True)
    # denom >= 1: the row max contributes exp(0) = 1 to the sum
    nll = np.log(denom[..., 0]) - shifted[..., 0]  # repro: noqa[RA301]
    prob /= denom                                    # kept for backward
    out = np.asarray((nll * w).sum(), dtype=dt)

    cache: dict = {}

    def _shared(g: np.ndarray) -> dict:
        if not cache:
            wg = (np.asarray(g, dtype=dt) * w)[..., None]   # (B, M, 1)
            d_logits = wg * prob
            d_logits[..., 0] -= wg[..., 0]                  # − w · e₀
            d_pos = d_logits[..., 0]
            d_neg = d_logits[..., 1:]
            d_v = d_pos[..., None] * Te \
                + np.matmul(d_neg[:, :, None, :], Ne)[:, :, 0, :]
            d_beta = np.matmul(d_v, IT)                      # bmd,bkd->bmk
            d_att = beta * (d_beta
                            - (d_beta * beta).sum(axis=2, keepdims=True))
            cache["d_i"] = np.matmul(beta.transpose(0, 2, 1), d_v) \
                + np.matmul(d_att.transpose(0, 2, 1), Te)    # bmk,bmd->bkd
            cache["d_te"] = d_pos[..., None] * v \
                + np.matmul(d_att, I)                        # bmk,bkd->bmd
            cache["d_ne"] = d_neg[..., None] * v[:, :, None, :]
        return cache

    parents = [(interests, lambda g: _shared(g)["d_i"]),
               (target_embs, lambda g: _shared(g)["d_te"]),
               (neg_embs, lambda g: _shared(g)["d_ne"])]
    if not batched:
        # the caller expanded B=1 views; grads must drop that axis (the
        # upstream scalar g needs no expansion, unlike _squeeze0's case)
        parents = [(p, lambda g, fn=fn: fn(g)[0]) for p, fn in parents]
    return Tensor._make(out, parents)


def fused_sampled_softmax(interests: Tensor, target_embs: Tensor,
                          neg_embs: Tensor, capsule_mask: np.ndarray,
                          weights: np.ndarray) -> Tensor:
    """Batched fused loss: drop-in for the ``batched_loss_targets`` core."""
    return _loss_kernel(interests, target_embs, neg_embs,
                        interests.data, target_embs.data, neg_embs.data,
                        capsule_mask, weights, batched=True)


def fused_sampled_softmax_single(interests: Tensor, target_embs: Tensor,
                                 neg_embs: Tensor) -> Tensor:
    """Per-user fused loss: drop-in for ``batch_sampled_softmax_loss``."""
    m = target_embs.shape[0]
    weights = np.full((1, m), 1.0 / m)
    return _loss_kernel(interests, target_embs, neg_embs,
                        interests.data[None], target_embs.data[None],
                        neg_embs.data[None], None, weights, batched=False)
