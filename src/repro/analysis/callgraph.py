"""Whole-project call graph: per-module fact extraction and name resolution.

Every rule family so far (RA1xx–RA7xx) reasons inside one function
body.  This module is the substrate for the interprocedural RA80x
family: a single deterministic AST pass per module extracts
**ModuleFacts** — the functions defined (module-level, methods, one
level of nested helpers), the imports, the classes with their base
classes and ``self.<attr> = ClassName(...)`` attribute types, and for
each function an ordered **event stream** (binds, call sites with
argument origins, in-place mutations, global-RNG draws, returns).

The facts are designed to be:

* **serializable** — they round-trip through JSON, so the summary cache
  (:mod:`repro.analysis.summaries`) can key them on the file SHA and a
  warm re-lint never re-parses unchanged modules;
* **sufficient** — the fixed-point summary computation and all RA80x
  findings are generated from facts alone, never from the AST, so a
  cached tree and a freshly parsed tree produce byte-identical results.

Name resolution (:class:`ProjectIndex`) is best-effort and documented:
module-level functions, ``from x import y`` / ``import x as y`` chains
(including one re-export hop through package ``__init__`` modules),
``self.method`` with single-inheritance base walking, ``self.attr.method``
through recorded attribute types, and ``obj.method`` where ``obj`` was
bound to a visible class instantiation.  Anything else — higher-order
values, ``getattr``, subscripted tables — is *unresolved*; summaries
stay sound-but-incomplete there, and RA805 reports the one case where
that incompleteness silently defeats the analysis (a call cycle
forwarding parameters through a dynamic call).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .aliasing import _NP_VIEW_FUNCS, _VIEW_METHODS
from .core import ModuleContext
from .rules import GRAPH_BUILDING_CALLS, _NP_RANDOM_OK, dotted_name, is_buffer_access

#: value-reference kinds carried by events (JSON-friendly lists):
#:   ["name", n]    a local name, resolved against the replay environment
#:   ["buffer", d]  may-alias of Tensor.data/.grad (d = display text)
#:   ["frozen", d]  snapshot-style value (capture() result, snapshot-named
#:                  attribute) that must never be mutated
#:   ["call", k]    the result of this function's k-th call event
ValueRef = Optional[List[Any]]

#: names that mark a value (param, attribute) as a frozen snapshot:
#: mutating it through a callee is the RA801 bug class
SNAPSHOT_NAME_RE = re.compile(
    r"(^|_)(snapshot|snapshots|snap|teacher|teachers|frozen|fisher|"
    r"anchor|anchors|prev|captured)(_|$)",
    re.IGNORECASE,
)

#: parameter names that declare a determinism intent: a function taking
#: one is a "seeded entrypoint" for RA803
RNG_PARAM_RE = re.compile(r"^(seed|rng|generator|random_state)$|_(seed|rng)$",
                          re.IGNORECASE)

#: np.random.Generator-constructing calls also mark a function as seeded
_RNG_CONSTRUCTORS = frozenset({"default_rng", "Generator", "PCG64", "Philox",
                               "MT19937", "SFC64", "SeedSequence"})

#: stdlib ``random`` module functions that draw from (or reseed) the
#: process-global Mersenne Twister
_PY_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "betavariate",
    "expovariate", "lognormvariate", "paretovariate", "triangular",
    "vonmisesvariate", "weibullvariate", "getrandbits", "randbytes", "seed",
})

#: receiver methods that end an alias chain with a fresh allocation
_COPY_METHODS = frozenset({"copy", "astype", "tolist", "item", "tobytes"})

#: ndarray methods that mutate their receiver in place (facts-level twin
#: of the RA602 set)
_MUTATING_METHODS = frozenset({"fill", "sort", "partition", "put", "itemset"})

_NP_NAMES = ("np", "numpy")

#: builtins whose calls are never treated as dynamic dispatch
_BUILTIN_NAMES = frozenset({
    "len", "sorted", "list", "tuple", "dict", "set", "frozenset", "sum",
    "min", "max", "abs", "range", "enumerate", "zip", "map", "filter",
    "print", "repr", "str", "int", "float", "bool", "isinstance", "getattr",
    "hasattr", "setattr", "type", "super", "iter", "next", "round", "any",
    "all", "id", "hash", "open", "vars", "dir", "format", "reversed",
    "divmod", "pow", "slice", "bytes", "bytearray", "object", "Exception",
    "ValueError", "TypeError", "KeyError", "RuntimeError", "AssertionError",
})


# --------------------------------------------------------------------- #
# facts dataclasses
# --------------------------------------------------------------------- #


@dataclass
class FunctionFacts:
    """Everything the interprocedural layer knows about one function."""

    qualname: str            # "f", "C.m", or "f.<locals>.g"
    line: int
    col: int
    src: str                 # the def line, for finding fingerprints
    params: List[str]        # positional-or-keyword names, in order
    class_name: Optional[str] = None
    is_method: bool = False
    has_contract: bool = False
    seeded: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)
    local_funcs: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "line": self.line, "col": self.col,
            "src": self.src, "params": self.params,
            "class_name": self.class_name, "is_method": self.is_method,
            "has_contract": self.has_contract, "seeded": self.seeded,
            "events": self.events, "local_funcs": self.local_funcs,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FunctionFacts":
        return cls(**raw)


@dataclass
class ClassFacts:
    """Base classes, methods, and ``self.attr = Type(...)`` attribute types."""

    name: str
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "bases": self.bases,
                "methods": self.methods, "attr_types": self.attr_types}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ClassFacts":
        return cls(**raw)


@dataclass
class ModuleFacts:
    """One module's contribution to the project call graph."""

    module: str              # dotted module name (best effort)
    path: str                # display path (repo-relative where possible)
    is_package_init: bool = False
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "is_package_init": self.is_package_init, "imports": self.imports,
            "functions": {q: f.as_dict()
                          for q, f in sorted(self.functions.items())},
            "classes": {n: c.as_dict()
                        for n, c in sorted(self.classes.items())},
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ModuleFacts":
        return cls(
            module=raw["module"], path=raw["path"],
            is_package_init=raw.get("is_package_init", False),
            imports=dict(raw.get("imports", {})),
            functions={q: FunctionFacts.from_dict(f)
                       for q, f in raw.get("functions", {}).items()},
            classes={n: ClassFacts.from_dict(c)
                     for n, c in raw.get("classes", {}).items()},
        )


# --------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------- #


def _has_contract_decorator(fn: ast.AST) -> bool:
    for dec in getattr(fn, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None)
        if name == "shape_contract":
            return True
    return False


class _FunctionExtractor:
    """One pass over a function body producing its ordered event stream."""

    def __init__(self, ctx: ModuleContext, facts: FunctionFacts,
                 module: "ModuleFacts", collector: "_ModuleExtractor"):
        self.ctx = ctx
        self.facts = facts
        self.module = module
        self.collector = collector
        self.no_grad_depth = 0

    # ------------------------------------------------------------- #
    # event emission
    # ------------------------------------------------------------- #
    def _emit(self, event: Dict[str, Any]) -> int:
        self.facts.events.append(event)
        return len(self.facts.events) - 1

    def _loc(self, node: ast.AST) -> Dict[str, Any]:
        line = getattr(node, "lineno", self.facts.line)
        return {"line": line, "col": getattr(node, "col_offset", 0),
                "src": self.ctx.source_line(line)}

    def _bind(self, name: str, val: ValueRef) -> None:
        self._emit({"ev": "bind", "name": name, "val": val})

    def _mut(self, val: ValueRef, how: str, node: ast.AST) -> None:
        if val is None:
            return
        self._emit({"ev": "mut", "val": val, "how": how, **self._loc(node)})

    def _rng(self, label: str, node: ast.AST) -> None:
        directive = self.ctx.noqa_for_line(getattr(node, "lineno", 1))
        suppressed = directive is not None and (
            not directive or directive & {"RA201", "RA803"})
        self._emit({"ev": "rng", "name": label, "suppressed": bool(suppressed),
                    **self._loc(node)})

    # ------------------------------------------------------------- #
    # expressions: evaluate to a ValueRef, emitting nested events
    # ------------------------------------------------------------- #
    def _eval(self, node: Optional[ast.AST]) -> ValueRef:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return ["name", node.id]
        if isinstance(node, ast.Attribute):
            if node.attr in ("data", "grad"):
                return ["buffer", f"'{dotted_name(node) or node.attr}'"]
            if node.attr == "T":
                return self._eval(node.value)
            if is_buffer_access(node):
                return ["buffer", f"'{dotted_name(node) or node.attr}'"]
            if SNAPSHOT_NAME_RE.search(node.attr):
                return ["frozen", f"'{dotted_name(node) or node.attr}'"]
            self._eval(node.value)
            return None
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) or self._eval(node.orelse)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Lambda):
            return None  # deferred body: out of the may-call model
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return None
        for child in ast.iter_child_nodes(node):
            self._eval(child)
        return None

    def _call(self, node: ast.Call) -> ValueRef:
        func = node.func
        dn = dotted_name(func)

        # numpy namespace: RNG draws, views, in-place writers — no edges
        if dn:
            parts = dn.split(".")
            if parts[0] in _NP_NAMES:
                if len(parts) >= 2 and parts[1] == "random":
                    tail = parts[-1]
                    if len(parts) == 3 and tail not in _NP_RANDOM_OK:
                        self._eval_args(node)
                        self._rng(dn, node)
                        return None
                    if tail in _RNG_CONSTRUCTORS:
                        self.facts.seeded = True
                        self._eval_args(node)
                        return None
                if parts[-1] == "copyto" and node.args:
                    self._mut(self._eval(node.args[0]), "np.copyto", node)
                    for arg in node.args[1:]:
                        self._eval(arg)
                    return None
                if parts[-1] == "at" and node.args:
                    self._mut(self._eval(node.args[0]), "ufunc.at", node)
                    for arg in node.args[1:]:
                        self._eval(arg)
                    return None
                if parts[-1] in _NP_VIEW_FUNCS and node.args:
                    return self._eval(node.args[0])
                self._eval_args(node, include_out=True)
                return None
            if (parts[0] == "random"
                    and self.module.imports.get("random") == "random"
                    and parts[-1] in _PY_RANDOM_DRAWS):
                self._eval_args(node)
                self._rng(dn, node)
                return None
            alias = self.module.imports.get(parts[0])
            if alias == "random" and len(parts) == 2 \
                    and parts[-1] in _PY_RANDOM_DRAWS:
                self._eval_args(node)
                self._rng(f"random.{parts[-1]}", node)
                return None

        if isinstance(func, ast.Name) and func.id in _RNG_CONSTRUCTORS:
            self.facts.seeded = True
            self._eval_args(node)
            return None

        # capture() freezes its argument: the result is a snapshot
        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if terminal == "capture":
            self._eval_args(node)
            return ["frozen", "a capture()-frozen snapshot"]

        if isinstance(func, ast.Attribute):
            if func.attr in _VIEW_METHODS:
                self._eval_args(node)
                return self._eval(func.value)
            if func.attr in _COPY_METHODS:
                self._eval(func.value)
                self._eval_args(node)
                return None
            if func.attr in _MUTATING_METHODS:
                self._mut(self._eval(func.value), f".{func.attr}()", node)
                self._eval_args(node)
                return None

        callee = self._callee_ref(func)
        args = [self._eval(a) for a in node.args]
        starargs = any(isinstance(a, ast.Starred) for a in node.args)
        kwargs = {}
        for kw in node.keywords:
            ref = self._eval(kw.value)
            if kw.arg == "out" and not is_buffer_access(kw.value):
                self._mut(ref, "out=", node)
            if kw.arg is not None:
                kwargs[kw.arg] = ref
        event = {
            "ev": "call", "callee": callee, "args": args, "kwargs": kwargs,
            "starargs": starargs, "no_grad": self.no_grad_depth > 0,
            "graph": terminal in GRAPH_BUILDING_CALLS, "result": None,
            **self._loc(node),
        }
        return ["call", self._emit(event)]

    def _eval_args(self, node: ast.Call, include_out: bool = False) -> None:
        for arg in node.args:
            self._eval(arg)
        for kw in node.keywords:
            ref = self._eval(kw.value)
            if include_out and kw.arg == "out" \
                    and not is_buffer_access(kw.value):
                self._mut(ref, "out=", node)

    def _callee_ref(self, func: ast.AST) -> Dict[str, Any]:
        if isinstance(func, ast.Name):
            return {"kind": "name", "name": func.id}
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self":
                    return {"kind": "self", "method": func.attr}
                return {"kind": "dotted",
                        "name": f"{receiver.id}.{func.attr}",
                        "obj": receiver.id, "method": func.attr}
            if (isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"):
                return {"kind": "selfattr", "attr": receiver.attr,
                        "method": func.attr}
            dn = dotted_name(func)
            if dn is not None:
                return {"kind": "dotted", "name": dn}
            # a method on an arbitrary expression: unresolvable, but not
            # the higher-order dispatch RA805 exists for
            self._eval(receiver)
            return {"kind": "unknown"}
        # calling a non-name value (subscripted table, call result, ...):
        # genuine dynamic dispatch
        self._eval(func)
        return {"kind": "dynamic"}

    # ------------------------------------------------------------- #
    # statements
    # ------------------------------------------------------------- #
    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _clear_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._clear_target(elt)
        elif isinstance(target, ast.Starred):
            self._clear_target(target.value)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self.collector.extract_function(
                stmt, f"{self.facts.qualname}.<locals>.{stmt.name}",
                class_name=None)
            self.facts.local_funcs[stmt.name] = nested.qualname
            self._bind(stmt.name, None)
            return
        if isinstance(stmt, ast.ClassDef):
            self._bind(stmt.name, None)
            return
        if isinstance(stmt, ast.Assign):
            value_ref = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, value_ref)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self._eval(stmt.value))
            return
        if isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            target = stmt.target
            if is_buffer_access(target):
                return  # RA101's finding, not an interprocedural one
            if isinstance(target, ast.Name):
                self._mut(["name", target.id], "augmented assignment", stmt)
            elif isinstance(target, ast.Subscript):
                self._mut(self._eval(target.value), "augmented slice "
                          "assignment", stmt)
            return
        if isinstance(stmt, ast.Return):
            self._emit({"ev": "ret", "val": self._eval(stmt.value),
                        "line": stmt.lineno})
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, ast.For):
            iter_ref = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                # iterating an array yields row views that alias it
                self._bind(stmt.target.id, iter_ref)
            else:
                self._clear_target(stmt.target)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            is_no_grad = False
            for item in stmt.items:
                expr = item.context_expr
                self._eval(expr)
                target = expr.func if isinstance(expr, ast.Call) else expr
                name = target.attr if isinstance(target, ast.Attribute) else (
                    target.id if isinstance(target, ast.Name) else None)
                if name == "no_grad":
                    is_no_grad = True
                if item.optional_vars is not None:
                    self._clear_target(item.optional_vars)
            self.no_grad_depth += 1 if is_no_grad else 0
            self.run(stmt.body)
            self.no_grad_depth -= 1 if is_no_grad else 0
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self._bind(handler.name, None)
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, None)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                self._eval(child)
            return
        # Import/Global/Nonlocal/Pass/Break/Continue: no events

    def _assign_target(self, target: ast.AST, value_ref: ValueRef) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, value_ref)
            if len(self.facts.events) >= 1 and value_ref is not None \
                    and value_ref[0] == "call":
                self.facts.events[value_ref[1]]["result"] = target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._clear_target(target)
        elif isinstance(target, ast.Subscript):
            if not is_buffer_access(target):
                self._mut(self._eval(target.value), "slice assignment", target)
        elif isinstance(target, ast.Attribute):
            # self.<attr> = ClassName(...): record the attribute type so
            # self.<attr>.method() resolves later
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self.facts.class_name is not None
                    and value_ref is not None and value_ref[0] == "call"):
                callee = self.facts.events[value_ref[1]]["callee"]
                if callee["kind"] in ("name", "dotted"):
                    cls = self.collector.facts.classes.get(
                        self.facts.class_name)
                    if cls is not None:
                        cls.attr_types.setdefault(
                            target.attr, callee["name"])


class _ModuleExtractor:
    """Walks one module, producing its :class:`ModuleFacts`."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.facts = ModuleFacts(
            module=ctx.module, path=ctx.display_path,
            is_package_init=ctx.path.name == "__init__.py")

    def extract(self) -> ModuleFacts:
        self._collect_imports()
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.extract_function(node, node.name, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)
        return self.facts

    def _collect_imports(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.facts.imports.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.facts.imports.setdefault(
                        local, f"{base}.{alias.name}" if base else alias.name)

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        package = self.facts.module
        if not self.facts.is_package_init:
            package = package.rpartition(".")[0]
        for _ in range(node.level - 1):
            package = package.rpartition(".")[0]
        if not package:
            return None
        if node.module:
            return f"{package}.{node.module}"
        return package

    def extract_function(self, node: ast.AST, qualname: str,
                         class_name: Optional[str]) -> FunctionFacts:
        arg_nodes = list(node.args.posonlyargs) + list(node.args.args)
        params = [a.arg for a in arg_nodes]
        kwonly = [a.arg for a in node.args.kwonlyargs]
        facts = FunctionFacts(
            qualname=qualname, line=node.lineno, col=node.col_offset,
            src=self.ctx.source_line(node.lineno),
            params=params + kwonly,
            class_name=class_name,
            is_method=class_name is not None,
            has_contract=_has_contract_decorator(node),
            seeded=any(RNG_PARAM_RE.search(p) for p in params + kwonly),
        )
        self.facts.functions[qualname] = facts
        _FunctionExtractor(self.ctx, facts, self.facts, self).run(node.body)
        return facts

    def _extract_class(self, node: ast.ClassDef) -> None:
        cls = ClassFacts(
            name=node.name,
            bases=[b for b in (dotted_name(base) for base in node.bases)
                   if b is not None])
        self.facts.classes[node.name] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.append(item.name)
                self.extract_function(item, f"{node.name}.{item.name}",
                                      class_name=node.name)


def extract_module_facts(ctx: ModuleContext) -> ModuleFacts:
    """One deterministic pass: the module's call-graph facts."""
    return _ModuleExtractor(ctx).extract()


# --------------------------------------------------------------------- #
# project-wide name resolution
# --------------------------------------------------------------------- #

#: resolution results
Resolved = Tuple[str, str]  # ("func", fqn) | ("class", class_fqn)


class ProjectIndex:
    """Cross-module symbol table over a set of :class:`ModuleFacts`."""

    MAX_HOPS = 6

    def __init__(self, modules: List[ModuleFacts]):
        #: dotted module name -> facts (first writer wins deterministically)
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in sorted(modules, key=lambda m: m.path):
            self.modules.setdefault(facts.module, facts)
        #: function fqn "module.qualname" -> (module facts, function facts)
        self.functions: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        for facts in self.modules.values():
            for qual, fn in facts.functions.items():
                self.functions[f"{facts.module}.{qual}"] = (facts, fn)

    # ------------------------------------------------------------- #
    def resolve_in_module(self, mod: ModuleFacts, parts: List[str],
                          hops: int = 0) -> Optional[Resolved]:
        """Resolve a dotted reference as seen from inside ``mod``."""
        if not parts or hops > self.MAX_HOPS:
            return None
        head = parts[0]
        if head in mod.classes:
            return self._resolve_class_member(mod, head, parts[1:], hops)
        if head in mod.functions and len(parts) == 1:
            return ("func", f"{mod.module}.{head}")
        if head in mod.imports:
            return self.resolve_dotted(
                mod.imports[head].split(".") + parts[1:], hops + 1)
        return None

    def resolve_dotted(self, parts: List[str],
                       hops: int = 0) -> Optional[Resolved]:
        """Resolve an absolute dotted path against the project."""
        if hops > self.MAX_HOPS:
            return None
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            mod = self.modules.get(module_name)
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return None  # a bare module is not callable
            return self.resolve_in_module(mod, rest, hops + 1)
        return None

    def _resolve_class_member(self, mod: ModuleFacts, class_name: str,
                              rest: List[str],
                              hops: int) -> Optional[Resolved]:
        if not rest:
            return ("class", f"{mod.module}.{class_name}")
        if len(rest) > 1 or hops > self.MAX_HOPS:
            return None
        method = rest[0]
        seen = set()
        stack = [(mod, class_name)]
        while stack:
            current_mod, current_name = stack.pop(0)
            key = (current_mod.module, current_name)
            if key in seen:
                continue
            seen.add(key)
            cls = current_mod.classes.get(current_name)
            if cls is None:
                continue
            if method in cls.methods:
                return ("func",
                        f"{current_mod.module}.{current_name}.{method}")
            for base in cls.bases:
                resolved = self.resolve_in_module(
                    current_mod, base.split("."), hops + 1)
                if resolved is not None and resolved[0] == "class":
                    base_module, _, base_name = resolved[1].rpartition(".")
                    base_mod = self.modules.get(base_module)
                    if base_mod is not None:
                        stack.append((base_mod, base_name))
        return None

    def resolve_class_method(self, class_fqn: str,
                             method: str) -> Optional[Resolved]:
        module_name, _, class_name = class_fqn.rpartition(".")
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        return self._resolve_class_member(mod, class_name, [method], 0)

    def constructor_of(self, class_fqn: str) -> Optional[str]:
        """The ``__init__`` fqn of a class, walking bases."""
        resolved = self.resolve_class_method(class_fqn, "__init__")
        if resolved is not None and resolved[0] == "func":
            return resolved[1]
        return None
